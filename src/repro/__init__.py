"""InFine reproduction: provenance-aware FD discovery on integrated views.

This package reproduces the system described in *"Provenance-aware Discovery
of Functional Dependencies on Integrated Views"* (ICDE 2022).  The public API
is re-exported here; the recommended entry point is the session API::

    from repro import Relation, Session, base, join

    session = Session()                      # env-var defaults; kwargs override
    catalog = {...}
    result = session.discover(catalog["patient"], algorithm="tane")
    view = join(base("patient"), base("admission"), on="subject_id")
    run = session.infine(view, catalog)      # unified, JSON-serialisable RunResult
    run.save("view_fds.json")

The classic entry points (``TANE().discover``, ``InFine().run``,
``approximate_fds``) keep working; they run on the module-level default
session (see :func:`repro.session.default_session`).
"""

from ._version import __version__
from .config import EngineConfig
from .discovery import (
    FUN,
    TANE,
    FastFDs,
    HyFD,
    NaiveFDDiscovery,
    make_algorithm,
    make_algorithms,
)
from .fd import FD, FDSet, fd
from .infine import FDType, InFine, InFineResult, ProvenanceTriple, StraightforwardPipeline
from .registry import (
    IntegrityError,
    ProvenanceError,
    RelationRegistry,
    relation_content_hash,
    verify_provenance,
)
from .relational import (
    NULL,
    JoinKind,
    Relation,
    RelationSchema,
    base,
    equi_join,
    join,
    load_csv,
    proj,
    project,
    save_csv,
    sel,
    select,
)
from .session import (
    RunResult,
    Session,
    default_session,
    discover,
    infine,
    profile,
    validate,
)

__all__ = [
    "__version__",
    "Session",
    "EngineConfig",
    "RunResult",
    "default_session",
    "discover",
    "validate",
    "profile",
    "infine",
    "RelationRegistry",
    "IntegrityError",
    "ProvenanceError",
    "relation_content_hash",
    "verify_provenance",
    "Relation",
    "RelationSchema",
    "NULL",
    "JoinKind",
    "project",
    "select",
    "equi_join",
    "base",
    "proj",
    "sel",
    "join",
    "load_csv",
    "save_csv",
    "FD",
    "fd",
    "FDSet",
    "TANE",
    "FUN",
    "FastFDs",
    "HyFD",
    "NaiveFDDiscovery",
    "make_algorithm",
    "make_algorithms",
    "InFine",
    "InFineResult",
    "FDType",
    "ProvenanceTriple",
    "StraightforwardPipeline",
]
