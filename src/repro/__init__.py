"""InFine reproduction: provenance-aware FD discovery on integrated views.

This package reproduces the system described in *"Provenance-aware Discovery
of Functional Dependencies on Integrated Views"* (ICDE 2022).  The public API
is re-exported here so that a typical session only needs::

    from repro import Relation, base, join, InFine

    catalog = {...}
    view = join(base("patient"), base("admission"), on="subject_id")
    result = InFine().run(view, catalog)
    for triple in result.triples:
        print(triple)
"""

from .discovery import (
    FUN,
    TANE,
    FastFDs,
    HyFD,
    NaiveFDDiscovery,
    make_algorithm,
    make_algorithms,
)
from .fd import FD, FDSet, fd
from .infine import FDType, InFine, InFineResult, ProvenanceTriple, StraightforwardPipeline
from .relational import (
    NULL,
    JoinKind,
    Relation,
    RelationSchema,
    base,
    equi_join,
    join,
    load_csv,
    proj,
    project,
    save_csv,
    sel,
    select,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "Relation",
    "RelationSchema",
    "NULL",
    "JoinKind",
    "project",
    "select",
    "equi_join",
    "base",
    "proj",
    "sel",
    "join",
    "load_csv",
    "save_csv",
    "FD",
    "fd",
    "FDSet",
    "TANE",
    "FUN",
    "FastFDs",
    "HyFD",
    "NaiveFDDiscovery",
    "make_algorithm",
    "make_algorithms",
    "InFine",
    "InFineResult",
    "FDType",
    "ProvenanceTriple",
    "StraightforwardPipeline",
]
