"""Functional-dependency core: canonical FDs, Armstrong reasoning, FD sets, AFDs."""

from .approximate import ApproximateFD, approximate_fds, g3_error, holds_approximately
from .closure import (
    FDIndex,
    attribute_closure,
    canonical_cover,
    equivalent,
    implies,
    is_minimal,
    minimise_lhs,
    project_fds,
    prune_non_minimal,
    transitive_fds_through,
)
from .fd import FD, FDError, fd
from .fdset import FDSet

__all__ = [
    "FD",
    "FDError",
    "fd",
    "FDSet",
    "FDIndex",
    "attribute_closure",
    "implies",
    "equivalent",
    "is_minimal",
    "minimise_lhs",
    "canonical_cover",
    "prune_non_minimal",
    "project_fds",
    "transitive_fds_through",
    "ApproximateFD",
    "approximate_fds",
    "g3_error",
    "holds_approximately",
]
