"""Approximate functional dependencies (AFDs).

The paper's *upstaged* FDs are exactly the approximate FDs of a base table
that become exact once a selection or a join filters their violating tuples
(Section II, Definition 5 and Lemma 2).  This module provides the g3 error
measure and an AFD container used by the dataset generators and by tests to
verify the upstaging behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Iterable, Iterator

from ..relational.partition import (
    PartitionCache,
    fd_violation_fraction,
    make_partition_cache,
    validate_level_errors,
)
from ..relational.relation import Relation
from .fd import FD


@dataclass(frozen=True)
class ApproximateFD:
    """An FD together with its g3 error on a given instance."""

    dependency: FD
    error: float

    def is_exact(self, tolerance: float = 0.0) -> bool:
        """Whether the FD holds exactly (up to ``tolerance``)."""
        return self.error <= tolerance

    def __str__(self) -> str:
        return f"{self.dependency}  (g3={self.error:.4f})"


def g3_error(relation: Relation, dependency: FD, cache: PartitionCache | None = None) -> float:
    """The g3 error of ``dependency`` on ``relation``.

    g3 is the minimum fraction of rows that must be removed from the
    relation for the FD to hold exactly.
    """
    return fd_violation_fraction(relation, dependency.lhs, dependency.rhs, cache)


def holds_approximately(
    relation: Relation, dependency: FD, threshold: float, cache: PartitionCache | None = None
) -> bool:
    """Whether ``dependency`` holds on ``relation`` with g3 error at most ``threshold``."""
    return g3_error(relation, dependency, cache) <= threshold


def approximate_fds(
    relation: Relation,
    threshold: float,
    max_lhs: int = 2,
    attributes: Iterable[str] | None = None,
) -> list[ApproximateFD]:
    """Enumerate minimal approximate FDs with g3 error in ``(0, threshold]``.

    Exact FDs (error 0) are excluded — those are returned by the discovery
    algorithms; this function targets the "almost holds" dependencies that
    selections and joins can upstage into exact FDs.

    Parameters
    ----------
    relation:
        The instance to profile.
    threshold:
        Maximum admissible g3 error (e.g. ``0.05`` for "at most 5 % violating
        rows").
    max_lhs:
        Maximum LHS size to explore (AFDs of interest in the paper have small
        LHSs; the search is exponential in this bound).
    attributes:
        Optional attribute subset to restrict the search to.
    """
    if threshold <= 0:
        raise ValueError("threshold must be positive; use a discovery algorithm for exact FDs")
    names = tuple(attributes) if attributes is not None else relation.attribute_names
    cache = make_partition_cache(relation)
    results: list[ApproximateFD] = []
    exact_or_afd: dict[str, list[frozenset[str]]] = {name: [] for name in names}

    for size in range(1, max_lhs + 1):
        for lhs in combinations(sorted(names), size):
            lhs_set = frozenset(lhs)
            # Skip non-minimal candidates: a subset already is exact or
            # within threshold for this RHS.  Minimality knowledge only ever
            # comes from strictly smaller LHSs, so the surviving RHSs of one
            # LHS can be graded as a single batch — one LHS partition (built
            # on first use), one backend-level g3 call covering every RHS.
            rhs_batch = [
                rhs
                for rhs in names
                if rhs not in lhs_set
                and not any(previous <= lhs_set for previous in exact_or_afd[rhs])
            ]
            if not rhs_batch:
                continue
            if len(relation):
                lhs_partition = cache.get(lhs)
                errors = validate_level_errors(
                    relation, [(lhs_partition, rhs) for rhs in rhs_batch]
                )
            else:
                errors = [0.0] * len(rhs_batch)
            for rhs, error in zip(rhs_batch, errors):
                if error == 0.0:
                    exact_or_afd[rhs].append(lhs_set)
                    continue
                if error <= threshold:
                    exact_or_afd[rhs].append(lhs_set)
                    results.append(ApproximateFD(FD(lhs_set, rhs), error))
    return sorted(results, key=lambda afd: afd.dependency.sort_key())


def upstageable_fds(
    base: Relation,
    reduced: Relation,
    threshold: float = 1.0,
    max_lhs: int = 2,
) -> Iterator[ApproximateFD]:
    """AFDs of ``base`` that hold exactly on ``reduced``.

    ``reduced`` is typically a selection of ``base`` or the semi-join of
    ``base`` with the join-attribute values of another table; the yielded
    dependencies are precisely the candidates for *upstaged* provenance.
    """
    cache = make_partition_cache(reduced)
    for approximate in approximate_fds(base, threshold, max_lhs):
        dependency = approximate.dependency
        if fd_violation_fraction(reduced, dependency.lhs, dependency.rhs, cache) == 0.0:
            yield approximate
