"""Armstrong-axiom reasoning: attribute closure, implication, minimal covers.

These are the logical-inference primitives on which InFine's ``inferFDs``
step (Algorithm 4) and its candidate pruning rely.  All functions operate on
plain iterables of :class:`~repro.fd.fd.FD` so they can be used on FD sets,
lists or generators alike.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from .fd import FD


class FDIndex:
    """Reusable per-attribute index over a fixed FD list for fast closures.

    :func:`attribute_closure` is called in tight loops by
    :func:`prune_non_minimal`, :func:`canonical_cover` and InFine's join
    mining; the naive fixed point rescans the whole FD list on every
    iteration, which is quadratic in practice.  This index implements the
    linear-time closure algorithm (Beeri & Bernstein): every FD keeps an
    *unsatisfied-LHS counter*, every attribute maps to the FDs whose LHS
    mentions it, and an attribute entering the closure decrements only the
    counters of the FDs it actually appears in; an FD fires when its counter
    reaches zero.

    Build the index once per FD set and call :meth:`closure` repeatedly;
    the index itself is immutable.
    """

    __slots__ = ("fds", "_rhs", "_lhs_sizes", "_by_attribute", "_instant_rhs")

    def __init__(self, fds: Iterable[FD]) -> None:
        self.fds = list(fds)
        self._rhs = [dependency.rhs for dependency in self.fds]
        self._lhs_sizes = [len(dependency.lhs) for dependency in self.fds]
        by_attribute: dict[str, list[int]] = {}
        instant: list[str] = []
        for index, dependency in enumerate(self.fds):
            if not dependency.lhs:
                instant.append(dependency.rhs)
                continue
            for attribute in dependency.lhs:
                by_attribute.setdefault(attribute, []).append(index)
        self._by_attribute = by_attribute
        self._instant_rhs = instant

    def closure(self, attributes: Iterable[str]) -> frozenset[str]:
        """The closure ``X+`` of ``attributes`` under the indexed FDs."""
        closure = set(attributes)
        pending = list(closure)
        for rhs in self._instant_rhs:
            if rhs not in closure:
                closure.add(rhs)
                pending.append(rhs)
        remaining = list(self._lhs_sizes)
        by_attribute = self._by_attribute
        rhs_of = self._rhs
        while pending:
            attribute = pending.pop()
            for index in by_attribute.get(attribute, ()):
                remaining[index] -= 1
                if not remaining[index]:
                    rhs = rhs_of[index]
                    if rhs not in closure:
                        closure.add(rhs)
                        pending.append(rhs)
        return frozenset(closure)

    def implies(self, candidate: FD) -> bool:
        """Whether the indexed FDs imply ``candidate`` (Armstrong axioms)."""
        return candidate.rhs in self.closure(candidate.lhs)


def attribute_closure(attributes: Iterable[str], fds: Iterable[FD] | FDIndex) -> frozenset[str]:
    """The closure ``X+`` of ``attributes`` under ``fds``.

    Indexed fixed-point computation; pass a prebuilt :class:`FDIndex` to
    amortise the indexing cost over many closures of the same FD set.
    """
    if not isinstance(fds, FDIndex):
        fds = FDIndex(fds)
    return fds.closure(attributes)


def implies(fds: Iterable[FD] | FDIndex, candidate: FD) -> bool:
    """Whether ``fds`` logically implies ``candidate`` (Armstrong axioms)."""
    return candidate.rhs in attribute_closure(candidate.lhs, fds)


def equivalent(first: Iterable[FD], second: Iterable[FD]) -> bool:
    """Whether two FD sets are logically equivalent (mutual implication)."""
    first, second = list(first), list(second)
    first_index, second_index = FDIndex(first), FDIndex(second)
    return all(second_index.implies(dependency) for dependency in first) and all(
        first_index.implies(dependency) for dependency in second
    )


def is_minimal(candidate: FD, fds: Iterable[FD] | FDIndex) -> bool:
    """Whether ``candidate`` has a minimal LHS with respect to ``fds``.

    ``X -> a`` is non-minimal if some proper subset ``X' ⊂ X`` already
    determines ``a`` under ``fds``.
    """
    if not isinstance(fds, FDIndex):
        fds = FDIndex(fds)
    for attribute in candidate.lhs:
        reduced = candidate.lhs - {attribute}
        if candidate.rhs in fds.closure(reduced):
            return False
    return True


def minimise_lhs(candidate: FD, fds: Iterable[FD] | FDIndex) -> FD:
    """Shrink the LHS of ``candidate`` to a minimal determinant under ``fds``."""
    if not isinstance(fds, FDIndex):
        fds = FDIndex(fds)
    lhs = set(candidate.lhs)
    for attribute in sorted(candidate.lhs):
        reduced = lhs - {attribute}
        if candidate.rhs in fds.closure(reduced):
            lhs = reduced
    return FD(lhs, candidate.rhs)


def canonical_cover(fds: Iterable[FD]) -> list[FD]:
    """A canonical (minimal) cover of ``fds``.

    The input is already in canonical single-RHS form; this removes redundant
    FDs and minimises left-hand sides, yielding a deterministic ordering.
    """
    current = sorted(set(fds), key=FD.sort_key)
    # Minimise left-hand sides against the full set (one shared index).
    index = FDIndex(current)
    current = sorted({minimise_lhs(dependency, index) for dependency in current},
                     key=FD.sort_key)
    # Drop redundant FDs (those implied by the others).
    cover: list[FD] = []
    remaining = list(current)
    for dependency in current:
        others = [d for d in remaining if d != dependency]
        if implies(others, dependency):
            remaining = others
        else:
            cover.append(dependency)
    return sorted(cover, key=FD.sort_key)


def prune_non_minimal(candidates: Iterable[FD], known: Iterable[FD]) -> list[FD]:
    """Remove candidates that are implied by ``known`` FDs.

    This is the pruning step of Algorithms 2, 3 and 5 ("prune non-minimal FDs
    in D_cand knowing D"): a candidate whose validity already follows from
    previously discovered FDs need not be checked against the data, and would
    not be minimal anyway.
    """
    index = FDIndex(known)
    return [candidate for candidate in candidates if not index.implies(candidate)]


def project_fds(fds: Iterable[FD], attributes: Iterable[str]) -> list[FD]:
    """Project an FD set onto ``attributes``.

    Computes, for every subset-closure reachable through the retained
    attributes, the implied FDs whose attributes all lie within
    ``attributes``.  To stay tractable the projection enumerates closures of
    subsets of the retained attributes only up to size ``3`` and falls back
    to filtering whole FDs otherwise; this matches the way the paper uses
    projection (attributes are pruned *before* mining, so full projection of
    arbitrary covers is never needed on the hot path).
    """
    fds = list(fds)
    retained = sorted(set(attributes))
    retained_set = set(retained)
    direct = [dependency for dependency in fds if dependency.attributes <= retained_set]
    # Small-subset closure enumeration recovers transitive FDs that traverse
    # removed attributes (e.g. a -> b -> c with b projected away).
    results: set[FD] = set(direct)
    max_lhs = min(3, len(retained))
    index = FDIndex(fds)
    from itertools import combinations

    for size in range(1, max_lhs + 1):
        for lhs in combinations(retained, size):
            closure = index.closure(lhs)
            for attribute in closure & retained_set:
                if attribute in lhs:
                    continue
                results.add(FD(lhs, attribute))
    return canonical_cover(results)


def transitive_fds_through(
    left_fds: Iterable[FD],
    right_fds: Iterable[FD],
    left_join_attributes: Sequence[str],
    right_join_attributes: Sequence[str],
) -> list[FD]:
    """FDs inferable across a join by transitivity *through the join attributes*.

    This is the logical core of Theorem 2 / Algorithm 4 (``infer``): if on the
    join result ``A -> X`` holds (with ``A`` from the left side and ``X`` the
    left join attributes) and ``Y -> b`` holds (with ``Y`` the right join
    attributes), then ``A -> b`` holds because the join enforces ``X = Y``.

    The function returns the *raw* inferred FDs; minimisation (the ``refine``
    subroutine) is data-dependent and lives in :mod:`repro.infine.inference`.
    """
    left_fds = list(left_fds)
    right_fds = list(right_fds)
    left_join = list(left_join_attributes)
    right_join = set(right_join_attributes)

    inferred: set[FD] = set()
    left_index = FDIndex(left_fds)
    # Everything the right join attributes determine on the right side
    # transfers to any determinant covering the left join attributes.
    right_closure = attribute_closure(right_join, right_fds)
    # Determinants A (LHSs of known left FDs, plus the join attributes
    # themselves) whose closure covers every left join attribute.
    candidate_determinants = {dependency.lhs for dependency in left_fds}
    candidate_determinants.add(frozenset(left_join))
    for determinant in candidate_determinants:
        closure = left_index.closure(determinant)
        if not set(left_join) <= set(closure):
            continue
        for attribute in right_closure - right_join:
            if attribute in determinant:
                continue
            inferred.add(FD(determinant, attribute))
    return sorted(inferred, key=FD.sort_key)
