"""FD set container.

:class:`FDSet` wraps a set of canonical FDs with the operations the
algorithms need: membership, minimality filtering, logical implication,
equivalence, difference with provenance-style classification, and
restriction to an attribute subset.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from .closure import attribute_closure, canonical_cover, equivalent, implies
from .fd import FD


class FDSet:
    """A mutable set of canonical FDs with Armstrong-aware helpers."""

    __slots__ = ("_fds",)

    def __init__(self, fds: Iterable[FD] = ()) -> None:
        self._fds: set[FD] = set(fds)

    # -- container protocol ---------------------------------------------------
    def __len__(self) -> int:
        return len(self._fds)

    def __iter__(self) -> Iterator[FD]:
        return iter(sorted(self._fds, key=FD.sort_key))

    def __contains__(self, dependency: object) -> bool:
        return dependency in self._fds

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FDSet):
            return self._fds == other._fds
        if isinstance(other, (set, frozenset)):
            return self._fds == other
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash(frozenset(self._fds))

    def __repr__(self) -> str:
        return f"FDSet({len(self._fds)} FDs)"

    def __or__(self, other: "FDSet | Iterable[FD]") -> "FDSet":
        return FDSet(self._fds | set(other))

    def __and__(self, other: "FDSet | Iterable[FD]") -> "FDSet":
        return FDSet(self._fds & set(other))

    def __sub__(self, other: "FDSet | Iterable[FD]") -> "FDSet":
        return FDSet(self._fds - set(other))

    # -- mutation -------------------------------------------------------------
    def add(self, dependency: FD) -> None:
        """Add a single FD."""
        self._fds.add(dependency)

    def update(self, fds: Iterable[FD]) -> None:
        """Add several FDs."""
        self._fds.update(fds)

    def discard(self, dependency: FD) -> None:
        """Remove an FD if present."""
        self._fds.discard(dependency)

    # -- queries --------------------------------------------------------------
    def as_set(self) -> frozenset[FD]:
        """The underlying FDs as a frozen set."""
        return frozenset(self._fds)

    def as_list(self) -> list[FD]:
        """The FDs as a deterministically sorted list."""
        return sorted(self._fds, key=FD.sort_key)

    def attributes(self) -> frozenset[str]:
        """All attributes mentioned by any FD in the set."""
        result: set[str] = set()
        for dependency in self._fds:
            result |= dependency.attributes
        return frozenset(result)

    def with_rhs(self, attribute: str) -> list[FD]:
        """All FDs whose RHS is ``attribute``."""
        return sorted((d for d in self._fds if d.rhs == attribute), key=FD.sort_key)

    def closure_of(self, attributes: Iterable[str]) -> frozenset[str]:
        """Attribute closure under this FD set."""
        return attribute_closure(attributes, self._fds)

    def implies(self, candidate: FD) -> bool:
        """Whether the set logically implies ``candidate``."""
        return implies(self._fds, candidate)

    def is_equivalent_to(self, other: "FDSet | Iterable[FD]") -> bool:
        """Logical equivalence with another FD set."""
        return equivalent(self._fds, set(other))

    def restrict_to(self, attributes: Iterable[str]) -> "FDSet":
        """FDs whose attributes are all within ``attributes``."""
        allowed = set(attributes)
        return FDSet(d for d in self._fds if d.attributes <= allowed)

    def minimal_only(self) -> "FDSet":
        """Drop FDs whose LHS strictly contains the LHS of another FD with the same RHS."""
        kept: set[FD] = set()
        for dependency in self._fds:
            dominated = any(
                other.rhs == dependency.rhs and other.lhs < dependency.lhs
                for other in self._fds
            )
            if not dominated:
                kept.add(dependency)
        return FDSet(kept)

    def canonical(self) -> "FDSet":
        """A canonical (minimal, non-redundant) cover of the set."""
        return FDSet(canonical_cover(self._fds))

    def keys_of(self, attributes: Iterable[str]) -> list[frozenset[str]]:
        """Minimal candidate keys of the schema ``attributes`` implied by the set.

        Exponential in the number of attributes; intended for the small
        schemas of the paper's views (< 20 attributes) and for tests.
        """
        from itertools import combinations

        universe = tuple(sorted(set(attributes)))
        keys: list[frozenset[str]] = []
        for size in range(1, len(universe) + 1):
            for combo in combinations(universe, size):
                candidate = frozenset(combo)
                if any(key <= candidate for key in keys):
                    continue
                if set(universe) <= self.closure_of(candidate):
                    keys.append(candidate)
        return keys

    def difference_report(self, other: "FDSet | Iterable[FD]") -> dict[str, list[FD]]:
        """Classify FDs of ``self`` against ``other``.

        Returns a dictionary with keys:

        ``shared``
            FDs present in both sets verbatim.
        ``implied``
            FDs of ``self`` not present in ``other`` but implied by it.
        ``new``
            FDs of ``self`` neither present in nor implied by ``other``.

        This is the comparison a data steward would run manually with the
        straightforward approach; InFine produces the same information as
        provenance triples without the extra pass.
        """
        other_set = FDSet(other)
        shared: list[FD] = []
        implied_only: list[FD] = []
        new: list[FD] = []
        for dependency in self.as_list():
            if dependency in other_set:
                shared.append(dependency)
            elif other_set.implies(dependency):
                implied_only.append(dependency)
            else:
                new.append(dependency)
        return {"shared": shared, "implied": implied_only, "new": new}
