"""Canonical functional dependencies.

Throughout the library FDs are kept in *canonical* form: a (possibly empty)
left-hand side set of attributes and a single right-hand attribute, matching
the convention used in the paper ("minimal FDs with only one attribute in
their right-hand part").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable


class FDError(ValueError):
    """Raised for malformed functional dependencies."""


@dataclass(frozen=True, init=False)
class FD:
    """A canonical functional dependency ``lhs -> rhs``.

    Parameters
    ----------
    lhs:
        Attribute names of the left-hand side (determinant).  May be empty,
        which expresses that ``rhs`` is constant.
    rhs:
        The single right-hand-side attribute (dependent).
    """

    lhs: frozenset[str]
    rhs: str

    def __init__(self, lhs: Iterable[str] | str, rhs: str) -> None:
        if isinstance(lhs, str):
            lhs = (lhs,)
        lhs_set = frozenset(lhs)
        if not rhs or not isinstance(rhs, str):
            raise FDError(f"FD right-hand side must be a non-empty attribute name, got {rhs!r}")
        if not all(isinstance(a, str) and a for a in lhs_set):
            raise FDError(f"FD left-hand side must contain attribute names, got {sorted(lhs_set)}")
        if rhs in lhs_set:
            raise FDError(f"trivial FD rejected: {sorted(lhs_set)} -> {rhs}")
        object.__setattr__(self, "lhs", lhs_set)
        object.__setattr__(self, "rhs", rhs)

    # -- structural queries ---------------------------------------------------
    @property
    def attributes(self) -> frozenset[str]:
        """Every attribute mentioned by the FD."""
        return self.lhs | {self.rhs}

    def is_constant(self) -> bool:
        """Whether the FD has an empty LHS (``{} -> rhs``)."""
        return not self.lhs

    def generalises(self, other: "FD") -> bool:
        """Whether this FD implies ``other`` by LHS augmentation.

        ``X -> a`` generalises ``Y -> a`` whenever ``X ⊆ Y``; a discovered
        ``other`` would then be non-minimal.
        """
        return self.rhs == other.rhs and self.lhs <= other.lhs

    def specialises(self, other: "FD") -> bool:
        """Whether this FD has a superset LHS of ``other`` (same RHS)."""
        return other.generalises(self)

    def restricted_to(self, attributes: Iterable[str]) -> "FD | None":
        """Return the FD unchanged if all its attributes are in ``attributes``.

        Returns ``None`` otherwise; used to filter FDs to a view's projected
        attribute set.
        """
        allowed = set(attributes)
        if self.attributes <= allowed:
            return self
        return None

    # -- rendering ------------------------------------------------------------
    def __str__(self) -> str:
        lhs = ",".join(sorted(self.lhs)) if self.lhs else "∅"
        return f"{lhs} -> {self.rhs}"

    def __repr__(self) -> str:
        return f"FD({sorted(self.lhs)!r} -> {self.rhs!r})"

    def sort_key(self) -> tuple:
        """Deterministic ordering key (by RHS, then LHS size, then LHS names)."""
        return (self.rhs, len(self.lhs), tuple(sorted(self.lhs)))

    @classmethod
    def parse(cls, text: str) -> "FD":
        """Parse ``"a,b -> c"`` (or ``"∅ -> c"``) into an FD."""
        if "->" not in text:
            raise FDError(f"cannot parse FD from {text!r}: missing '->'")
        lhs_text, rhs_text = text.split("->", 1)
        rhs = rhs_text.strip()
        lhs_text = lhs_text.strip()
        if lhs_text in ("", "∅", "{}"):
            lhs: tuple[str, ...] = ()
        else:
            lhs = tuple(part.strip() for part in lhs_text.split(",") if part.strip())
        return cls(lhs, rhs)


def fd(lhs: Iterable[str] | str, rhs: str) -> FD:
    """Terse FD constructor used pervasively in tests and dataset definitions."""
    return FD(lhs, rhs)
