"""The package version, in a leaf module.

Kept import-free so provenance stamping (``repro.registry.provenance``)
can record the code version without touching ``repro/__init__`` — which
imports half the package and would turn the version lookup into an import
cycle.  ``repro.__version__`` and ``setup.py`` both read from here.
"""

__version__ = "1.2.0"
