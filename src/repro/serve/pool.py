"""Tenant-keyed session pooling.

One :class:`~repro.session.Session` per tenant, created lazily on first use
and capped LRU-style.  Sessions are exactly the isolation primitive the
engine API built: each owns its :class:`~repro.config.EngineConfig`,
relation-scoped kernel caches and :class:`~repro.relational.backend.KernelCounters`,
so two tenants sharing one pool still share *nothing* of the engine state.

Eviction is always safe: :meth:`Session.close` only drops caches (every
cache is semantics-preserving and rebuilt on demand), and partitions hold
their mark caches weakly, so an evicted tenant's in-flight work finishes
correctly — it merely recomputes what the dropped caches held.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterable, Mapping

from ..config import TENANT_DEFAULT_KEY, EngineConfig
from ..session import Session


class SessionPool:
    """Lazily creates and LRU-caps one :class:`Session` per tenant key.

    Parameters
    ----------
    tenant_configs:
        Per-tenant :class:`EngineConfig` mapping (the output of
        :func:`repro.config.parse_tenant_configs`).  The special key ``"*"``
        configures tenants without an explicit entry; without one, unlisted
        tenants run on the environment defaults
        (:meth:`EngineConfig.from_env`).
    max_sessions:
        Cap on concurrently pooled sessions.  Beyond it the least recently
        *used* tenant's session is closed and dropped; the tenant transparently
        receives a fresh session (with fresh counters) on its next job.
    """

    def __init__(
        self,
        tenant_configs: Mapping[str, EngineConfig] | None = None,
        max_sessions: int = 64,
    ) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be at least 1, got {max_sessions}")
        configs = dict(tenant_configs or {})
        self._default_config = configs.pop(TENANT_DEFAULT_KEY, None)
        self._configs = configs
        self.max_sessions = max_sessions
        self._sessions: "OrderedDict[str, Session]" = OrderedDict()
        self._lock = threading.Lock()
        self._created = 0
        self._evicted = 0
        self._hits = 0

    def config_for(self, tenant: str) -> EngineConfig:
        """The engine configuration ``tenant`` runs under."""
        config = self._configs.get(tenant)
        if config is not None:
            return config
        if self._default_config is not None:
            return self._default_config
        return EngineConfig.from_env()

    def get(self, tenant: str) -> Session:
        """The tenant's pooled session (created on first use, LRU-refreshed)."""
        if not isinstance(tenant, str) or not tenant:
            raise ValueError(f"tenant must be a non-empty string, got {tenant!r}")
        with self._lock:
            session = self._sessions.get(tenant)
            if session is not None:
                self._hits += 1
                self._sessions.move_to_end(tenant)
                return session
            session = Session(config=self.config_for(tenant))
            self._sessions[tenant] = session
            self._created += 1
            while len(self._sessions) > self.max_sessions:
                _, evicted = self._sessions.popitem(last=False)
                evicted.close()
                self._evicted += 1
            return session

    def peek(self, tenant: str) -> Session | None:
        """The tenant's pooled session without creating or LRU-refreshing it."""
        with self._lock:
            return self._sessions.get(tenant)

    def evict(self, tenant: str) -> bool:
        """Close and drop the tenant's session; ``False`` if none was pooled."""
        with self._lock:
            session = self._sessions.pop(tenant, None)
        if session is None:
            return False
        session.close()
        self._evicted += 1
        return True

    def close(self) -> None:
        """Close every pooled session and empty the pool (pool stays usable)."""
        with self._lock:
            sessions = list(self._sessions.values())
            self._sessions.clear()
        for session in sessions:
            session.close()

    def configs_payload(self) -> dict[str, dict[str, object]] | None:
        """The pool's per-tenant configuration in JSON form (``None`` = env).

        The inverse of the constructor's ``tenant_configs`` argument, with
        every :class:`EngineConfig` flattened through
        :meth:`EngineConfig.as_dict` — what the process executor ships to
        its worker processes so each can rebuild an identically configured
        pool of its own (via :meth:`EngineConfig.from_dict`).
        """
        if not self._configs and self._default_config is None:
            return None
        payload = {tenant: config.as_dict() for tenant, config in self._configs.items()}
        if self._default_config is not None:
            payload[TENANT_DEFAULT_KEY] = self._default_config.as_dict()
        return payload

    def tenants(self) -> Iterable[str]:
        """The currently pooled tenant keys, least recently used first."""
        with self._lock:
            return tuple(self._sessions)

    def stats(self) -> dict[str, int]:
        """Creation/eviction/hit counters plus the current pool size."""
        with self._lock:
            return {
                "sessions": len(self._sessions),
                "max_sessions": self.max_sessions,
                "created": self._created,
                "evicted": self._evicted,
                "hits": self._hits,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._sessions)

    def __repr__(self) -> str:
        return f"SessionPool(sessions={len(self)}, max_sessions={self.max_sessions})"
