"""Pluggable job execution: the worker side of the serving layer.

:class:`~repro.serve.jobs.JobQueue` owns the *queueing* semantics —
backpressure, per-tenant fairness, cancel/timeout of waiting jobs, drain on
shutdown — but delegates the actual *execution* of a claimed job to a
:class:`WorkerExecutor`.  Two executors ship:

* :class:`ThreadExecutor` (default) — runs the job's callable on the queue's
  worker thread, in-process.  This is the original behaviour: cheap, shares
  the server's :class:`~repro.serve.pool.SessionPool`, but CPU-bound jobs
  serialise on the GIL.
* :class:`ProcessExecutor` — an M:N ``multiprocessing`` worker pool: M
  queue worker threads submit to N worker processes through a shared idle
  list (any free worker serves any thread — work stealing), with optional
  recycling after ``REPRO_SERVE_MAX_JOBS_PER_WORKER`` jobs.  Each worker
  process owns its own lazily built :class:`~repro.serve.pool.SessionPool`
  (sessions are share-nothing by design), receives jobs as the existing
  ``repro/job-request-v1`` JSON payloads and replies with the canonical
  ``repro/run-result-v1`` JSON — the exact bytes a bare session would have
  produced, so served artefacts are byte-identical across executors (pinned
  by tests).  CPU-bound jobs run truly in parallel, one core per worker.

Crash recovery: a worker process that dies mid-job (OOM-kill, segfault,
``SIGKILL``) fails *that job only* — the queue thread observes the broken
pipe, marks the job ``failed`` with a diagnostic naming the dead pid and
exit code, and the executor spawns a fresh worker process for the next job.

The wire across the pipe is deliberately thin: ``("job", payload_bytes,
shm_meta)`` in — the payload JSON is encoded **once per submission** by
:class:`PreparedTask` and reused across retries, and ``shm_meta`` (when the
shared-memory plane holds the job's relation) names the segment to attach
zero-copy instead of re-parsing rows — and ``("result", json_text,
shm_status)`` out (``("error", message)`` for job-level failures).  Plain
zero-argument picklables are also accepted (``("call", fn)``), which keeps
:class:`ProcessExecutor` drivable by the queue's generic tests without
going through the session machinery.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Any, Mapping

from .faults import (
    SITE_PROCESS_KILL,
    SITE_PROCESS_RECV,
    SITE_PROCESS_SEND,
    SITE_THREAD_RUN,
    FaultPlan,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.connection import Connection

    from ..shm.plane import SharedRelationPlane
    from .pool import SessionPool

#: Executor kinds selectable by name (CLI ``--executor``, ``ServeConfig``).
EXECUTOR_KINDS = ("thread", "process")


class PreparedTask:
    """A job payload serialised once at submit time, reused across retries.

    The pre-pool executor re-encoded the identical ``repro/job-request-v1``
    dict on *every* retry attempt; :meth:`encoded` memoises the canonical
    JSON bytes so attempt N ships the exact buffer attempt 1 built
    (``serialisations`` counts encodes and is pinned to 1 by tests).
    ``shm_hash`` carries the content hash of the job's relation when the
    shared-memory plane holds it — each execution attempt then leases the
    segment and ships attach metadata instead of relying on the payload's
    rows.
    """

    __slots__ = ("payload", "shm_hash", "serialisations", "_encoded")

    def __init__(self, payload: Mapping[str, Any], shm_hash: "str | None" = None) -> None:
        self.payload = dict(payload)
        self.shm_hash = shm_hash
        self.serialisations = 0
        self._encoded: "bytes | None" = None

    def encoded(self) -> bytes:
        """The canonical JSON bytes of the payload (encoded at most once)."""
        if self._encoded is None:
            self.serialisations += 1
            self._encoded = json.dumps(self.payload, sort_keys=True).encode("utf-8")
        return self._encoded


class WorkerCrashed(RuntimeError):
    """A worker process died while running a job (the job is failed)."""


class RemoteJobError(RuntimeError):
    """A job raised inside a worker process.

    The message is the child-side ``"ExcType: message"`` rendering, so the
    queue records exactly the error string the thread executor would have —
    failure diagnostics are executor-independent.
    """


class RestartSupervisor:
    """Restart-budget accounting over a rolling time window.

    Every worker-process respawn is :meth:`record`\\ ed; the executor is
    **degraded** while more than ``budget`` respawns happened within the
    last ``window`` seconds.  Degradation is therefore self-healing: once
    the crash storm stops and the events age out of the window, the
    executor reports healthy again — no manual reset.
    """

    def __init__(self, budget: int = 5, window: float = 30.0) -> None:
        if budget < 0:
            raise ValueError(f"restart budget must be non-negative, got {budget}")
        if window <= 0:
            raise ValueError(f"restart window must be positive, got {window}")
        self.budget = budget
        self.window = window
        self._lock = threading.Lock()
        self._events: deque[float] = deque()
        self._total = 0

    def _prune_locked(self, now: float) -> None:
        while self._events and self._events[0] <= now - self.window:
            self._events.popleft()

    def record(self) -> None:
        """Count one respawn at the current time."""
        now = time.monotonic()
        with self._lock:
            self._events.append(now)
            self._total += 1
            self._prune_locked(now)

    def respawns_in_window(self) -> int:
        """Respawns still inside the rolling window."""
        with self._lock:
            self._prune_locked(time.monotonic())
            return len(self._events)

    def degraded(self) -> bool:
        """Whether the respawn budget is currently exceeded."""
        return self.respawns_in_window() > self.budget

    def snapshot(self) -> dict[str, Any]:
        """The supervisor's state for health/stats payloads."""
        in_window = self.respawns_in_window()
        with self._lock:
            total = self._total
        return {
            "restart_budget": self.budget,
            "restart_window_s": self.window,
            "respawns_in_window": in_window,
            "respawns_total": total,
            "degraded": in_window > self.budget,
        }


class WorkerExecutor:
    """Interface between the job queue's worker threads and job execution.

    ``execute(slot, task)`` is called by queue worker thread ``slot`` (one
    slot per thread, so per-slot state needs no locking against other
    ``execute`` calls).  ``remote`` tells the :class:`~repro.serve.server.Server`
    what task to enqueue: inline executors receive a prepared zero-argument
    callable closing over the server's session pool; remote executors
    receive the job's ``repro/job-request-v1`` payload instead.
    """

    #: Executor kind name (reported in queue/server stats).
    name = "abstract"

    #: Whether jobs must be handed over as JSON payloads (``True``) or as
    #: in-process callables (``False``).
    remote = False

    #: Optional :class:`~repro.serve.faults.FaultPlan` driving the
    #: executor's injection sites (``None`` = disabled, zero overhead).
    faults: "FaultPlan | None" = None

    def start(self, workers: int) -> None:
        """Allocate ``workers`` execution slots (called once by the queue)."""
        raise NotImplementedError

    def execute(self, slot: int, task: Any) -> Any:
        """Run ``task`` on slot ``slot`` and return its result (may raise)."""
        raise NotImplementedError

    def kill_slot(self, slot: int) -> bool:
        """Forcibly reclaim the worker behind ``slot`` (deadline watchdog).

        Returns ``True`` when a worker was actually killed.  The default is
        a no-op: thread-backed slots cannot be preempted — the queue's
        watchdog then relies on cooperative completion (the overrunning
        job's result is discarded once it returns).
        """
        return False

    def close(self, timeout: float | None = 10.0) -> None:
        """Release execution resources; idempotent."""
        raise NotImplementedError

    def stats(self) -> dict[str, Any]:
        """Executor kind plus whatever bookkeeping the executor keeps."""
        return {"executor": self.name}


class ThreadExecutor(WorkerExecutor):
    """The in-process executor: jobs are callables run on the queue thread.

    This is exactly the pre-executor behaviour of the serving layer — the
    job's closure runs under the GIL against the server's shared
    :class:`~repro.serve.pool.SessionPool`.
    """

    name = "thread"
    remote = False

    def __init__(self, faults: "FaultPlan | None" = None) -> None:
        self.faults = faults

    def start(self, workers: int) -> None:
        self._workers = workers

    def execute(self, slot: int, task: Any) -> Any:
        if not callable(task):
            raise TypeError(f"the thread executor runs callables, got {type(task).__name__}")
        faults = self.faults
        if faults is not None:
            faults.fire(SITE_THREAD_RUN)
        return task()

    def close(self, timeout: float | None = 10.0) -> None:
        pass

    def stats(self) -> dict[str, Any]:
        return {"executor": self.name, "workers": getattr(self, "_workers", 0), "degraded": False}


# ---------------------------------------------------------------------------
# The process executor and its worker-process main loop.
# ---------------------------------------------------------------------------


def _process_worker_main(
    conn: "Connection",
    tenant_configs_payload: dict | None,
    registry_root: str | None = None,
) -> None:
    """Main loop of one worker process.

    Owns a lazily built :class:`SessionPool` configured exactly like the
    parent's (the per-tenant ``EngineConfig`` mapping travels as its JSON
    form), executes ``("job", payload, shm_meta)`` messages through the
    same :func:`~repro.serve.protocol.execute_payload` path a bare session
    uses, and replies with the canonical ``repro/run-result-v1`` JSON text
    plus how the relation arrived (``"shm"``/``"fallback"``/``"wire"``).
    The payload travels as pre-encoded JSON bytes; ``shm_meta`` (when
    present) names a shared-memory segment to attach zero-copy — *any*
    attach failure (segment evicted, no numpy, corrupt header) falls back
    to resolving the payload itself, so shm is purely an optimisation.
    ``registry_root`` (the server's persistent relation registry directory)
    lets workers resolve ``relation_ref`` jobs themselves — each worker's
    registry keeps its own verified-relation cache, so a tenant hammering
    one relation decodes it once per worker, not once per job.
    Job-level exceptions become ``("error", "ExcType: message")`` replies;
    only a dead pipe (parent gone) or ``("exit",)`` ends the loop.
    """
    # Imports happen here (not at module import) so the parent can ship this
    # function to a spawn-context child before the repro package is touched.
    from ..config import EngineConfig
    from ..registry.store import RelationRegistry
    from .pool import SessionPool
    from .protocol import execute_payload

    pool: SessionPool | None = None
    registry: RelationRegistry | None = None
    attach_cache = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op = message[0]
        if op == "exit":
            break
        try:
            if op == "ping":
                conn.send(("value", "pong"))
                continue
            if op == "job":
                payload = message[1]
                if isinstance(payload, (bytes, bytearray)):
                    payload = json.loads(payload)
                shm_meta = message[2] if len(message) > 2 else None
                relation = None
                shm_status = "wire"
                if shm_meta is not None:
                    try:
                        if attach_cache is None:
                            from ..shm.relation import SegmentAttachCache

                            attach_cache = SegmentAttachCache()
                        relation = attach_cache.get(shm_meta["name"], shm_meta["hash"])
                        shm_status = "shm"
                    except Exception:  # noqa: BLE001 - any miss means wire
                        relation = None
                        shm_status = "fallback"
                if pool is None:
                    configs = None
                    if tenant_configs_payload is not None:
                        configs = {
                            tenant: EngineConfig.from_dict(fields)
                            for tenant, fields in tenant_configs_payload.items()
                        }
                    pool = SessionPool(configs)
                if registry is None and registry_root is not None:
                    registry = RelationRegistry(registry_root)
                result = execute_payload(pool, payload, registry=registry, relation=relation)
                conn.send(("result", json.dumps(result.payload, sort_keys=True), shm_status))
            elif op == "call":
                conn.send(("value", message[1]()))
            else:
                conn.send(("error", f"ProtocolError: unknown worker op {op!r}"))
        except Exception as exc:  # noqa: BLE001 - job errors become replies
            try:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            except (OSError, ValueError):  # parent gone / unpicklable detail
                break
    if attach_cache is not None:
        attach_cache.close()


class _ProcessSlot:
    """One worker process, its pipe, and the lock serialising access to it.

    A slot is driven by at most one queue worker thread at a time (the
    dispatch idle-list hands each slot out exclusively); the lock exists so
    :meth:`ProcessExecutor.close` can safely interleave with a thread that
    is still mid-``execute`` past the drain deadline.  ``jobs_done`` counts
    completed jobs since the current worker process spawned — the recycling
    trigger.
    """

    __slots__ = ("process", "conn", "lock", "busy", "jobs_done")

    def __init__(self) -> None:
        self.process = None
        self.conn = None
        self.lock = threading.Lock()
        self.busy = False
        self.jobs_done = 0


class ProcessExecutor(WorkerExecutor):
    """An M:N ``multiprocessing`` worker pool behind the queue's threads.

    M queue worker threads submit through a shared idle list to N worker
    processes — any free worker serves any thread, so a slow job never
    idles the other workers of "its" thread (work stealing).  With
    ``processes`` unset, N matches the queue's worker count (the pre-pool
    1:1 shape); smaller N queues submissions, larger N gives crash storms
    spare capacity.

    Parameters
    ----------
    tenant_configs_payload:
        Per-tenant engine configuration in its JSON form
        (:meth:`repro.serve.pool.SessionPool.configs_payload`); each worker
        process rebuilds its own :class:`SessionPool` from it.
    start_method:
        ``multiprocessing`` start method (``spawn``/``fork``/``forkserver``).
        ``spawn`` is the safe default — worker processes are started from a
        fresh interpreter, never from a parent mid-flight with running
        threads; ``fork`` starts faster but inherits the parent's threads'
        lock state.
    warmup:
        Start (and ping) every worker process eagerly in :meth:`start`, so
        the interpreter/import cost is paid at server boot instead of on the
        first job of each slot.  ``False`` spawns each worker lazily.
    restart_budget / restart_window:
        Crash-loop supervision: more than ``restart_budget`` respawns within
        the rolling ``restart_window`` seconds marks the executor *degraded*
        (reported by :meth:`stats`; ``/healthz`` maps it to 503).
    fallback:
        Degradation path: while degraded, run jobs **inline** in the server
        process (the same :func:`~repro.serve.protocol.execute_payload`
        dispatch a thread executor uses, so artefacts stay byte-identical)
        instead of feeding a crash-looping worker fleet.
    faults:
        Optional :class:`~repro.serve.faults.FaultPlan` wired to the
        ``process.send``/``process.recv``/``process.kill`` injection sites.
    registry_root:
        Root directory of the server's **persistent** relation registry;
        each worker process opens its own handle on it to resolve
        ``relation_ref`` jobs (``None`` = no registry, by-reference jobs
        are resolved inline by the server before dispatch).
    processes:
        Worker-process pool size N (``0`` = match the queue worker count
        handed to :meth:`start`).
    max_jobs_per_worker:
        Recycle a worker process after this many completed jobs: it is
        asked to exit and a fresh worker spawns lazily on the slot's next
        job.  Bounds per-worker memory growth (session caches, attached
        segments); a recycle is *not* a crash — it never touches the
        supervision budget or the ``respawns`` counter.  ``0`` disables.
    plane:
        The parent-owned :class:`~repro.shm.plane.SharedRelationPlane`, or
        ``None`` to disable the shared-memory path.  The executor leases a
        segment per execution attempt of every :class:`PreparedTask` that
        carries a ``shm_hash`` (releasing in ``finally`` — that is how
        refcounts reconcile when a worker dies mid-job) and closes the
        plane with itself.
    """

    name = "process"
    remote = True

    def __init__(
        self,
        tenant_configs_payload: Mapping[str, Mapping[str, Any]] | None = None,
        start_method: str = "spawn",
        warmup: bool = True,
        restart_budget: int = 5,
        restart_window: float = 30.0,
        fallback: bool = False,
        faults: "FaultPlan | None" = None,
        registry_root: str | None = None,
        processes: int = 0,
        max_jobs_per_worker: int = 0,
        plane: "SharedRelationPlane | None" = None,
    ) -> None:
        if processes < 0:
            raise ValueError(f"processes must be non-negative, got {processes}")
        if max_jobs_per_worker < 0:
            raise ValueError(
                f"max_jobs_per_worker must be non-negative, got {max_jobs_per_worker}"
            )
        self._tenant_configs_payload = (
            None
            if tenant_configs_payload is None
            else {tenant: dict(fields) for tenant, fields in tenant_configs_payload.items()}
        )
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self.registry_root = registry_root
        self.warmup = warmup
        self.faults = faults
        self.supervisor = RestartSupervisor(budget=restart_budget, window=restart_window)
        self.fallback = fallback
        self.processes = processes
        self.max_jobs_per_worker = max_jobs_per_worker
        self.plane = plane
        self._fallback_lock = threading.Lock()
        self._fallback_pool: "SessionPool | None" = None
        self._fallback_registry = None
        self._fallback_jobs = 0
        self._slots: list[_ProcessSlot] = []
        self._lifecycle = threading.Lock()
        self._closed = False
        self._spawned = 0
        self._respawns = 0
        self._recycled = 0
        self._shm_jobs = 0
        self._wire_jobs = 0
        # M:N dispatch state: the idle list holds slot indices any queue
        # thread may claim; _active maps queue slot -> worker slot while a
        # job is in flight (the watchdog's kill_slot lookup).
        self._dispatch = threading.Condition()
        self._idle: list[int] = []
        self._active: dict[int, int] = {}
        self._queue_threads = 0

    # -- lifecycle -------------------------------------------------------------
    def start(self, workers: int) -> None:
        self._queue_threads = workers
        count = self.processes or workers
        self._slots = [_ProcessSlot() for _ in range(count)]
        # LIFO free list, initialised so slot 0 is claimed first and a
        # just-released (warm) worker is reused before a cold one.
        self._idle = list(range(count - 1, -1, -1))
        if self.warmup:
            for slot in self._slots:
                self._spawn(slot)
            for slot in self._slots:
                slot.conn.send(("ping",))
                slot.conn.recv()

    def _spawn(self, slot: _ProcessSlot) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_process_worker_main,
            args=(child_conn, self._tenant_configs_payload, self.registry_root),
            name="repro-serve-process-worker",
            daemon=True,
        )
        process.start()
        child_conn.close()
        slot.process, slot.conn = process, parent_conn
        slot.jobs_done = 0
        with self._lifecycle:
            self._spawned += 1

    def _reap_and_respawn(self, slot: _ProcessSlot) -> tuple[int | None, int | None, bool]:
        """Reap a worker whose pipe failed, record its identity, start a replacement.

        The worker is usually already dead (SIGKILL, OOM, crash) and joins
        immediately.  When the *pipe* failed but the process survived (a
        dropped/truncated message), the stream is unusable either way — the
        worker is terminated so a replacement never coexists with it (no
        worker leak).  No replacement is started once the executor is
        closing (the death was most likely the shutdown ``terminate``
        itself)."""
        process = slot.process
        pid = exitcode = None
        if process is not None:
            process.join(timeout=0.25)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - terminate-resistant child
                process.kill()
                process.join(timeout=5.0)
            pid, exitcode = process.pid, process.exitcode
        if slot.conn is not None:
            slot.conn.close()
        slot.process = slot.conn = None
        with self._lifecycle:
            closed = self._closed
            if not closed:
                self._respawns += 1
        if not closed:
            self.supervisor.record()
            self._spawn(slot)
        return pid, exitcode, not closed

    # -- execution -------------------------------------------------------------
    def _acquire_worker(self, queue_slot: int) -> int:
        """Claim an idle worker slot for ``queue_slot`` (blocks while all busy).

        Raises :class:`WorkerCrashed` once the executor is closing — the
        queue classifies that like any other infra failure of a drained job.
        """
        with self._dispatch:
            while True:
                if self._closed:
                    raise WorkerCrashed(
                        "no worker available; the executor is shutting down"
                    )
                if self._idle:
                    index = self._idle.pop()
                    self._active[queue_slot] = index
                    return index
                self._dispatch.wait()

    def _release_worker(self, queue_slot: int, index: int) -> None:
        with self._dispatch:
            self._active.pop(queue_slot, None)
            self._idle.append(index)
            self._dispatch.notify()

    def _retire(self, slot: _ProcessSlot) -> None:
        """Recycle a worker that served its job quota (not a crash).

        The worker is asked to exit on its (currently exclusive) pipe and
        reaped; the slot spawns a fresh process lazily on its next job.
        Neither the supervision budget nor ``respawns`` is touched.
        """
        with slot.lock:
            process = slot.process
            if process is None:
                return
            try:
                slot.conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
            process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - exit-resistant child
                process.terminate()
                process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - kill-resistant child
                process.kill()
                process.join(timeout=5.0)
            if slot.conn is not None:
                slot.conn.close()
            slot.process = slot.conn = None
            slot.jobs_done = 0
        with self._lifecycle:
            self._recycled += 1

    def execute(self, slot_index: int, task: Any) -> Any:
        shm_hash = None
        if isinstance(task, PreparedTask):
            payload_bytes = task.encoded()
            shm_hash = task.shm_hash
            message: Any = ("job", payload_bytes, None)
        elif isinstance(task, Mapping):
            message = ("job", json.dumps(dict(task), sort_keys=True).encode("utf-8"), None)
        elif callable(task):
            message = ("call", task)
        else:
            raise TypeError(
                "the process executor runs job payloads or picklable "
                f"callables, got {type(task).__name__}"
            )
        if self.fallback and self.supervisor.degraded():
            return self._execute_inline(task)
        faults = self.faults
        plane = self.plane
        worker_index = self._acquire_worker(slot_index)
        slot = self._slots[worker_index]
        shm_meta = None
        try:
            # Lease the relation's segment per attempt: acquire absorbs its
            # own shm.attach faults (returning None), and the finally below
            # releases even when the worker dies mid-job — that pairing is
            # what keeps refcounts reconciled under kill storms.
            if shm_hash is not None and plane is not None:
                shm_meta = plane.acquire(shm_hash)
                if shm_meta is not None:
                    message = (message[0], message[1], shm_meta)
            with slot.lock:
                slot.busy = True
                try:
                    if slot.process is None or not slot.process.is_alive():
                        self._spawn(slot)
                    try:
                        if faults is not None:
                            # The OOM-kill simulation: SIGKILL the slot's worker
                            # right before the job is handed to it.
                            process = slot.process
                            faults.fire(
                                SITE_PROCESS_KILL,
                                on_kill=process.kill if process is not None else None,
                            )
                            faults.fire(SITE_PROCESS_SEND)
                        slot.conn.send(message)
                        if faults is not None:
                            faults.fire(SITE_PROCESS_RECV)
                        reply = slot.conn.recv()
                        kind, value = reply[0], reply[1]
                        shm_status = reply[2] if len(reply) > 2 else None
                        slot.jobs_done += 1
                    except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
                        pid, exitcode, respawned = self._reap_and_respawn(slot)
                        detail = (
                            "a fresh worker was started"
                            if respawned
                            else "the executor is shutting down"
                        )
                        raise WorkerCrashed(
                            f"worker process (pid {pid}) died while running the job "
                            f"(exit code {exitcode}); {detail}"
                        ) from exc
                finally:
                    slot.busy = False
            if (
                self.max_jobs_per_worker
                and slot.jobs_done >= self.max_jobs_per_worker
                and not self._closed
            ):
                self._retire(slot)
        finally:
            if shm_meta is not None:
                plane.release(shm_hash)
            self._release_worker(slot_index, worker_index)
        if kind == "result":
            with self._lifecycle:
                if shm_status == "shm":
                    self._shm_jobs += 1
                else:
                    self._wire_jobs += 1
            from ..session import RunResult

            return RunResult(json.loads(value))
        if kind == "value":
            return value
        raise RemoteJobError(value)

    def _execute_inline(self, task: Any) -> Any:
        """Run ``task`` in the server process — the degraded-mode fallback.

        Job payloads go through the exact :func:`execute_payload` dispatch
        the worker processes use (against a lazily built local pool with the
        same per-tenant configuration), so fallback artefacts stay
        byte-identical; callables are simply called, like a thread executor.
        """
        with self._fallback_lock:
            self._fallback_jobs += 1
            if self._fallback_pool is None:
                from ..config import EngineConfig
                from .pool import SessionPool

                configs = None
                if self._tenant_configs_payload is not None:
                    configs = {
                        tenant: EngineConfig.from_dict(fields)
                        for tenant, fields in self._tenant_configs_payload.items()
                    }
                self._fallback_pool = SessionPool(configs)
            if self._fallback_registry is None and self.registry_root is not None:
                from ..registry.store import RelationRegistry

                self._fallback_registry = RelationRegistry(self.registry_root)
            pool = self._fallback_pool
            registry = self._fallback_registry
        if isinstance(task, PreparedTask):
            from .protocol import execute_payload

            return execute_payload(pool, task.payload, registry=registry)
        if isinstance(task, Mapping):
            from .protocol import execute_payload

            return execute_payload(pool, task, registry=registry)
        return task()

    def kill_slot(self, slot_index: int) -> bool:
        """SIGKILL the worker running queue slot ``slot_index``'s job.

        The deadline watchdog's lever.  The queue thread's slot is mapped to
        its current worker through the dispatch table (M:N: any worker may
        be serving this thread); the kill itself is lock-free — the worker
        slot's lock is held by the queue thread blocked on the reply, and
        the kill is what unblocks it (its ``recv`` fails, the slot reaps and
        respawns).  The unavoidable race with a concurrent respawn at worst
        kills a fresh worker, which the infra-retry path absorbs.
        """
        with self._dispatch:
            worker_index = self._active.get(slot_index)
        if worker_index is None:
            return False
        process = self._slots[worker_index].process
        if process is None or not process.is_alive():
            return False
        process.kill()
        return True

    # -- shutdown --------------------------------------------------------------
    def close(self, timeout: float | None = 10.0) -> None:
        """Stop every worker process, waiting up to ``timeout`` in total.

        Idle workers exit on request; a worker still busy past the deadline
        is terminated (and, failing that, killed) — unlike threads, worker
        processes *can* be reclaimed, so shutdown never leaks them.
        """
        with self._lifecycle:
            self._closed = True
        with self._dispatch:
            # Wake queue threads parked on the idle list; they observe
            # _closed and fail their job as an infra error.
            self._dispatch.notify_all()
        deadline = None if timeout is None else time.monotonic() + timeout
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            # Only ask an idle worker to exit: a busy slot's pipe belongs to
            # the queue thread mid-execute, so interleaving a message would
            # corrupt the stream — busy workers get joined, then terminated.
            if slot.lock.acquire(timeout=-1 if remaining is None else remaining):
                try:
                    if slot.process is not None and slot.process.is_alive():
                        try:
                            slot.conn.send(("exit",))
                        except (BrokenPipeError, OSError):
                            pass
                finally:
                    slot.lock.release()
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            process.join(remaining)
            if process.is_alive():
                process.terminate()
                process.join(1.0)
            if process.is_alive():  # pragma: no cover - kill-resistant child
                process.kill()
                process.join(1.0)
            # Field cleanup only under the slot lock: a busy queue thread's
            # _reap_and_respawn races us on slot.conn/slot.process (its recv
            # fails once the worker is terminated).  If the thread is still
            # wedged past the bound, it performs the cleanup itself.
            if slot.lock.acquire(timeout=1.0):
                try:
                    if slot.conn is not None:
                        slot.conn.close()
                    slot.process = slot.conn = None
                finally:
                    slot.lock.release()
        # The plane unlinks last: every worker that could attach by name is
        # gone, so nothing keeps segment names alive past close.
        if self.plane is not None:
            self.plane.close()

    # -- diagnostics -----------------------------------------------------------
    def worker_pids(self) -> list[int | None]:
        """Current pid of each slot's worker process (``None`` = not spawned)."""
        # Snapshot each slot.process once: crash recovery and close() null
        # the attribute concurrently with readers.
        processes = [slot.process for slot in self._slots]
        return [process.pid if process is not None else None for process in processes]

    def stats(self) -> dict[str, Any]:
        processes = [slot.process for slot in self._slots]
        slots = [
            {
                "pid": process.pid if process is not None else None,
                "alive": process is not None and process.is_alive(),
            }
            for process in processes
        ]
        alive = sum(1 for entry in slots if entry["alive"])
        with self._lifecycle:
            spawned, respawns = self._spawned, self._respawns
            recycled = self._recycled
            shm_jobs, wire_jobs = self._shm_jobs, self._wire_jobs
        with self._fallback_lock:
            fallback_jobs = self._fallback_jobs
        supervision = self.supervisor.snapshot()
        plane = self.plane
        return {
            "executor": self.name,
            "workers": len(self._slots),
            "queue_threads": self._queue_threads,
            "alive": alive,
            "slots": slots,
            "spawned": spawned,
            "respawns": respawns,
            "recycled": recycled,
            "max_jobs_per_worker": self.max_jobs_per_worker,
            "shm_jobs": shm_jobs,
            "wire_jobs": wire_jobs,
            "start_method": self.start_method,
            "host_cpu_count": os.cpu_count(),
            "fallback": self.fallback,
            "fallback_jobs": fallback_jobs,
            "shm": plane.stats() if plane is not None else {"enabled": False},
            **supervision,
        }


def make_executor(
    kind: str,
    tenant_configs_payload: Mapping[str, Mapping[str, Any]] | None = None,
    start_method: str = "spawn",
    warmup: bool = True,
    restart_budget: int = 5,
    restart_window: float = 30.0,
    fallback: bool = False,
    faults: "FaultPlan | None" = None,
    registry_root: str | None = None,
    processes: int = 0,
    max_jobs_per_worker: int = 0,
    shm_bytes: int = 0,
) -> WorkerExecutor:
    """Build a :class:`WorkerExecutor` from its CLI/config name.

    ``shm_bytes`` > 0 attaches a :class:`~repro.shm.plane.SharedRelationPlane`
    to the process executor when the host supports it (``/dev/shm`` +
    numpy); on other hosts — and always for the thread executor, which
    shares the server's memory anyway — the flag is silently inert and jobs
    use the wire.
    """
    if kind == "thread":
        return ThreadExecutor(faults=faults)
    if kind == "process":
        plane = None
        if shm_bytes > 0:
            from ..shm.plane import SharedRelationPlane, plane_available

            if plane_available():
                plane = SharedRelationPlane(shm_bytes, faults=faults)
        return ProcessExecutor(
            tenant_configs_payload=tenant_configs_payload,
            start_method=start_method,
            warmup=warmup,
            restart_budget=restart_budget,
            restart_window=restart_window,
            fallback=fallback,
            faults=faults,
            registry_root=registry_root,
            processes=processes,
            max_jobs_per_worker=max_jobs_per_worker,
            plane=plane,
        )
    raise ValueError(f"unknown executor kind {kind!r}: expected one of {EXECUTOR_KINDS}")
