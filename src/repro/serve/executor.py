"""Pluggable job execution: the worker side of the serving layer.

:class:`~repro.serve.jobs.JobQueue` owns the *queueing* semantics —
backpressure, per-tenant fairness, cancel/timeout of waiting jobs, drain on
shutdown — but delegates the actual *execution* of a claimed job to a
:class:`WorkerExecutor`.  Two executors ship:

* :class:`ThreadExecutor` (default) — runs the job's callable on the queue's
  worker thread, in-process.  This is the original behaviour: cheap, shares
  the server's :class:`~repro.serve.pool.SessionPool`, but CPU-bound jobs
  serialise on the GIL.
* :class:`ProcessExecutor` — pairs every queue worker thread with a
  dedicated ``multiprocessing`` worker process.  Each worker process owns
  its own lazily built :class:`~repro.serve.pool.SessionPool` (sessions are
  share-nothing by design), receives jobs as the existing
  ``repro/job-request-v1`` JSON payloads and replies with the canonical
  ``repro/run-result-v1`` JSON — the exact bytes a bare session would have
  produced, so served artefacts are byte-identical across executors (pinned
  by tests).  CPU-bound jobs run truly in parallel, one core per worker.

Crash recovery: a worker process that dies mid-job (OOM-kill, segfault,
``SIGKILL``) fails *that job only* — the queue thread observes the broken
pipe, marks the job ``failed`` with a diagnostic naming the dead pid and
exit code, and the executor spawns a fresh worker process for the next job.

The wire across the pipe is deliberately thin: ``("job", payload_dict)`` in,
``("result", json_text)`` out (``("error", message)`` for job-level
failures).  Plain zero-argument picklables are also accepted
(``("call", fn)``), which keeps :class:`ProcessExecutor` drivable by the
queue's generic tests without going through the session machinery.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Any, Mapping

from .faults import (
    SITE_PROCESS_KILL,
    SITE_PROCESS_RECV,
    SITE_PROCESS_SEND,
    SITE_THREAD_RUN,
    FaultPlan,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from multiprocessing.connection import Connection

    from .pool import SessionPool

#: Executor kinds selectable by name (CLI ``--executor``, ``ServeConfig``).
EXECUTOR_KINDS = ("thread", "process")


class WorkerCrashed(RuntimeError):
    """A worker process died while running a job (the job is failed)."""


class RemoteJobError(RuntimeError):
    """A job raised inside a worker process.

    The message is the child-side ``"ExcType: message"`` rendering, so the
    queue records exactly the error string the thread executor would have —
    failure diagnostics are executor-independent.
    """


class RestartSupervisor:
    """Restart-budget accounting over a rolling time window.

    Every worker-process respawn is :meth:`record`\\ ed; the executor is
    **degraded** while more than ``budget`` respawns happened within the
    last ``window`` seconds.  Degradation is therefore self-healing: once
    the crash storm stops and the events age out of the window, the
    executor reports healthy again — no manual reset.
    """

    def __init__(self, budget: int = 5, window: float = 30.0) -> None:
        if budget < 0:
            raise ValueError(f"restart budget must be non-negative, got {budget}")
        if window <= 0:
            raise ValueError(f"restart window must be positive, got {window}")
        self.budget = budget
        self.window = window
        self._lock = threading.Lock()
        self._events: deque[float] = deque()
        self._total = 0

    def _prune_locked(self, now: float) -> None:
        while self._events and self._events[0] <= now - self.window:
            self._events.popleft()

    def record(self) -> None:
        """Count one respawn at the current time."""
        now = time.monotonic()
        with self._lock:
            self._events.append(now)
            self._total += 1
            self._prune_locked(now)

    def respawns_in_window(self) -> int:
        """Respawns still inside the rolling window."""
        with self._lock:
            self._prune_locked(time.monotonic())
            return len(self._events)

    def degraded(self) -> bool:
        """Whether the respawn budget is currently exceeded."""
        return self.respawns_in_window() > self.budget

    def snapshot(self) -> dict[str, Any]:
        """The supervisor's state for health/stats payloads."""
        in_window = self.respawns_in_window()
        with self._lock:
            total = self._total
        return {
            "restart_budget": self.budget,
            "restart_window_s": self.window,
            "respawns_in_window": in_window,
            "respawns_total": total,
            "degraded": in_window > self.budget,
        }


class WorkerExecutor:
    """Interface between the job queue's worker threads and job execution.

    ``execute(slot, task)`` is called by queue worker thread ``slot`` (one
    slot per thread, so per-slot state needs no locking against other
    ``execute`` calls).  ``remote`` tells the :class:`~repro.serve.server.Server`
    what task to enqueue: inline executors receive a prepared zero-argument
    callable closing over the server's session pool; remote executors
    receive the job's ``repro/job-request-v1`` payload instead.
    """

    #: Executor kind name (reported in queue/server stats).
    name = "abstract"

    #: Whether jobs must be handed over as JSON payloads (``True``) or as
    #: in-process callables (``False``).
    remote = False

    #: Optional :class:`~repro.serve.faults.FaultPlan` driving the
    #: executor's injection sites (``None`` = disabled, zero overhead).
    faults: "FaultPlan | None" = None

    def start(self, workers: int) -> None:
        """Allocate ``workers`` execution slots (called once by the queue)."""
        raise NotImplementedError

    def execute(self, slot: int, task: Any) -> Any:
        """Run ``task`` on slot ``slot`` and return its result (may raise)."""
        raise NotImplementedError

    def kill_slot(self, slot: int) -> bool:
        """Forcibly reclaim the worker behind ``slot`` (deadline watchdog).

        Returns ``True`` when a worker was actually killed.  The default is
        a no-op: thread-backed slots cannot be preempted — the queue's
        watchdog then relies on cooperative completion (the overrunning
        job's result is discarded once it returns).
        """
        return False

    def close(self, timeout: float | None = 10.0) -> None:
        """Release execution resources; idempotent."""
        raise NotImplementedError

    def stats(self) -> dict[str, Any]:
        """Executor kind plus whatever bookkeeping the executor keeps."""
        return {"executor": self.name}


class ThreadExecutor(WorkerExecutor):
    """The in-process executor: jobs are callables run on the queue thread.

    This is exactly the pre-executor behaviour of the serving layer — the
    job's closure runs under the GIL against the server's shared
    :class:`~repro.serve.pool.SessionPool`.
    """

    name = "thread"
    remote = False

    def __init__(self, faults: "FaultPlan | None" = None) -> None:
        self.faults = faults

    def start(self, workers: int) -> None:
        self._workers = workers

    def execute(self, slot: int, task: Any) -> Any:
        if not callable(task):
            raise TypeError(f"the thread executor runs callables, got {type(task).__name__}")
        faults = self.faults
        if faults is not None:
            faults.fire(SITE_THREAD_RUN)
        return task()

    def close(self, timeout: float | None = 10.0) -> None:
        pass

    def stats(self) -> dict[str, Any]:
        return {"executor": self.name, "workers": getattr(self, "_workers", 0), "degraded": False}


# ---------------------------------------------------------------------------
# The process executor and its worker-process main loop.
# ---------------------------------------------------------------------------


def _process_worker_main(
    conn: "Connection",
    tenant_configs_payload: dict | None,
    registry_root: str | None = None,
) -> None:
    """Main loop of one worker process.

    Owns a lazily built :class:`SessionPool` configured exactly like the
    parent's (the per-tenant ``EngineConfig`` mapping travels as its JSON
    form), executes ``("job", payload)`` messages through the same
    :func:`~repro.serve.protocol.execute_payload` path a bare session uses,
    and replies with the canonical ``repro/run-result-v1`` JSON text.
    ``registry_root`` (the server's persistent relation registry directory)
    lets workers resolve ``relation_ref`` jobs themselves — each worker's
    registry keeps its own verified-relation cache, so a tenant hammering
    one relation decodes it once per worker, not once per job.
    Job-level exceptions become ``("error", "ExcType: message")`` replies;
    only a dead pipe (parent gone) or ``("exit",)`` ends the loop.
    """
    # Imports happen here (not at module import) so the parent can ship this
    # function to a spawn-context child before the repro package is touched.
    from ..config import EngineConfig
    from ..registry.store import RelationRegistry
    from .pool import SessionPool
    from .protocol import execute_payload

    pool: SessionPool | None = None
    registry: RelationRegistry | None = None
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        op = message[0]
        if op == "exit":
            break
        try:
            if op == "ping":
                conn.send(("value", "pong"))
                continue
            if op == "job":
                if pool is None:
                    configs = None
                    if tenant_configs_payload is not None:
                        configs = {
                            tenant: EngineConfig.from_dict(fields)
                            for tenant, fields in tenant_configs_payload.items()
                        }
                    pool = SessionPool(configs)
                if registry is None and registry_root is not None:
                    registry = RelationRegistry(registry_root)
                result = execute_payload(pool, message[1], registry=registry)
                conn.send(("result", json.dumps(result.payload, sort_keys=True)))
            elif op == "call":
                conn.send(("value", message[1]()))
            else:
                conn.send(("error", f"ProtocolError: unknown worker op {op!r}"))
        except Exception as exc:  # noqa: BLE001 - job errors become replies
            try:
                conn.send(("error", f"{type(exc).__name__}: {exc}"))
            except (OSError, ValueError):  # parent gone / unpicklable detail
                break


class _ProcessSlot:
    """One worker process, its pipe, and the lock serialising access to it.

    Each slot is normally driven by exactly one queue worker thread; the
    lock exists so :meth:`ProcessExecutor.close` can safely interleave with
    a thread that is still mid-``execute`` past the drain deadline.
    """

    __slots__ = ("process", "conn", "lock", "busy")

    def __init__(self) -> None:
        self.process = None
        self.conn = None
        self.lock = threading.Lock()
        self.busy = False


class ProcessExecutor(WorkerExecutor):
    """A ``multiprocessing`` worker pool: one process per queue worker.

    Parameters
    ----------
    tenant_configs_payload:
        Per-tenant engine configuration in its JSON form
        (:meth:`repro.serve.pool.SessionPool.configs_payload`); each worker
        process rebuilds its own :class:`SessionPool` from it.
    start_method:
        ``multiprocessing`` start method (``spawn``/``fork``/``forkserver``).
        ``spawn`` is the safe default — worker processes are started from a
        fresh interpreter, never from a parent mid-flight with running
        threads; ``fork`` starts faster but inherits the parent's threads'
        lock state.
    warmup:
        Start (and ping) every worker process eagerly in :meth:`start`, so
        the interpreter/import cost is paid at server boot instead of on the
        first job of each slot.  ``False`` spawns each worker lazily.
    restart_budget / restart_window:
        Crash-loop supervision: more than ``restart_budget`` respawns within
        the rolling ``restart_window`` seconds marks the executor *degraded*
        (reported by :meth:`stats`; ``/healthz`` maps it to 503).
    fallback:
        Degradation path: while degraded, run jobs **inline** in the server
        process (the same :func:`~repro.serve.protocol.execute_payload`
        dispatch a thread executor uses, so artefacts stay byte-identical)
        instead of feeding a crash-looping worker fleet.
    faults:
        Optional :class:`~repro.serve.faults.FaultPlan` wired to the
        ``process.send``/``process.recv``/``process.kill`` injection sites.
    registry_root:
        Root directory of the server's **persistent** relation registry;
        each worker process opens its own handle on it to resolve
        ``relation_ref`` jobs (``None`` = no registry, by-reference jobs
        are resolved inline by the server before dispatch).
    """

    name = "process"
    remote = True

    def __init__(
        self,
        tenant_configs_payload: Mapping[str, Mapping[str, Any]] | None = None,
        start_method: str = "spawn",
        warmup: bool = True,
        restart_budget: int = 5,
        restart_window: float = 30.0,
        fallback: bool = False,
        faults: "FaultPlan | None" = None,
        registry_root: str | None = None,
    ) -> None:
        self._tenant_configs_payload = (
            None
            if tenant_configs_payload is None
            else {tenant: dict(fields) for tenant, fields in tenant_configs_payload.items()}
        )
        self._ctx = multiprocessing.get_context(start_method)
        self.start_method = start_method
        self.registry_root = registry_root
        self.warmup = warmup
        self.faults = faults
        self.supervisor = RestartSupervisor(budget=restart_budget, window=restart_window)
        self.fallback = fallback
        self._fallback_lock = threading.Lock()
        self._fallback_pool: "SessionPool | None" = None
        self._fallback_registry = None
        self._fallback_jobs = 0
        self._slots: list[_ProcessSlot] = []
        self._lifecycle = threading.Lock()
        self._closed = False
        self._spawned = 0
        self._respawns = 0

    # -- lifecycle -------------------------------------------------------------
    def start(self, workers: int) -> None:
        self._slots = [_ProcessSlot() for _ in range(workers)]
        if self.warmup:
            for slot in self._slots:
                self._spawn(slot)
            for slot in self._slots:
                slot.conn.send(("ping",))
                slot.conn.recv()

    def _spawn(self, slot: _ProcessSlot) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        process = self._ctx.Process(
            target=_process_worker_main,
            args=(child_conn, self._tenant_configs_payload, self.registry_root),
            name="repro-serve-process-worker",
            daemon=True,
        )
        process.start()
        child_conn.close()
        slot.process, slot.conn = process, parent_conn
        with self._lifecycle:
            self._spawned += 1

    def _reap_and_respawn(self, slot: _ProcessSlot) -> tuple[int | None, int | None, bool]:
        """Reap a worker whose pipe failed, record its identity, start a replacement.

        The worker is usually already dead (SIGKILL, OOM, crash) and joins
        immediately.  When the *pipe* failed but the process survived (a
        dropped/truncated message), the stream is unusable either way — the
        worker is terminated so a replacement never coexists with it (no
        worker leak).  No replacement is started once the executor is
        closing (the death was most likely the shutdown ``terminate``
        itself)."""
        process = slot.process
        pid = exitcode = None
        if process is not None:
            process.join(timeout=0.25)
            if process.is_alive():
                process.terminate()
                process.join(timeout=5.0)
            if process.is_alive():  # pragma: no cover - terminate-resistant child
                process.kill()
                process.join(timeout=5.0)
            pid, exitcode = process.pid, process.exitcode
        if slot.conn is not None:
            slot.conn.close()
        slot.process = slot.conn = None
        with self._lifecycle:
            closed = self._closed
            if not closed:
                self._respawns += 1
        if not closed:
            self.supervisor.record()
            self._spawn(slot)
        return pid, exitcode, not closed

    # -- execution -------------------------------------------------------------
    def execute(self, slot_index: int, task: Any) -> Any:
        slot = self._slots[slot_index]
        if isinstance(task, Mapping):
            message = ("job", dict(task))
        elif callable(task):
            message = ("call", task)
        else:
            raise TypeError(
                "the process executor runs job payloads or picklable "
                f"callables, got {type(task).__name__}"
            )
        if self.fallback and self.supervisor.degraded():
            return self._execute_inline(task)
        faults = self.faults
        with slot.lock:
            slot.busy = True
            try:
                if slot.process is None or not slot.process.is_alive():
                    self._spawn(slot)
                try:
                    if faults is not None:
                        # The OOM-kill simulation: SIGKILL the slot's worker
                        # right before the job is handed to it.
                        process = slot.process
                        faults.fire(
                            SITE_PROCESS_KILL,
                            on_kill=process.kill if process is not None else None,
                        )
                        faults.fire(SITE_PROCESS_SEND)
                    slot.conn.send(message)
                    if faults is not None:
                        faults.fire(SITE_PROCESS_RECV)
                    kind, value = slot.conn.recv()
                except (EOFError, BrokenPipeError, ConnectionResetError, OSError) as exc:
                    pid, exitcode, respawned = self._reap_and_respawn(slot)
                    detail = (
                        "a fresh worker was started"
                        if respawned
                        else "the executor is shutting down"
                    )
                    raise WorkerCrashed(
                        f"worker process (pid {pid}) died while running the job "
                        f"(exit code {exitcode}); {detail}"
                    ) from exc
            finally:
                slot.busy = False
        if kind == "result":
            from ..session import RunResult

            return RunResult(json.loads(value))
        if kind == "value":
            return value
        raise RemoteJobError(value)

    def _execute_inline(self, task: Any) -> Any:
        """Run ``task`` in the server process — the degraded-mode fallback.

        Job payloads go through the exact :func:`execute_payload` dispatch
        the worker processes use (against a lazily built local pool with the
        same per-tenant configuration), so fallback artefacts stay
        byte-identical; callables are simply called, like a thread executor.
        """
        with self._fallback_lock:
            self._fallback_jobs += 1
            if self._fallback_pool is None:
                from ..config import EngineConfig
                from .pool import SessionPool

                configs = None
                if self._tenant_configs_payload is not None:
                    configs = {
                        tenant: EngineConfig.from_dict(fields)
                        for tenant, fields in self._tenant_configs_payload.items()
                    }
                self._fallback_pool = SessionPool(configs)
            if self._fallback_registry is None and self.registry_root is not None:
                from ..registry.store import RelationRegistry

                self._fallback_registry = RelationRegistry(self.registry_root)
            pool = self._fallback_pool
            registry = self._fallback_registry
        if isinstance(task, Mapping):
            from .protocol import execute_payload

            return execute_payload(pool, task, registry=registry)
        return task()

    def kill_slot(self, slot_index: int) -> bool:
        """SIGKILL the slot's worker process (the deadline watchdog's lever).

        Deliberately lock-free: the slot's lock is held by the queue thread
        blocked on the worker's reply — the kill is what unblocks it (its
        ``recv`` fails, the slot reaps and respawns).  The unavoidable race
        with a concurrent respawn at worst kills a fresh worker, which the
        infra-retry path absorbs.
        """
        if not 0 <= slot_index < len(self._slots):
            return False
        process = self._slots[slot_index].process
        if process is None or not process.is_alive():
            return False
        process.kill()
        return True

    # -- shutdown --------------------------------------------------------------
    def close(self, timeout: float | None = 10.0) -> None:
        """Stop every worker process, waiting up to ``timeout`` in total.

        Idle workers exit on request; a worker still busy past the deadline
        is terminated (and, failing that, killed) — unlike threads, worker
        processes *can* be reclaimed, so shutdown never leaks them.
        """
        with self._lifecycle:
            self._closed = True
        deadline = None if timeout is None else time.monotonic() + timeout
        for slot in self._slots:
            process = slot.process
            if process is None:
                continue
            remaining = None if deadline is None else max(0.0, deadline - time.monotonic())
            # Only ask an idle worker to exit: a busy slot's pipe belongs to
            # the queue thread mid-execute, so interleaving a message would
            # corrupt the stream — busy workers get joined, then terminated.
            if slot.lock.acquire(timeout=-1 if remaining is None else remaining):
                try:
                    if slot.process is not None and slot.process.is_alive():
                        try:
                            slot.conn.send(("exit",))
                        except (BrokenPipeError, OSError):
                            pass
                finally:
                    slot.lock.release()
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            process.join(remaining)
            if process.is_alive():
                process.terminate()
                process.join(1.0)
            if process.is_alive():  # pragma: no cover - kill-resistant child
                process.kill()
                process.join(1.0)
            # Field cleanup only under the slot lock: a busy queue thread's
            # _reap_and_respawn races us on slot.conn/slot.process (its recv
            # fails once the worker is terminated).  If the thread is still
            # wedged past the bound, it performs the cleanup itself.
            if slot.lock.acquire(timeout=1.0):
                try:
                    if slot.conn is not None:
                        slot.conn.close()
                    slot.process = slot.conn = None
                finally:
                    slot.lock.release()

    # -- diagnostics -----------------------------------------------------------
    def worker_pids(self) -> list[int | None]:
        """Current pid of each slot's worker process (``None`` = not spawned)."""
        # Snapshot each slot.process once: crash recovery and close() null
        # the attribute concurrently with readers.
        processes = [slot.process for slot in self._slots]
        return [process.pid if process is not None else None for process in processes]

    def stats(self) -> dict[str, Any]:
        processes = [slot.process for slot in self._slots]
        slots = [
            {
                "pid": process.pid if process is not None else None,
                "alive": process is not None and process.is_alive(),
            }
            for process in processes
        ]
        alive = sum(1 for entry in slots if entry["alive"])
        with self._lifecycle:
            spawned, respawns = self._spawned, self._respawns
        with self._fallback_lock:
            fallback_jobs = self._fallback_jobs
        supervision = self.supervisor.snapshot()
        return {
            "executor": self.name,
            "workers": len(self._slots),
            "alive": alive,
            "slots": slots,
            "spawned": spawned,
            "respawns": respawns,
            "start_method": self.start_method,
            "host_cpu_count": os.cpu_count(),
            "fallback": self.fallback,
            "fallback_jobs": fallback_jobs,
            **supervision,
        }


def make_executor(
    kind: str,
    tenant_configs_payload: Mapping[str, Mapping[str, Any]] | None = None,
    start_method: str = "spawn",
    warmup: bool = True,
    restart_budget: int = 5,
    restart_window: float = 30.0,
    fallback: bool = False,
    faults: "FaultPlan | None" = None,
    registry_root: str | None = None,
) -> WorkerExecutor:
    """Build a :class:`WorkerExecutor` from its CLI/config name."""
    if kind == "thread":
        return ThreadExecutor(faults=faults)
    if kind == "process":
        return ProcessExecutor(
            tenant_configs_payload=tenant_configs_payload,
            start_method=start_method,
            warmup=warmup,
            restart_budget=restart_budget,
            restart_window=restart_window,
            fallback=fallback,
            faults=faults,
            registry_root=registry_root,
        )
    raise ValueError(f"unknown executor kind {kind!r}: expected one of {EXECUTOR_KINDS}")
