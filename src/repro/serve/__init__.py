"""Multi-tenant serving layer over :class:`repro.Session`.

The sessions of PR 3 are perfect isolation primitives — explicit
configuration, relation-scoped caches, private counters, byte-identical
JSON artefacts — but single-process and synchronous.  This package puts the
engine behind a concurrent front door:

* :class:`~repro.serve.pool.SessionPool` — one lazily created
  :class:`~repro.session.Session` per tenant key (each with its own
  :class:`~repro.config.EngineConfig`, caches and counters), LRU-capped;
  eviction only drops caches, so it is always safe.
* :class:`~repro.serve.jobs.JobQueue` — a bounded thread-pool queue with
  explicit job states (``queued``/``running``/``done``/``failed``/
  ``cancelled``), backpressure (:class:`~repro.serve.jobs.QueueFull` once
  ``max_queue`` jobs wait), per-tenant fairness (a cap on in-flight jobs per
  tenant) and queue-wait timeouts.
* :mod:`~repro.serve.protocol` — the JSON wire format:
  :class:`~repro.serve.protocol.JobRequest` in,
  :class:`~repro.serve.protocol.JobTicket` out, results as the existing
  :class:`~repro.session.RunResult` payloads (already canonical JSON).
* :class:`~repro.serve.server.Server` — the programmatic API tying pool and
  queue together — and :class:`~repro.serve.server.HttpFrontend`, a blocking
  stdlib ``http.server`` endpoint (``POST /jobs``, ``GET /jobs/<id>``,
  ``DELETE /jobs/<id>``, ``GET /healthz``, ``GET /stats``).

``python -m repro serve`` starts the HTTP endpoint from the command line
(see :mod:`repro.serve.cli`).
"""

from .jobs import (
    CANCELLED,
    DONE,
    FAILED,
    JOB_STATES,
    QUEUED,
    RUNNING,
    Job,
    JobQueue,
    QueueClosed,
    QueueFull,
)
from .pool import SessionPool
from .protocol import (
    JOB_REQUEST_SCHEMA,
    JOB_STATUS_SCHEMA,
    JOB_TICKET_SCHEMA,
    REQUEST_KINDS,
    JobRequest,
    JobTicket,
    ProtocolError,
    execute_request,
    relation_from_payload,
    relation_to_payload,
)
from .server import HttpFrontend, Server

__all__ = [
    "CANCELLED",
    "DONE",
    "FAILED",
    "JOB_REQUEST_SCHEMA",
    "JOB_STATES",
    "JOB_STATUS_SCHEMA",
    "JOB_TICKET_SCHEMA",
    "QUEUED",
    "REQUEST_KINDS",
    "RUNNING",
    "HttpFrontend",
    "Job",
    "JobQueue",
    "JobRequest",
    "JobTicket",
    "ProtocolError",
    "QueueClosed",
    "QueueFull",
    "Server",
    "SessionPool",
    "execute_request",
    "relation_from_payload",
    "relation_to_payload",
]
