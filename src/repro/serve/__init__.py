"""Multi-tenant serving layer over :class:`repro.Session`.

The sessions of PR 3 are perfect isolation primitives — explicit
configuration, relation-scoped caches, private counters, byte-identical
JSON artefacts — but single-process and synchronous.  This package puts the
engine behind a concurrent front door:

* :class:`~repro.serve.pool.SessionPool` — one lazily created
  :class:`~repro.session.Session` per tenant key (each with its own
  :class:`~repro.config.EngineConfig`, caches and counters), LRU-capped;
  eviction only drops caches, so it is always safe.
* :class:`~repro.serve.jobs.JobQueue` — a bounded thread-pool queue with
  explicit job states (``queued``/``running``/``done``/``failed``/
  ``cancelled``), backpressure (:class:`~repro.serve.jobs.QueueFull` once
  ``max_queue`` jobs wait), per-tenant fairness (a cap on in-flight jobs per
  tenant) and queue-wait timeouts.
* :mod:`~repro.serve.protocol` — the JSON wire format:
  :class:`~repro.serve.protocol.JobRequest` in,
  :class:`~repro.serve.protocol.JobTicket` out, results as the existing
  :class:`~repro.session.RunResult` payloads (already canonical JSON).
* :mod:`~repro.serve.executor` — pluggable job execution behind the queue:
  :class:`~repro.serve.executor.ThreadExecutor` (in-process, the default)
  and :class:`~repro.serve.executor.ProcessExecutor` (a ``multiprocessing``
  worker pool — one worker process per worker, each with its own lazily
  built :class:`SessionPool`; CPU-bound jobs scale with cores and served
  artefacts stay byte-identical across executors).
* :class:`~repro.serve.server.Server` — the programmatic API tying pool,
  queue, executor and the content-addressed relation registry
  (:class:`~repro.registry.RelationRegistry`) together — and
  :class:`~repro.serve.server.HttpFrontend`, a blocking stdlib
  ``http.server`` endpoint (``POST /jobs``, ``GET /jobs/<id>``,
  ``DELETE /jobs/<id>``, ``PUT /relations``, ``GET /relations/<hash>``,
  ``GET /healthz``, ``GET /stats``).  Jobs may reference a stored relation
  by content hash (``relation_ref``) instead of shipping rows inline —
  byte-identical results, a fraction of the payload.
* :mod:`~repro.serve.faults` — deterministic fault injection
  (:class:`~repro.serve.faults.FaultPlan`): seeded worker kills, delays,
  pipe drops and transient errors at named sites, the substrate of the
  chaos test suite and zero-overhead when disabled.

The stack is fault tolerant: infra failures (killed workers, broken pipes)
retry with capped exponential backoff + deterministic jitter up to
``max_attempts``; an optional per-job ``deadline_ms`` covers queue wait and
execution (overruns become ``deadline_exceeded``); a restart-budget
supervisor marks a crash-looping process executor *degraded* (503 on
``/healthz``, optional inline fallback); ``close()`` drains within a
configurable deadline.

``python -m repro serve`` starts the HTTP endpoint from the command line
(see :mod:`repro.serve.cli`).
"""

from .executor import (
    EXECUTOR_KINDS,
    PreparedTask,
    ProcessExecutor,
    RemoteJobError,
    RestartSupervisor,
    ThreadExecutor,
    WorkerCrashed,
    WorkerExecutor,
    make_executor,
)
from .faults import FaultPlan, FaultRule, FaultSpecError, InjectedFault
from .jobs import (
    CANCELLED,
    DEADLINE_EXCEEDED,
    DONE,
    FAILED,
    FAILURE_APPLICATION,
    FAILURE_INFRA,
    JOB_STATES,
    QUEUED,
    RUNNING,
    Job,
    JobQueue,
    QueueClosed,
    QueueFull,
    classify_failure,
    retry_backoff,
)
from .pool import SessionPool
from .protocol import (
    JOB_REQUEST_SCHEMA,
    JOB_STATUS_SCHEMA,
    JOB_TICKET_SCHEMA,
    RELATION_REF_SCHEMA,
    REQUEST_KINDS,
    JobRequest,
    JobTicket,
    ProtocolError,
    execute_payload,
    execute_request,
    relation_from_payload,
    relation_to_payload,
)
from .server import HttpFrontend, Server

__all__ = [
    "CANCELLED",
    "DEADLINE_EXCEEDED",
    "DONE",
    "EXECUTOR_KINDS",
    "FAILED",
    "FAILURE_APPLICATION",
    "FAILURE_INFRA",
    "JOB_REQUEST_SCHEMA",
    "JOB_STATES",
    "JOB_STATUS_SCHEMA",
    "JOB_TICKET_SCHEMA",
    "QUEUED",
    "RELATION_REF_SCHEMA",
    "REQUEST_KINDS",
    "RUNNING",
    "FaultPlan",
    "FaultRule",
    "FaultSpecError",
    "HttpFrontend",
    "InjectedFault",
    "Job",
    "JobQueue",
    "JobRequest",
    "JobTicket",
    "PreparedTask",
    "ProcessExecutor",
    "ProtocolError",
    "QueueClosed",
    "QueueFull",
    "RemoteJobError",
    "RestartSupervisor",
    "Server",
    "SessionPool",
    "ThreadExecutor",
    "WorkerCrashed",
    "WorkerExecutor",
    "classify_failure",
    "execute_payload",
    "execute_request",
    "make_executor",
    "relation_to_payload",
    "relation_from_payload",
    "retry_backoff",
]
