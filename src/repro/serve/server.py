"""The serving front door: programmatic :class:`Server` + HTTP endpoint.

:class:`Server` ties a :class:`~repro.serve.pool.SessionPool` to a
:class:`~repro.serve.jobs.JobQueue`: submissions are validated eagerly
(malformed payloads never enter the queue), executed on the tenant's pooled
session by a worker thread, and polled as ``repro/job-status-v1`` payloads
whose ``result`` field is the untouched ``repro/run-result-v1`` JSON.

:class:`HttpFrontend` exposes the same four operations over a blocking
stdlib ``http.server`` endpoint (one thread per connection; the real
concurrency bound is the job queue's worker pool):

====== =================== ==========================================
POST   ``/jobs``           submit a job request → 202 ticket, 429 full
                           (with a ``Retry-After`` hint)
GET    ``/jobs/<id>``      poll → 200 status payload, 404 unknown
DELETE ``/jobs/<id>``      cancel a queued job → 200 ``{"cancelled": ...}``
PUT    ``/relations``      store a relation by content → 200 ref payload
GET    ``/relations/<h>``  fetch a stored relation → 200 entry, 404 unknown
GET    ``/healthz``        executor liveness → 200 healthy, 503 degraded
GET    ``/stats``          queue + pool + executor + registry + shm counters
====== =================== ==========================================
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping

from ..config import ConfigError, EngineConfig, ServeConfig
from ..registry.store import RELATION_ENTRY_SCHEMA, IntegrityError, RelationRegistry
from ..relational.relation import Relation
from ..session import RunResult
from .executor import PreparedTask, WorkerExecutor, make_executor
from .faults import FaultPlan
from .jobs import DONE, Job, JobQueue, QueueClosed, QueueFull
from .pool import SessionPool
from .protocol import (
    JOB_STATUS_SCHEMA,
    RELATION_REF_SCHEMA,
    JobRequest,
    JobTicket,
    ProtocolError,
    execute_request,
    relation_from_payload,
    relation_to_payload,
)


class Server:
    """The programmatic multi-tenant serving API.

    Parameters mirror the ``python -m repro serve`` flags: ``workers`` and
    ``max_queue`` size the :class:`JobQueue`, ``tenant_configs`` (the output
    of :func:`repro.config.parse_tenant_configs`) and ``max_sessions`` size
    the :class:`SessionPool`, ``max_inflight_per_tenant`` caps per-tenant
    concurrency and ``default_timeout`` bounds queue waits.

    ``executor`` selects where jobs run: ``"thread"`` (in-process worker
    threads on the shared pool), ``"process"`` (one worker process per
    worker, each with its own pool — CPU-bound jobs scale with cores), a
    ready-made :class:`~repro.serve.executor.WorkerExecutor`, or ``None``
    to resolve the :class:`~repro.config.ServeConfig` environment defaults
    (``REPRO_SERVE_EXECUTOR`` etc.).  Served artefacts are byte-identical
    across executors (pinned by tests).  ``workers``/``warmup``/
    ``start_method`` and the fault-tolerance knobs left as ``None`` resolve
    from the environment likewise.

    Fault tolerance: ``max_attempts`` retries *infra* failures (killed
    workers, broken pipes) with capped exponential backoff — application
    failures never retry; ``restart_budget``/``restart_window`` bound
    process-worker respawns before the executor reports itself degraded
    (``degraded_fallback=True`` then runs jobs inline instead);
    ``drain_deadline`` bounds :meth:`close`; ``faults`` (a spec string or a
    ready :class:`~repro.serve.faults.FaultPlan`) arms deterministic fault
    injection for chaos testing.

    Process-pool shape: ``processes`` sizes the worker-process pool
    independently of the queue's thread count (``0``/``None`` = match it),
    ``max_jobs_per_worker`` recycles each worker process after that many
    jobs, and ``shm_bytes`` budgets the zero-copy shared-memory data plane
    (``0`` disables it; registry-resident relations then travel as per-job
    JSON).  All three resolve from ``REPRO_SERVE_PROCESSES``/
    ``REPRO_SERVE_MAX_JOBS_PER_WORKER``/``REPRO_SHM_BYTES`` when ``None``
    and are inert for thread executors.

    ``registry`` wires the content-addressed relation store behind
    ``PUT /relations`` and ``relation_ref`` jobs: a directory path (or a
    ready :class:`~repro.registry.RelationRegistry`) makes it persistent —
    process workers then resolve refs themselves from disk — while ``None``
    resolves ``REPRO_REGISTRY_DIR`` and falls back to an in-memory store
    (refs still work; the server resolves them inline before dispatching to
    remote executors).

    Usable as a context manager; :meth:`close` cancels queued jobs, waits
    for running ones (terminating process workers that overrun the drain
    deadline) and closes every pooled session.
    """

    def __init__(
        self,
        tenant_configs: Mapping[str, EngineConfig] | None = None,
        workers: int | None = None,
        max_queue: int = 64,
        max_inflight_per_tenant: int = 1,
        default_timeout: float | None = None,
        max_sessions: int = 64,
        executor: "str | WorkerExecutor | None" = None,
        warmup: bool | None = None,
        start_method: str | None = None,
        max_attempts: int | None = None,
        restart_budget: int | None = None,
        restart_window: float | None = None,
        degraded_fallback: bool | None = None,
        drain_deadline: float | None = None,
        faults: "str | FaultPlan | None" = None,
        registry: "str | RelationRegistry | None" = None,
        processes: int | None = None,
        max_jobs_per_worker: int | None = None,
        shm_bytes: int | None = None,
    ) -> None:
        explicit = {
            "workers": workers,
            "executor": executor,
            "warmup": warmup,
            "start_method": start_method,
            "max_attempts": max_attempts,
            "restart_budget": restart_budget,
            "restart_window": restart_window,
            "degraded_fallback": degraded_fallback,
            "drain_deadline": drain_deadline,
            "faults": faults,
            "registry_dir": registry if isinstance(registry, (str, type(None))) else "",
            "processes": processes,
            "max_jobs_per_worker": max_jobs_per_worker,
            "shm_bytes": shm_bytes,
        }
        missing = [name for name, value in explicit.items() if value is None]
        if missing:
            # Only consult the environment for parameters actually left to
            # default: a fully explicit Server must not fail on (or vary
            # with) unrelated REPRO_SERVE_* values.
            resolved = ServeConfig.from_env_fields(missing)
            workers = resolved.get("workers", workers)
            executor = resolved.get("executor", executor)
            warmup = resolved.get("warmup", warmup)
            start_method = resolved.get("start_method", start_method)
            max_attempts = resolved.get("max_attempts", max_attempts)
            restart_budget = resolved.get("restart_budget", restart_budget)
            restart_window = resolved.get("restart_window", restart_window)
            degraded_fallback = resolved.get("degraded_fallback", degraded_fallback)
            drain_deadline = resolved.get("drain_deadline", drain_deadline)
            faults = resolved.get("faults", faults)
            if registry is None:
                registry = resolved.get("registry_dir")
            processes = resolved.get("processes", processes)
            max_jobs_per_worker = resolved.get("max_jobs_per_worker", max_jobs_per_worker)
            shm_bytes = resolved.get("shm_bytes", shm_bytes)
        # One shared plan: executor sites, queue sites and registry sites
        # count arrivals on the same seeded counters, so a storm spec
        # replays identically.
        plan = faults if isinstance(faults, FaultPlan) else FaultPlan.from_spec(faults)
        if not isinstance(registry, RelationRegistry):
            # A path string opens (or creates) the persistent store there;
            # None keeps an in-memory registry so PUT /relations and
            # relation_ref jobs work on any server, just without restart
            # survival or cross-process sharing.
            registry = RelationRegistry(registry or None, faults=plan)
        elif registry.faults is None:
            registry.faults = plan
        self.registry = registry
        self.drain_deadline = drain_deadline
        self.pool = SessionPool(tenant_configs, max_sessions=max_sessions)
        if isinstance(executor, str):
            executor = make_executor(
                executor,
                tenant_configs_payload=self.pool.configs_payload(),
                start_method=start_method,
                warmup=warmup,
                restart_budget=restart_budget,
                restart_window=restart_window,
                fallback=bool(degraded_fallback),
                faults=plan,
                registry_root=str(registry.root) if registry.persistent else None,
                processes=processes or 0,
                max_jobs_per_worker=max_jobs_per_worker or 0,
                shm_bytes=shm_bytes or 0,
            )
        self.executor = executor
        self.queue = JobQueue(
            workers=workers,
            max_queue=max_queue,
            max_inflight_per_tenant=max_inflight_per_tenant,
            default_timeout=default_timeout,
            executor=executor,
            max_attempts=max_attempts,
            faults=plan,
        )

    # -- the four verbs --------------------------------------------------------
    def submit(self, request: "JobRequest | Mapping[str, Any]") -> JobTicket:
        """Validate and enqueue a job; returns its ticket.

        Raises :class:`ProtocolError` on malformed payloads,
        :class:`QueueFull` under backpressure and :class:`QueueClosed`
        after :meth:`close`.  The task handed to the queue depends on the
        executor: remote executors receive the canonical
        ``repro/job-request-v1`` payload (what their worker processes
        parse), inline executors a closure over the shared session pool —
        both end in :func:`execute_request`, so artefacts are identical.
        """
        if not isinstance(request, JobRequest):
            request = JobRequest.from_payload(request)

        if request.relation_ref is not None and request.relation_ref not in self.registry:
            # Submission-time membership gate (HTTP 400): an unknown ref is
            # the client's mistake, not a job worth queueing.  A ref that
            # later turns out corrupt/vanished still fails as *infra*.
            raise ProtocolError(
                f"unknown relation_ref {request.relation_ref!r}: "
                f"PUT the relation to /relations first"
            )

        if self.executor.remote:
            payload: dict[str, Any] = request.to_payload()
            shm_hash = None
            if request.relation_ref is not None:
                relation = self.registry.get(request.relation_ref)
                if not self.registry.persistent:
                    # Worker processes cannot see an in-memory registry; ship
                    # the resolved relation inline instead (refs stay a pure
                    # client-side optimisation either way).
                    payload.pop("relation_ref")
                    payload["relation"] = relation_to_payload(relation)
                plane = getattr(self.executor, "plane", None)
                if plane is not None:
                    # Publish is idempotent by content hash and may decline
                    # (budget, non-scalar values) — then shm_hash stays None
                    # and the job simply travels the wire it carries anyway.
                    shm_hash = plane.publish(relation)
            # Serialised once here; every retry attempt reuses the bytes.
            task: Any = PreparedTask(payload, shm_hash=shm_hash)
        else:

            def run(request: JobRequest = request) -> RunResult:
                session = self.pool.get(request.tenant)
                if request.relation_ref is None:
                    # Keep the historical 2-arg call for inline requests —
                    # it needs no registry and stays patchable in tests.
                    return execute_request(session, request)
                return execute_request(session, request, registry=self.registry)

            task = run

        job = self.queue.submit(
            request.tenant, task, kind=request.kind, deadline_ms=request.deadline_ms
        )
        return JobTicket(job_id=job.job_id, tenant=job.tenant, status=job.status)

    def status(self, job_id: str) -> dict[str, Any]:
        """The ``repro/job-status-v1`` payload of a job (KeyError when unknown)."""
        return _job_payload(self.queue.get(job_id))

    def result(self, job_id: str, timeout: float | None = None) -> RunResult:
        """Block until the job is terminal and return its :class:`RunResult`.

        Raises :class:`TimeoutError` if the wait times out and
        :class:`RuntimeError` for ``failed``/``cancelled`` jobs.
        """
        job = self.queue.get(job_id)
        if not job.wait(timeout):
            raise TimeoutError(f"job {job_id} still {job.status} after {timeout:.3f}s")
        if job.status != DONE:
            raise RuntimeError(f"job {job_id} {job.status}: {job.error}")
        return job.result

    def cancel(self, job_id: str) -> bool:
        """Cancel a queued job; ``False`` when it already started or finished."""
        return self.queue.cancel(job_id)

    # -- the relation registry -------------------------------------------------
    def put_relation(self, relation: "Mapping[str, Any] | Any") -> dict[str, Any]:
        """Store a relation by content; returns the ``repro/relation-ref-v1`` ack.

        Accepts a :class:`~repro.relational.relation.Relation` or its inline
        wire form.  Idempotent: re-PUTting the same content returns the same
        hash with ``"created": false``.
        """
        if not isinstance(relation, Relation):
            relation = relation_from_payload(relation)
        created = relation.content_hash() not in self.registry
        content_hash = self.registry.put(relation)
        return {"schema": RELATION_REF_SCHEMA, "hash": content_hash, "created": created}

    def get_relation(self, content_hash: str) -> dict[str, Any]:
        """The verified ``repro/relation-v1`` entry for ``content_hash``.

        Raises :class:`KeyError` when unknown (HTTP 404) and
        :class:`~repro.registry.IntegrityError` when the stored entry failed
        verification and was quarantined (HTTP 500).
        """
        relation = self.registry.get(content_hash)
        return {
            "schema": RELATION_ENTRY_SCHEMA,
            "hash": content_hash,
            "relation": relation_to_payload(relation),
        }

    # -- bookkeeping -----------------------------------------------------------
    def stats(self) -> dict[str, Any]:
        """Queue, pool and executor counters (what ``GET /stats`` returns)."""
        executor_stats = self.executor.stats()
        return {
            "queue": self.queue.stats(),
            "pool": self.pool.stats(),
            "executor": executor_stats,
            "registry": self.registry.stats(),
            "shm": executor_stats.get("shm", {"enabled": False}),
        }

    def health(self) -> dict[str, Any]:
        """The ``GET /healthz`` payload: real executor liveness.

        ``status`` is ``"ok"`` or ``"degraded"`` (the respawn budget was
        exhausted inside its rolling window — the HTTP surface maps this to
        503); ``executor`` carries the live worker table (pids/alive flags
        for process workers), respawn counts and the supervisor snapshot.
        """
        executor = self.executor.stats()
        degraded = bool(executor.get("degraded", False))
        return {
            "status": "degraded" if degraded else "ok",
            "degraded": degraded,
            "executor": executor,
        }

    def close(self) -> None:
        """Drain the queue (bounded by ``drain_deadline``) and close every
        pooled session."""
        self.queue.close(timeout=self.drain_deadline)
        self.pool.close()

    def __enter__(self) -> "Server":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def _job_payload(job: Job) -> dict[str, Any]:
    """The wire form of one job's current state."""
    payload: dict[str, Any] = {
        "schema": JOB_STATUS_SCHEMA,
        "job_id": job.job_id,
        "tenant": job.tenant,
        "kind": job.kind,
        "status": job.status,
        "submitted_at": job.submitted_at,
        "started_at": job.started_at,
        "finished_at": job.finished_at,
        "error": job.error,
        "attempts": job.attempts,
        "failure_class": job.failure_class,
        "deadline_ms": job.deadline_ms,
        "result": None,
    }
    if job.status == DONE and isinstance(job.result, RunResult):
        payload["result"] = job.result.payload
    return payload


#: Sentinel distinguishing "body already rejected" from a legal JSON ``null``.
_BODY_ERROR = object()


class _ServeHandler(BaseHTTPRequestHandler):
    """Routes the HTTP surface onto the owning :class:`Server`."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    #: Upper bound on accepted request bodies (inline relations are rows of
    #: JSON scalars; 64 MiB is far beyond any benchmark relation).
    max_body_bytes = 64 * 1024 * 1024

    @property
    def app(self) -> Server:
        return self.server.app  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        if getattr(self.server, "verbose", False):  # pragma: no cover - CLI only
            super().log_message(format, *args)

    def _send_json(
        self,
        code: int,
        payload: Mapping[str, Any],
        close: bool = False,
        retry_after: int | None = None,
    ) -> None:
        body = json.dumps(payload, sort_keys=True).encode("utf-8")
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if retry_after is not None:
            self.send_header("Retry-After", str(retry_after))
        if close:
            # Early-exit errors that leave the request body unread must drop
            # the connection: on HTTP/1.1 keep-alive the unread bytes would
            # otherwise be parsed as the next request line.  (The header also
            # flips self.close_connection inside http.server.)
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _error(
        self, code: int, message: str, close: bool = False, retry_after: int | None = None
    ) -> None:
        payload: dict[str, Any] = {"error": message}
        if retry_after is not None:
            payload["retry_after"] = retry_after
        self._send_json(code, payload, close=close, retry_after=retry_after)

    def _job_id(self) -> str | None:
        parts = self.path.rstrip("/").split("/")
        if len(parts) == 3 and parts[0] == "" and parts[1] == "jobs" and parts[2]:
            return parts[2]
        return None

    def _relation_hash(self) -> str | None:
        parts = self.path.rstrip("/").split("/")
        if len(parts) == 3 and parts[0] == "" and parts[1] == "relations" and parts[2]:
            return parts[2]
        return None

    def _read_json_body(self) -> Any:
        """The request's JSON body, or :data:`_BODY_ERROR` after an error response."""
        try:
            length = int(self.headers.get("Content-Length", "0"))
        except ValueError:
            self._error(400, "invalid Content-Length", close=True)
            return _BODY_ERROR
        if length <= 0 or length > self.max_body_bytes:
            self._error(400, f"request body must be 1..{self.max_body_bytes} bytes", close=True)
            return _BODY_ERROR
        try:
            return json.loads(self.rfile.read(length).decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            self._error(400, f"invalid JSON body: {exc}")
            return _BODY_ERROR

    # -- verbs ----------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        if self.path.rstrip("/") != "/jobs":
            self._error(404, f"unknown path {self.path!r}", close=True)
            return
        payload = self._read_json_body()
        if payload is _BODY_ERROR:
            return
        try:
            ticket = self.app.submit(payload)
        except (ProtocolError, ConfigError) as exc:
            self._error(400, str(exc))
        except QueueFull as exc:
            # Retry-After is the queue's own depth-derived hint: how many
            # seconds of backlog each worker would need to clear a slot.
            self._error(429, str(exc), retry_after=exc.retry_after)
        except QueueClosed as exc:
            self._error(503, str(exc))
        else:
            self._send_json(202, ticket.to_payload())

    def do_PUT(self) -> None:  # noqa: N802 - http.server API
        if self.path.rstrip("/") != "/relations":
            self._error(404, f"unknown path {self.path!r}", close=True)
            return
        payload = self._read_json_body()
        if payload is _BODY_ERROR:
            return
        try:
            ack = self.app.put_relation(payload)
        except ProtocolError as exc:
            self._error(400, str(exc))
        except ValueError as exc:
            # Non-JSON-native values cannot be stored by content.
            self._error(400, str(exc))
        else:
            self._send_json(200, ack)

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.rstrip("/") or "/"
        if path == "/healthz":
            payload = self.app.health()
            self._send_json(503 if payload["degraded"] else 200, payload)
            return
        if path == "/stats":
            self._send_json(200, self.app.stats())
            return
        content_hash = self._relation_hash()
        if content_hash is not None:
            try:
                payload = self.app.get_relation(content_hash)
            except KeyError:
                self._error(404, f"unknown relation {content_hash!r}")
            except IntegrityError as exc:
                # The stored entry failed verification: it is quarantined
                # and gone; the client must re-PUT the relation.
                self._error(500, str(exc))
            else:
                self._send_json(200, payload)
            return
        job_id = self._job_id()
        if job_id is None:
            self._error(404, f"unknown path {self.path!r}")
            return
        try:
            payload = self.app.status(job_id)
        except KeyError:
            self._error(404, f"unknown job {job_id!r}")
        else:
            self._send_json(200, payload)

    def do_DELETE(self) -> None:  # noqa: N802 - http.server API
        job_id = self._job_id()
        if job_id is None:
            self._error(404, f"unknown path {self.path!r}")
            return
        try:
            cancelled = self.app.cancel(job_id)
        except KeyError:
            self._error(404, f"unknown job {job_id!r}")
        else:
            self._send_json(200, {"job_id": job_id, "cancelled": cancelled})


class HttpFrontend:
    """A blocking stdlib HTTP endpoint over a :class:`Server`.

    ``port=0`` binds an ephemeral port (see :attr:`address`).  Use
    :meth:`serve_forever` to block (the CLI), or :meth:`start`/:meth:`stop`
    to run on a background thread (tests, embedding).  Stopping the frontend
    does **not** close the underlying :class:`Server`.
    """

    def __init__(
        self,
        app: Server,
        host: str = "127.0.0.1",
        port: int = 8750,
        verbose: bool = False,
    ) -> None:
        self.app = app
        self._httpd = ThreadingHTTPServer((host, port), _ServeHandler)
        self._httpd.app = app  # type: ignore[attr-defined]
        self._httpd.verbose = verbose  # type: ignore[attr-defined]
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` (the resolved port when 0 was requested)."""
        host, port = self._httpd.server_address[:2]
        return str(host), int(port)

    def serve_forever(self) -> None:
        """Serve until :meth:`stop` (or ``shutdown()``) is called — blocking."""
        self._httpd.serve_forever(poll_interval=0.1)

    def start(self) -> "HttpFrontend":
        """Serve on a daemon background thread; returns ``self``."""
        if self._thread is not None:
            raise RuntimeError("frontend already started")
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-serve-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        """Stop serving and release the socket (idempotent).

        ``shutdown()`` blocks until ``serve_forever`` acknowledges, so it is
        only issued when the background thread is live; a frontend whose
        ``serve_forever`` already returned (e.g. the CLI after Ctrl-C) just
        closes the socket.
        """
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(timeout=10.0)
            self._thread = None
        self._httpd.server_close()

    def __enter__(self) -> "HttpFrontend":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
