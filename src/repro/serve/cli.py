"""``python -m repro serve`` — the multi-tenant HTTP serving endpoint.

Examples
--------
Serve on the default port with four workers::

    python -m repro serve

Serve CPU-bound traffic on a process worker pool (one worker process per
worker, scaling with cores; artefacts stay byte-identical)::

    python -m repro serve --executor process --workers 8

Size the worker pool and the backpressure bound, and give tenants their own
engine configurations::

    python -m repro serve --workers 8 --max-queue 256 \\
        --tenant-config tenants.json

where ``tenants.json`` maps tenant names to partial
:class:`~repro.config.EngineConfig` fields (``"*"`` sets the default)::

    {"*": {"backend": "auto"},
     "acme": {"backend": "python", "marks_cache_bytes": 1048576}}

Submit work with ``examples/serve_client.py`` or any HTTP client: ``POST
/jobs`` a ``repro/job-request-v1`` payload, poll ``GET /jobs/<id>``, read
the ``result`` field (a ``repro/run-result-v1`` payload, byte-identical to
a bare session run) once ``status`` is ``done``.
"""

from __future__ import annotations

import argparse
import signal
from typing import Sequence

from ..config import ConfigError, ServeConfig, load_tenant_configs
from .server import HttpFrontend, Server


class _GracefulShutdown(Exception):
    """Raised out of ``serve_forever`` by the SIGTERM handler.

    ``HTTPServer.shutdown()`` deadlocks when called from the thread running
    ``serve_forever`` (it blocks until that loop acknowledges), and signal
    handlers run on the main thread — so the handler raises instead, which
    unwinds ``serve_forever`` exactly like ``KeyboardInterrupt`` does for
    Ctrl-C, and the ``finally`` block performs the bounded drain.
    """


def build_serve_parser() -> argparse.ArgumentParser:
    """The argument parser of the ``serve`` subcommand.

    Executor-related defaults come from :meth:`ServeConfig.from_env`
    (``REPRO_SERVE_EXECUTOR``/``REPRO_SERVE_WORKERS``/``REPRO_SERVE_WARMUP``/
    ``REPRO_SERVE_START_METHOD``); explicit flags always win.
    """
    defaults = ServeConfig.from_env()
    parser = argparse.ArgumentParser(
        prog="repro-infine serve",
        description="Serve FD discovery/validation/profiling jobs over HTTP "
        "with one isolated engine session per tenant.",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port", type=int, default=8750, help="bind port (0 picks an ephemeral port)"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=defaults.workers,
        help=f"job-queue workers (default: {defaults.workers})",
    )
    parser.add_argument(
        "--executor",
        choices=("thread", "process"),
        default=defaults.executor,
        help="where jobs run: 'thread' = in-process worker threads "
        "(GIL-bound), 'process' = one worker process per worker "
        "(CPU-bound jobs scale with cores; artefacts are byte-identical "
        f"either way) (default: {defaults.executor})",
    )
    parser.add_argument(
        "--warmup",
        action=argparse.BooleanOptionalAction,
        default=defaults.warmup,
        help="start and ping every worker process at boot instead of "
        "lazily on first use (process executor only)",
    )
    parser.add_argument(
        "--start-method",
        choices=("spawn", "fork", "forkserver"),
        default=defaults.start_method,
        help="multiprocessing start method of the process executor "
        f"(default: {defaults.start_method})",
    )
    parser.add_argument(
        "--processes",
        type=int,
        default=defaults.processes,
        help="worker-process pool size of the process executor; queue "
        "workers share the pool (M:N, work stealing). 0 = one process "
        f"per worker (default: {defaults.processes})",
    )
    parser.add_argument(
        "--max-jobs-per-worker",
        type=int,
        default=defaults.max_jobs_per_worker,
        help="recycle each worker process after this many jobs "
        "(bounds per-worker memory growth); 0 = never "
        f"(default: {defaults.max_jobs_per_worker})",
    )
    parser.add_argument(
        "--shm-bytes",
        type=int,
        default=defaults.shm_bytes,
        help="byte budget of the zero-copy shared-memory data plane "
        "(process executor; registry-resident relations attach in "
        "workers instead of travelling as per-job JSON); 0 disables "
        f"(default: {defaults.shm_bytes})",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=64,
        help="backpressure bound on waiting jobs; submissions "
        "beyond it receive HTTP 429 (default: 64)",
    )
    parser.add_argument(
        "--max-inflight-per-tenant",
        type=int,
        default=1,
        help="fairness cap on one tenant's concurrently running "
        "jobs (default: 1, which also serialises each tenant's "
        "work on its session)",
    )
    parser.add_argument(
        "--max-sessions",
        type=int,
        default=64,
        help="LRU cap on pooled tenant sessions (default: 64)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="default queue-wait timeout in seconds; jobs still "
        "queued past it are cancelled (default: none)",
    )
    parser.add_argument(
        "--tenant-config",
        default=None,
        metavar="PATH",
        help="JSON file mapping tenant names to partial "
        "EngineConfig fields ('*' sets the default)",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=defaults.max_attempts,
        help="total tries per job for infra failures (killed worker, "
        "broken pipe); application failures never retry "
        f"(default: {defaults.max_attempts})",
    )
    parser.add_argument(
        "--restart-budget",
        type=int,
        default=defaults.restart_budget,
        help="process-worker respawns tolerated per rolling window "
        "before the executor reports degraded and /healthz turns 503 "
        f"(default: {defaults.restart_budget})",
    )
    parser.add_argument(
        "--restart-window",
        type=float,
        default=defaults.restart_window,
        metavar="SECONDS",
        help="length of the rolling respawn-budget window "
        f"(default: {defaults.restart_window:g})",
    )
    parser.add_argument(
        "--degraded-fallback",
        action=argparse.BooleanOptionalAction,
        default=defaults.degraded_fallback,
        help="while degraded, run jobs inline in the server process "
        "instead of on crash-looping workers (artefacts stay "
        "byte-identical)",
    )
    parser.add_argument(
        "--drain-deadline",
        type=float,
        default=defaults.drain_deadline,
        metavar="SECONDS",
        help="on SIGTERM/Ctrl-C, bound on waiting for running jobs; "
        "overrunning process workers are terminated past it "
        f"(default: {defaults.drain_deadline:g})",
    )
    parser.add_argument(
        "--faults",
        default=defaults.faults,
        metavar="SPEC",
        help="arm deterministic fault injection (chaos testing), e.g. "
        "'seed=7;process.kill:kill:p=0.05' — see repro.serve.faults "
        "(default: $REPRO_FAULTS)",
    )
    parser.add_argument(
        "--registry-dir",
        default=defaults.registry_dir,
        metavar="PATH",
        help="directory of the persistent content-addressed relation "
        "registry behind PUT /relations and relation_ref jobs; without "
        "it an in-memory registry is used (no restart survival) "
        "(default: $REPRO_REGISTRY_DIR)",
    )
    parser.add_argument("--verbose", action="store_true", help="log every HTTP request to stderr")
    return parser


def main_serve(argv: Sequence[str] | None = None) -> int:
    """Entry point of ``python -m repro serve`` (blocks until interrupted)."""
    args = build_serve_parser().parse_args(argv)
    try:
        tenant_configs = load_tenant_configs(args.tenant_config) if args.tenant_config else None
    except (OSError, ConfigError) as exc:
        print(f"error: {exc}")
        return 2
    server = Server(
        tenant_configs=tenant_configs,
        workers=args.workers,
        max_queue=args.max_queue,
        max_inflight_per_tenant=args.max_inflight_per_tenant,
        default_timeout=args.timeout,
        max_sessions=args.max_sessions,
        executor=args.executor,
        warmup=args.warmup,
        start_method=args.start_method,
        max_attempts=args.max_attempts,
        restart_budget=args.restart_budget,
        restart_window=args.restart_window,
        degraded_fallback=args.degraded_fallback,
        drain_deadline=args.drain_deadline,
        faults=args.faults,
        registry=args.registry_dir,
        processes=args.processes,
        max_jobs_per_worker=args.max_jobs_per_worker,
        shm_bytes=args.shm_bytes,
    )
    frontend = HttpFrontend(server, host=args.host, port=args.port, verbose=args.verbose)
    host, port = frontend.address
    banner = (
        f"serving on http://{host}:{port} (executor={args.executor}, "
        f"workers={args.workers}, max-queue={args.max_queue})"
    )
    def _on_sigterm(signum, frame):  # pragma: no cover - signal path, tested via subprocess
        raise _GracefulShutdown

    # Installed before the banner prints: the banner is the "ready" signal
    # scripts and tests synchronise on, so SIGTERM must already be graceful
    # by then — and the banner prints inside the try so a signal landing
    # right after it is caught, not raised between statements.
    previous = signal.signal(signal.SIGTERM, _on_sigterm)
    try:
        print(banner, flush=True)
        frontend.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        print("shutting down")
    except _GracefulShutdown:
        # Stop accepting connections first, then drain: running jobs get up
        # to --drain-deadline seconds, queued ones are cancelled.
        print(f"SIGTERM: draining (deadline {args.drain_deadline:g}s)", flush=True)
    finally:
        signal.signal(signal.SIGTERM, previous)
        frontend.stop()
        server.close()
        print("drained", flush=True)
    return 0
