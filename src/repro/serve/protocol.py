"""The JSON wire protocol of the serving layer.

One request format in, one ticket format out, and results ride on the
:class:`~repro.session.RunResult` payload that already round-trips
byte-identically — the serving layer adds no serialisation of its own for
artefacts, so a result fetched over the wire is the exact canonical JSON a
bare session would have saved.

Schemas
-------
``repro/job-request-v1``
    ``{"schema", "tenant", "kind", "relation", "params", "overrides"}`` —
    ``kind`` is one of :data:`REQUEST_KINDS`; ``relation`` is the inline
    relation payload (``{"name", "attributes", "rows"}``); ``params`` are
    the verb's keyword arguments; ``overrides`` are per-call
    :class:`~repro.config.EngineConfig` field overrides layered on top of
    the tenant's configuration.  An optional ``deadline_ms`` (positive
    integer) bounds the job end-to-end — queue wait plus execution — and
    an overrun yields the ``deadline_exceeded`` terminal status.  Instead
    of the inline ``relation``, a request may carry ``relation_ref`` — the
    content hash of a relation previously stored via ``PUT /relations``
    (exactly one of the two; both additive-v1 semantics are normative in
    ``docs/PROTOCOL.md``).
``repro/relation-ref-v1``
    The ``PUT /relations`` acknowledgement: ``{"schema", "hash",
    "created"}``.
``repro/job-ticket-v1``
    The submission acknowledgement: ``{"schema", "job_id", "tenant",
    "status"}``.
``repro/job-status-v1``
    The poll response: ticket fields plus ``kind``, timestamps, ``error``
    (``failed``/``cancelled`` jobs) and ``result`` (the full
    ``repro/run-result-v1`` payload once the job is ``done``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Mapping

from ..config import EngineConfig
from ..registry.hashing import is_relation_hash
from ..registry.store import IntegrityError
from ..relational.relation import Relation, RelationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..registry.store import RelationRegistry
    from ..session import RunResult, Session
    from .pool import SessionPool

#: Schema tag of a job submission.
JOB_REQUEST_SCHEMA = "repro/job-request-v1"

#: Schema tag of a submission acknowledgement.
JOB_TICKET_SCHEMA = "repro/job-ticket-v1"

#: Schema tag of a job poll response.
JOB_STATUS_SCHEMA = "repro/job-status-v1"

#: Schema tag of a ``PUT /relations`` acknowledgement.
RELATION_REF_SCHEMA = "repro/relation-ref-v1"

#: The session verbs exposed over the wire.  (``infine`` needs a catalog and
#: a view specification on the wire and is not served yet.)
REQUEST_KINDS = ("discover", "validate", "profile")

#: Allowed ``params`` keys per request kind (mirroring the session verbs).
_PARAM_KEYS = {
    "discover": frozenset({"algorithm", "attributes", "max_lhs_size"}),
    "validate": frozenset({"fds", "with_errors"}),
    "profile": frozenset({"threshold", "max_lhs", "attributes"}),
}


class ProtocolError(ValueError):
    """Raised for malformed wire payloads (maps to HTTP 400)."""


def relation_to_payload(relation: Relation) -> dict[str, Any]:
    """The inline wire form of ``relation`` (values must be JSON-native)."""
    return {
        "name": relation.name,
        "attributes": list(relation.attribute_names),
        "rows": [list(row) for row in relation.rows],
    }


def relation_from_payload(payload: Mapping[str, Any]) -> Relation:
    """Build a :class:`Relation` from its inline wire form."""
    if not isinstance(payload, Mapping):
        raise ProtocolError(f"relation must be a mapping, got {type(payload).__name__}")
    name = payload.get("name")
    attributes = payload.get("attributes")
    rows = payload.get("rows", [])
    if not isinstance(name, str) or not name:
        raise ProtocolError("relation.name must be a non-empty string")
    if not isinstance(attributes, (list, tuple)):
        raise ProtocolError("relation.attributes must be a list of strings")
    if not all(isinstance(a, str) for a in attributes):
        raise ProtocolError("relation.attributes must be a list of strings")
    if not isinstance(rows, (list, tuple)):
        raise ProtocolError("relation.rows must be a list of rows")
    try:
        return Relation(name, tuple(attributes), rows)
    except (RelationError, TypeError) as exc:
        raise ProtocolError(f"invalid relation payload: {exc}") from exc


def _require_mapping(value: Any, what: str) -> dict[str, Any]:
    if value is None:
        return {}
    if not isinstance(value, Mapping):
        raise ProtocolError(f"{what} must be a mapping, got {type(value).__name__}")
    return dict(value)


def _check_attribute_list(value: Any, what: str) -> None:
    if value is None:
        return
    if not isinstance(value, (list, tuple)):
        raise ProtocolError(f"{what} must be a list of attribute names or null")
    if not all(isinstance(a, str) for a in value):
        raise ProtocolError(f"{what} must contain only strings")


def _check_fd_item(item: Any) -> None:
    if isinstance(item, str):
        return
    if isinstance(item, (list, tuple)) and len(item) == 2:
        lhs, rhs = item
        if isinstance(rhs, str) and isinstance(lhs, (list, tuple, str)):
            return
    raise ProtocolError(
        f'params.fds items must be "a,b -> c" strings or [lhs_list, rhs] pairs, got {item!r}'
    )


def _check_params(kind: str, params: Mapping[str, Any]) -> None:
    """Shape/type validation of ``params`` — the submit-time (HTTP 400) gate.

    Value *types* are checked here so malformed requests never reach a
    worker; *semantic* errors (an unknown algorithm name, attributes missing
    from the relation) still surface as ``failed`` jobs.
    """
    if kind == "validate":
        fds = params.get("fds")
        if not isinstance(fds, (list, tuple)):
            raise ProtocolError("params.fds must be a list of FDs")
        for item in fds:
            _check_fd_item(item)
    if kind in ("discover", "profile"):
        _check_attribute_list(params.get("attributes"), "params.attributes")
    if kind == "discover":
        algorithm = params.get("algorithm", "tane")
        if not isinstance(algorithm, str):
            raise ProtocolError("params.algorithm must be a string")
        max_lhs_size = params.get("max_lhs_size")
        if max_lhs_size is not None and not isinstance(max_lhs_size, int):
            raise ProtocolError("params.max_lhs_size must be an integer or null")
    if kind == "profile":
        threshold = params.get("threshold", 0.05)
        if isinstance(threshold, bool) or not isinstance(threshold, (int, float)):
            raise ProtocolError("params.threshold must be a number")
        max_lhs = params.get("max_lhs", 2)
        if isinstance(max_lhs, bool) or not isinstance(max_lhs, int):
            raise ProtocolError("params.max_lhs must be an integer")


@dataclass(frozen=True)
class JobRequest:
    """One unit of work a tenant submits to the serving layer."""

    tenant: str
    kind: str
    relation: Relation | None = None
    params: dict[str, Any] = field(default_factory=dict)
    overrides: dict[str, Any] = field(default_factory=dict)
    deadline_ms: int | None = None
    relation_ref: str | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.tenant, str) or not self.tenant:
            raise ProtocolError("tenant must be a non-empty string")
        if self.relation is None and self.relation_ref is None:
            raise ProtocolError("job request must carry relation or relation_ref")
        if self.relation is not None and self.relation_ref is not None:
            raise ProtocolError("job request must carry relation or relation_ref, not both")
        if self.relation_ref is not None and not is_relation_hash(self.relation_ref):
            raise ProtocolError(
                f"relation_ref must be a 64-char lowercase hex content hash, "
                f"got {self.relation_ref!r}"
            )
        if self.deadline_ms is not None:
            if isinstance(self.deadline_ms, bool) or not isinstance(self.deadline_ms, int):
                raise ProtocolError("deadline_ms must be a positive integer or null")
            if self.deadline_ms < 1:
                raise ProtocolError(f"deadline_ms must be at least 1, got {self.deadline_ms}")
        if self.kind not in REQUEST_KINDS:
            raise ProtocolError(
                f"unknown request kind {self.kind!r}: expected one of {REQUEST_KINDS}"
            )
        allowed = _PARAM_KEYS[self.kind]
        unknown = set(self.params) - allowed
        if unknown:
            raise ProtocolError(
                f"unknown params for kind {self.kind!r}: {sorted(unknown)} "
                f"(allowed: {sorted(allowed)})"
            )
        if self.kind == "validate" and "fds" not in self.params:
            raise ProtocolError("validate requests must carry params.fds")
        _check_params(self.kind, self.params)
        if self.overrides:
            # Surface bad per-call overrides at submission time (HTTP 400)
            # instead of failing the job later inside a worker.
            try:
                EngineConfig().replace(**self.overrides)
            except ValueError as exc:
                raise ProtocolError(f"invalid engine overrides: {exc}") from exc

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "JobRequest":
        """Parse and validate a ``repro/job-request-v1`` payload."""
        if not isinstance(payload, Mapping):
            raise ProtocolError(f"job request must be a mapping, got {type(payload).__name__}")
        schema = payload.get("schema")
        if schema != JOB_REQUEST_SCHEMA:
            raise ProtocolError(
                f"not a job request payload (schema={schema!r}, expected {JOB_REQUEST_SCHEMA!r})"
            )
        known = {
            "schema",
            "tenant",
            "kind",
            "relation",
            "relation_ref",
            "params",
            "overrides",
            "deadline_ms",
        }
        unknown = set(payload) - known
        if unknown:
            raise ProtocolError(f"unknown job request fields: {sorted(unknown)}")
        relation_payload = payload.get("relation")
        relation_ref = payload.get("relation_ref")
        if relation_payload is not None and relation_ref is not None:
            raise ProtocolError("job request must carry relation or relation_ref, not both")
        if relation_ref is not None and not isinstance(relation_ref, str):
            raise ProtocolError("relation_ref must be a string content hash")
        relation = None if relation_payload is None else relation_from_payload(relation_payload)
        return cls(
            tenant=payload.get("tenant", ""),
            kind=payload.get("kind", ""),
            relation=relation,
            params=_require_mapping(payload.get("params"), "params"),
            overrides=_require_mapping(payload.get("overrides"), "overrides"),
            deadline_ms=payload.get("deadline_ms"),
            relation_ref=relation_ref,
        )

    def to_payload(self) -> dict[str, Any]:
        """The canonical ``repro/job-request-v1`` payload of this request."""
        payload: dict[str, Any] = {
            "schema": JOB_REQUEST_SCHEMA,
            "tenant": self.tenant,
            "kind": self.kind,
        }
        if self.relation is not None:
            payload["relation"] = relation_to_payload(self.relation)
        else:
            # Additive v1 field (see deadline_ms below): a by-reference
            # request ships the 64-char content hash instead of the rows.
            payload["relation_ref"] = self.relation_ref
        payload["params"] = dict(self.params)
        payload["overrides"] = dict(self.overrides)
        if self.deadline_ms is not None:
            # Additive v1 field: omitted when unset so payloads from callers
            # that never set a deadline are byte-identical to pre-deadline ones.
            payload["deadline_ms"] = self.deadline_ms
        return payload


@dataclass(frozen=True)
class JobTicket:
    """The acknowledgement returned by :meth:`repro.serve.Server.submit`."""

    job_id: str
    tenant: str
    status: str

    def to_payload(self) -> dict[str, Any]:
        """The canonical ``repro/job-ticket-v1`` payload of this ticket."""
        return {
            "schema": JOB_TICKET_SCHEMA,
            "job_id": self.job_id,
            "tenant": self.tenant,
            "status": self.status,
        }

    @classmethod
    def from_payload(cls, payload: Mapping[str, Any]) -> "JobTicket":
        """Parse a ``repro/job-ticket-v1`` payload."""
        if not isinstance(payload, Mapping) or payload.get("schema") != JOB_TICKET_SCHEMA:
            raise ProtocolError("not a job ticket payload")
        return cls(
            job_id=payload["job_id"],
            tenant=payload["tenant"],
            status=payload["status"],
        )


def resolve_relation(request: JobRequest, registry: "RelationRegistry | None") -> Relation:
    """The concrete relation of ``request`` — inline, or fetched by hash.

    A ``relation_ref`` with no registry is a deployment/protocol error; a
    ref the registry no longer holds is a store inconsistency (submission
    verified membership), surfaced as :class:`~repro.registry.IntegrityError`
    so the queue classifies it as an *infra* failure and retries.
    """
    if request.relation is not None:
        return request.relation
    ref = request.relation_ref
    assert ref is not None  # enforced by JobRequest.__post_init__
    if registry is None:
        raise ProtocolError("job request carries relation_ref but no relation registry is wired")
    try:
        return registry.get(ref)
    except KeyError as exc:
        raise IntegrityError(
            f"relation {ref} vanished from the registry between submission and execution",
            content_hash=ref,
        ) from exc


def execute_request(
    session: "Session",
    request: JobRequest,
    registry: "RelationRegistry | None" = None,
    relation: Relation | None = None,
) -> "RunResult":
    """Run ``request`` on ``session`` — the worker-side dispatch.

    This is *exactly* what a bare session call would do: the serving layer
    adds queuing and tenancy around it but never touches the artefacts, so
    results are byte-identical to a direct :meth:`Session.discover`/
    :meth:`~repro.session.Session.validate`/
    :meth:`~repro.session.Session.profile` call with the same inputs.
    By-reference requests resolve through ``registry`` first (a cache hit
    returns the *same* :class:`Relation` object, so engine caches keyed on
    relation identity stay warm across jobs).  An explicit ``relation``
    skips resolution entirely — the shared-memory attach path hands in a
    zero-copy instance it has already verified against the request's
    content hash (the caller's responsibility; both encodings are
    bit-identical, so artefacts do not depend on which path ran).
    """
    if relation is None:
        relation = resolve_relation(request, registry)
    params = request.params
    overrides = request.overrides
    if request.kind == "discover":
        return session.discover(
            relation,
            algorithm=params.get("algorithm", "tane"),
            attributes=params.get("attributes"),
            max_lhs_size=params.get("max_lhs_size"),
            **overrides,
        )
    if request.kind == "validate":
        fds = [item if isinstance(item, str) else tuple(item) for item in params["fds"]]
        return session.validate(
            relation,
            fds,
            with_errors=bool(params.get("with_errors", True)),
            **overrides,
        )
    if request.kind == "profile":
        return session.profile(
            relation,
            threshold=params.get("threshold", 0.05),
            max_lhs=params.get("max_lhs", 2),
            attributes=params.get("attributes"),
            **overrides,
        )
    raise ProtocolError(f"unknown request kind {request.kind!r}")  # pragma: no cover


def execute_payload(
    pool: "SessionPool",
    payload: Mapping[str, Any],
    registry: "RelationRegistry | None" = None,
    relation: Relation | None = None,
) -> "RunResult":
    """Parse a ``repro/job-request-v1`` payload and run it on the tenant's session.

    The single worker-side entry point shared by every executor that
    receives jobs in wire form (the process executor's worker processes):
    parse → pooled session → :func:`execute_request`.  Going through the
    identical dispatch as the in-process path is what keeps served
    artefacts byte-identical no matter where the job ran.  ``relation``
    short-circuits resolution with a pre-attached instance (see
    :func:`execute_request`).
    """
    request = JobRequest.from_payload(payload)
    return execute_request(pool.get(request.tenant), request, registry=registry, relation=relation)
