"""Deterministic fault injection for the serving stack.

Production serving treats worker death, slow jobs and flaky transports as
routine inputs, not exceptional ones — but those behaviours are exactly the
ones sleep-based tests cannot pin reliably.  This module provides the
substrate for a *deterministic* chaos suite: a :class:`FaultPlan` is a
seeded list of rules, each binding a named **site** in the serving code to a
fault **kind**, and the decision whether the *n*-th arrival at a site fires
is a pure function of ``(seed, rule, site, n)`` — independent of wall clock
and of which thread got there, so a seeded storm is replayable.

Sites (the hooks live in ``jobs.py``/``executor.py``, and for the registry
sites in ``repro/registry/store.py``):

============================ ==================================================
``queue.execute``            a queue worker is about to run a claimed job
                             (both executors; one hit per retry attempt)
``thread.run``               the thread executor is about to call the task
``process.send``             the process executor is about to send a job down
                             a worker pipe
``process.recv``             the process executor is about to block on the
                             worker's reply
``process.kill``             checked right before ``process.send`` — a ``kill``
                             rule here SIGKILLs the slot's worker process
                             mid-job (the OOM-kill simulation)
``registry.read``            the relation registry is about to read an entry
                             from disk (``error``/``drop`` exercise the
                             infra-retry path of ``relation_ref`` jobs)
``registry.write``           the commit point of an atomic registry write —
                             after the tmp file is durable, before the rename;
                             a ``kill`` rule here SIGKILLs the *current
                             process* (the power-loss-mid-PUT simulation)
``shm.attach``               the shared-memory plane is about to hand a job a
                             segment lease (``error``/``drop`` force the job
                             onto the pickled wire path — the fallback drill)
``shm.evict``                the plane is about to unlink an idle segment to
                             meet the byte budget (``error`` aborts that
                             eviction sweep; the budget is retried later)
============================ ==================================================

Kinds:

=========== ===================================================================
``delay``   sleep ``delay_ms`` milliseconds at the site
``error``   raise :class:`InjectedFault` (classified as an *infra* failure by
            the queue, so it exercises the retry path)
``drop``    raise :class:`ConnectionResetError` — a dropped/truncated pipe
            message; at process sites this triggers worker reap + respawn
``kill``    invoke the site's kill callback (SIGKILL the worker process);
            ignored at sites that offer no callback
=========== ===================================================================

The plan is **zero-overhead when absent**: every hook is written as
``if faults is not None: faults.fire(site)``, so the disabled serving path
pays one attribute test per job, nothing else.  A plan parses from a compact
spec string (env ``REPRO_FAULTS``, ``ServeConfig.faults``, CLI ``--faults``)::

    seed=42;process.kill:kill:p=0.1;queue.execute:delay:ms=20:p=0.3:times=5

i.e. ``;``-separated rules of ``site:kind[:key=value...]`` after an optional
leading ``seed=N``, where ``p`` is the fire probability, ``ms`` the delay,
``times`` caps total fires and ``after`` skips the first N arrivals.  Sites
may be shell-style globs (``process.*``) as long as they match at least one
known site.
"""

from __future__ import annotations

import fnmatch
import hashlib
import os
import threading
import time
from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

#: Environment variable carrying the fault-plan spec (empty/unset = disabled).
ENV_FAULTS = "REPRO_FAULTS"

#: Named injection sites, in the order a job meets them.
SITE_QUEUE_EXECUTE = "queue.execute"
SITE_THREAD_RUN = "thread.run"
SITE_PROCESS_SEND = "process.send"
SITE_PROCESS_RECV = "process.recv"
SITE_PROCESS_KILL = "process.kill"
SITE_REGISTRY_READ = "registry.read"
SITE_REGISTRY_WRITE = "registry.write"
SITE_SHM_ATTACH = "shm.attach"
SITE_SHM_EVICT = "shm.evict"

#: Every site a rule may bind to.  The ``registry.*`` literals are duplicated
#: in :mod:`repro.registry.store` and the ``shm.*`` literals in
#: :mod:`repro.shm.plane` (whose hooks fire them) so neither package ever
#: imports the serving package.
KNOWN_SITES = (
    SITE_QUEUE_EXECUTE,
    SITE_THREAD_RUN,
    SITE_PROCESS_SEND,
    SITE_PROCESS_RECV,
    SITE_PROCESS_KILL,
    SITE_REGISTRY_READ,
    SITE_REGISTRY_WRITE,
    SITE_SHM_ATTACH,
    SITE_SHM_EVICT,
)

#: Every fault kind a rule may inject.
FAULT_KINDS = ("delay", "error", "drop", "kill")


class FaultSpecError(ValueError):
    """Raised for malformed fault-plan specs."""


class InjectedFault(ConnectionError):
    """A transient infrastructure fault injected by a :class:`FaultPlan`.

    Subclasses :class:`ConnectionError` so generic infra-failure
    classification catches it even without importing this module.
    """


@dataclass(frozen=True)
class FaultRule:
    """One ``site:kind`` binding of a fault plan.

    ``probability`` is evaluated deterministically per arrival (see
    :meth:`FaultPlan.fire`); ``times`` caps how often the rule fires in
    total; ``after`` skips the first N arrivals entirely (useful to let a
    system warm up before the storm starts).
    """

    site: str
    kind: str
    probability: float = 1.0
    delay_ms: int = 10
    times: int | None = None
    after: int = 0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise FaultSpecError(f"unknown fault kind {self.kind!r}: expected one of {FAULT_KINDS}")
        if not any(fnmatch.fnmatchcase(site, self.site) for site in KNOWN_SITES):
            raise FaultSpecError(
                f"fault site {self.site!r} matches no known site (known: {KNOWN_SITES})"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise FaultSpecError(f"fault probability must be in [0, 1], got {self.probability}")
        if self.delay_ms < 0:
            raise FaultSpecError(f"delay_ms must be non-negative, got {self.delay_ms}")
        if self.times is not None and self.times < 1:
            raise FaultSpecError(f"times must be at least 1, got {self.times}")
        if self.after < 0:
            raise FaultSpecError(f"after must be non-negative, got {self.after}")

    def matches(self, site: str) -> bool:
        return fnmatch.fnmatchcase(site, self.site)


def _decision(seed: int, rule_index: int, site: str, arrival: int) -> float:
    """A uniform [0, 1) value, pure in its arguments.

    Hash-derived instead of ``random.Random`` streams so the verdict for the
    *n*-th arrival at a site does not depend on how many arrivals other
    threads interleaved before it — the same (seed, site, n) always fires
    the same way, which is what makes seeded chaos storms replayable.
    """
    digest = hashlib.sha256(f"{seed}:{rule_index}:{site}:{arrival}".encode("ascii")).digest()
    return int.from_bytes(digest[:8], "big") / float(1 << 64)


class FaultPlan:
    """A seeded set of :class:`FaultRule`\\ s with per-site arrival counters.

    Thread-safe: the counters are guarded by one lock; the injected effects
    (sleep/raise/kill) happen outside it.
    """

    def __init__(self, rules: Sequence[FaultRule], seed: int = 0) -> None:
        self.rules = tuple(rules)
        self.seed = int(seed)
        self._lock = threading.Lock()
        self._arrivals: dict[str, int] = {}
        self._fired = [0] * len(self.rules)

    # -- construction ----------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: str | None) -> "FaultPlan | None":
        """Parse a compact spec string; ``None``/empty specs mean *no plan*.

        Grammar: ``[seed=N;]site:kind[:key=value...][;...]`` with keys
        ``p`` (probability), ``ms`` (delay), ``times``, ``after``.
        """
        if spec is None or not spec.strip():
            return None
        seed = 0
        rules: list[FaultRule] = []
        for part in spec.split(";"):
            part = part.strip()
            if not part:
                continue
            if part.startswith("seed="):
                try:
                    seed = int(part[len("seed=") :])
                except ValueError as exc:
                    raise FaultSpecError(f"invalid fault seed {part!r}") from exc
                continue
            fields = part.split(":")
            if len(fields) < 2:
                raise FaultSpecError(
                    f"fault rule {part!r} must be 'site:kind[:key=value...]'"
                )
            site, kind = fields[0].strip(), fields[1].strip()
            kwargs: dict[str, object] = {}
            for option in fields[2:]:
                key, sep, value = option.partition("=")
                key = key.strip()
                if not sep:
                    raise FaultSpecError(f"fault rule option {option!r} must be key=value")
                if key not in ("p", "ms", "times", "after"):
                    raise FaultSpecError(
                        f"unknown fault rule option {key!r} (expected p/ms/times/after)"
                    )
                try:
                    if key == "p":
                        kwargs["probability"] = float(value)
                    elif key == "ms":
                        kwargs["delay_ms"] = int(value)
                    elif key == "times":
                        kwargs["times"] = int(value)
                    else:
                        kwargs[key] = int(value)
                except ValueError as exc:
                    raise FaultSpecError(f"invalid fault rule option {option!r}") from exc
            rules.append(FaultRule(site=site, kind=kind, **kwargs))  # type: ignore[arg-type]
        if not rules:
            return None
        return cls(rules, seed=seed)

    @classmethod
    def from_env(cls, env: Mapping[str, str] | None = None) -> "FaultPlan | None":
        """The plan described by ``REPRO_FAULTS`` (``None`` when unset/empty)."""
        if env is None:
            env = os.environ
        return cls.from_spec(env.get(ENV_FAULTS))

    # -- injection ---------------------------------------------------------------
    def fire(self, site: str, on_kill: "Callable[[], None] | None" = None) -> None:
        """Evaluate every rule matching ``site`` for this arrival.

        May sleep (``delay``), raise (``error``/``drop``) or invoke
        ``on_kill`` (``kill``; silently skipped when the site passes no
        callback).  At most one raising fault fires per arrival — the first
        matching rule wins — but a ``delay``/``kill`` ahead of it still
        takes effect.
        """
        with self._lock:
            arrival = self._arrivals.get(site, 0)
            self._arrivals[site] = arrival + 1
            actions: list[tuple[int, FaultRule]] = []
            for index, rule in enumerate(self.rules):
                if not rule.matches(site):
                    continue
                if arrival < rule.after:
                    continue
                if rule.times is not None and self._fired[index] >= rule.times:
                    continue
                if _decision(self.seed, index, site, arrival) >= rule.probability:
                    continue
                self._fired[index] += 1
                actions.append((index, rule))
        raising: FaultRule | None = None
        for _, rule in actions:
            if rule.kind == "delay":
                time.sleep(rule.delay_ms / 1000.0)
            elif rule.kind == "kill":
                if on_kill is not None:
                    on_kill()
            elif raising is None:
                raising = rule
        if raising is not None:
            if raising.kind == "error":
                raise InjectedFault(f"injected transient fault at {site}")
            raise ConnectionResetError(f"injected pipe drop at {site}")

    # -- diagnostics -------------------------------------------------------------
    def stats(self) -> dict[str, object]:
        """Seed, per-site arrival counts and per-rule fire counts."""
        with self._lock:
            return {
                "seed": self.seed,
                "arrivals": dict(self._arrivals),
                "fired": {
                    f"{rule.site}:{rule.kind}": self._fired[index]
                    for index, rule in enumerate(self.rules)
                },
            }

    def __repr__(self) -> str:
        rules = ", ".join(f"{rule.site}:{rule.kind}" for rule in self.rules)
        return f"FaultPlan(seed={self.seed}, rules=[{rules}])"
