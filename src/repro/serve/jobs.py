"""The job queue of the serving layer.

A bounded FIFO with explicit job states, backpressure and per-tenant
fairness:

* **states** — ``queued`` → ``running`` → ``done``/``failed``; a queued job
  can also become ``cancelled`` (explicitly, or by exceeding its queue-wait
  timeout).  Running jobs are never interrupted — Python threads cannot be
  preempted safely — so a cancel/timeout only affects jobs still waiting.
* **backpressure** — at most ``max_queue`` jobs wait; further submissions
  raise :class:`QueueFull` immediately (the HTTP frontend maps this to 429)
  instead of buffering unboundedly.
* **fairness** — at most ``max_inflight_per_tenant`` jobs of one tenant run
  concurrently; workers skip over a flooding tenant's queued jobs to pick
  the first eligible one, so a single tenant can delay but never starve the
  others.  The default of ``1`` also serialises each tenant's work on its
  pooled session, which keeps per-session caches free of data races.

The queue owns scheduling only; *execution* of a claimed job is delegated
to a pluggable :class:`~repro.serve.executor.WorkerExecutor`.  With the
default :class:`~repro.serve.executor.ThreadExecutor` a job's task is a
zero-argument callable run directly on the queue's worker thread (the
original behaviour); with a :class:`~repro.serve.executor.ProcessExecutor`
each worker thread hands its task to a dedicated worker process and blocks
for the reply, so every queue semantic above — backpressure, fairness,
cancel/timeout of waiting jobs, drain on close — applies identically to
both executors.

All state transitions happen under one lock; completion is signalled through
a per-job :class:`threading.Event`, so waiters never poll.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Callable

from .executor import RemoteJobError, ThreadExecutor, WorkerExecutor

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"

#: Every job state, in lifecycle order.
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED)

#: States a job can no longer leave.
_TERMINAL = frozenset({DONE, FAILED, CANCELLED})


class QueueFull(RuntimeError):
    """Raised when a submission exceeds the queue's backpressure bound."""


class QueueClosed(RuntimeError):
    """Raised when submitting to a queue that has been closed."""


class Job:
    """One queued unit of work and its lifecycle record.

    ``task`` is whatever the queue's executor understands: a zero-argument
    callable for the thread executor, a ``repro/job-request-v1`` payload (or
    a picklable callable) for the process executor.  All mutation happens
    inside the owning :class:`JobQueue` (under its lock); user code reads
    the attributes and :meth:`wait`\\ s on completion.
    """

    __slots__ = (
        "job_id",
        "tenant",
        "kind",
        "status",
        "result",
        "error",
        "submitted_at",
        "started_at",
        "finished_at",
        "_task",
        "_deadline",
        "_done_event",
    )

    def __init__(
        self,
        job_id: str,
        tenant: str,
        task: Any,
        kind: str = "",
        timeout: float | None = None,
    ) -> None:
        self.job_id = job_id
        self.tenant = tenant
        self.kind = kind
        self.status = QUEUED
        self.result: Any = None
        self.error: str | None = None
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self._task: Any = task
        self._deadline = None if timeout is None else time.monotonic() + timeout
        self._done_event = threading.Event()

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.status in _TERMINAL

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job is terminal; ``False`` on wait timeout."""
        return self._done_event.wait(timeout)

    def __repr__(self) -> str:
        return f"Job({self.job_id!r}, tenant={self.tenant!r}, status={self.status!r})"


class JobQueue:
    """Bounded, tenant-fair thread-pool queue.

    Parameters
    ----------
    workers:
        Number of worker threads executing jobs.
    max_queue:
        Backpressure bound on *waiting* jobs; beyond it :meth:`submit`
        raises :class:`QueueFull`.
    max_inflight_per_tenant:
        Fairness cap: at most this many jobs of one tenant run concurrently
        (``1`` additionally serialises each tenant's work on its session).
    default_timeout:
        Default queue-wait timeout in seconds applied to submissions that do
        not pass their own; jobs still queued past their deadline are
        cancelled instead of run (``None`` = wait forever).
    max_finished_retained:
        How many terminal jobs stay pollable; older ones are forgotten
        (their :meth:`get` then raises :class:`KeyError`, HTTP 404).
    executor:
        The :class:`~repro.serve.executor.WorkerExecutor` running claimed
        jobs (default: a fresh :class:`ThreadExecutor` — the in-process
        behaviour).  The queue owns its executor's lifecycle: ``start`` is
        called here, ``close`` inside :meth:`close`.
    """

    def __init__(
        self,
        workers: int = 4,
        max_queue: int = 64,
        max_inflight_per_tenant: int = 1,
        default_timeout: float | None = None,
        max_finished_retained: int = 1024,
        executor: WorkerExecutor | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be at least 1, got {max_queue}")
        if max_inflight_per_tenant < 1:
            raise ValueError(
                f"max_inflight_per_tenant must be at least 1, got {max_inflight_per_tenant}"
            )
        self.workers = workers
        self.max_queue = max_queue
        self.max_inflight_per_tenant = max_inflight_per_tenant
        self.default_timeout = default_timeout
        self.max_finished_retained = max_finished_retained
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._pending: list[Job] = []
        self._jobs: dict[str, Job] = {}
        self._finished_order: list[str] = []
        self._inflight: dict[str, int] = {}
        self._ids = itertools.count(1)
        self._closed = False
        self._counters = {
            "submitted": 0,
            "rejected": 0,
            "done": 0,
            "failed": 0,
            "cancelled": 0,
            "expired": 0,
        }
        self.executor = executor if executor is not None else ThreadExecutor()
        # Execution slots are allocated before any worker thread exists, so
        # a process executor never forks/spawns from a mid-flight parent.
        self.executor.start(workers)
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(i,),
                name=f"repro-serve-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()

    # -- submission and lookup -------------------------------------------------
    def submit(
        self,
        tenant: str,
        task: "Callable[[], Any] | Any",
        kind: str = "",
        timeout: float | None = None,
    ) -> Job:
        """Enqueue ``task`` for ``tenant``; raises :class:`QueueFull`/:class:`QueueClosed`.

        What a valid ``task`` is depends on the queue's executor: callables
        for the thread executor, job payloads or picklable callables for the
        process executor.
        """
        if timeout is None:
            timeout = self.default_timeout
        with self._lock:
            if self._closed:
                raise QueueClosed("the job queue has been closed")
            if len(self._pending) >= self.max_queue:
                self._counters["rejected"] += 1
                raise QueueFull(f"job queue is full ({self.max_queue} jobs waiting); retry later")
            job = Job(f"job-{next(self._ids):08d}", tenant, task, kind=kind, timeout=timeout)
            self._jobs[job.job_id] = job
            self._pending.append(job)
            self._counters["submitted"] += 1
            self._work_ready.notify()
            return job

    def get(self, job_id: str) -> Job:
        """The job with ``job_id``; raises :class:`KeyError` when unknown/expired."""
        with self._lock:
            return self._jobs[job_id]

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-queued job; ``False`` if it already started/finished."""
        with self._lock:
            job = self._jobs[job_id]
            if job.status != QUEUED:
                return False
            self._pending.remove(job)
            self._finish_locked(job, CANCELLED, error="cancelled by client")
            self._counters["cancelled"] += 1
            return True

    # -- lifecycle ---------------------------------------------------------------
    def close(self, timeout: float | None = 10.0) -> None:
        """Stop accepting work, cancel queued jobs, wait for running ones.

        Running jobs drain normally within the deadline; queued jobs are
        cancelled.  The executor is closed after the drain — under the
        process executor a job still running past the deadline is forcibly
        reclaimed (its worker process is terminated), which threads cannot
        do.  Idempotent.
        """
        with self._lock:
            already_closed = self._closed
            if not already_closed:
                self._closed = True
                pending, self._pending = self._pending, []
                for job in pending:
                    self._finish_locked(job, CANCELLED, error="queue closed")
                    self._counters["cancelled"] += 1
            self._work_ready.notify_all()
        for thread in self._threads:
            thread.join(timeout)
        if not already_closed:
            self.executor.close(timeout)

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict[str, Any]:
        """Submission/outcome counters plus current queue depth and running count."""
        with self._lock:
            return {
                **self._counters,
                "queued": len(self._pending),
                "running": sum(self._inflight.values()),
                "workers": self.workers,
                "max_queue": self.max_queue,
                "executor": self.executor.name,
            }

    # -- worker internals ----------------------------------------------------
    def _finish_locked(self, job: Job, status: str, error: str | None = None) -> None:
        job.status = status
        job.error = error
        job.finished_at = time.time()
        job._task = None
        self._finished_order.append(job.job_id)
        while len(self._finished_order) > self.max_finished_retained:
            self._jobs.pop(self._finished_order.pop(0), None)
        job._done_event.set()

    def _pop_eligible_locked(self) -> Job | None:
        """Pop the first runnable pending job (FIFO, skipping capped tenants).

        Queued jobs past their deadline are cancelled on the way — expiry
        needs no timer thread because an expired job, by definition, is
        still in the queue when a worker scans it.
        """
        now = time.monotonic()
        kept: list[Job] = []
        chosen: Job | None = None
        for job in self._pending:
            if chosen is not None:
                kept.append(job)
            elif job._deadline is not None and job._deadline < now:
                self._finish_locked(job, CANCELLED, error="timed out waiting in queue")
                self._counters["expired"] += 1
            elif self._inflight.get(job.tenant, 0) >= self.max_inflight_per_tenant:
                kept.append(job)
            else:
                chosen = job
        self._pending = kept
        return chosen

    def _worker_loop(self, slot: int) -> None:
        while True:
            with self._work_ready:
                job = self._pop_eligible_locked()
                while job is None:
                    if self._closed:
                        return
                    self._work_ready.wait()
                    job = self._pop_eligible_locked()
                job.status = RUNNING
                job.started_at = time.time()
                self._inflight[job.tenant] = self._inflight.get(job.tenant, 0) + 1
                task = job._task
            try:
                result = self.executor.execute(slot, task)
            except RemoteJobError as exc:
                # The child already rendered "ExcType: message" — reuse it so
                # failure diagnostics are identical across executors.
                outcome, result, error = FAILED, None, str(exc)
            except Exception as exc:  # noqa: BLE001 - job errors become payloads
                outcome, result, error = FAILED, None, f"{type(exc).__name__}: {exc}"
            else:
                outcome, error = DONE, None
            with self._work_ready:
                job.result = result
                self._finish_locked(job, outcome, error=error)
                self._counters["done" if outcome == DONE else "failed"] += 1
                count = self._inflight.get(job.tenant, 0) - 1
                if count > 0:
                    self._inflight[job.tenant] = count
                else:
                    self._inflight.pop(job.tenant, None)
                # A freed tenant slot (or the finished job itself) may make a
                # previously skipped job eligible: wake every waiting worker.
                self._work_ready.notify_all()
