"""The job queue of the serving layer.

A bounded FIFO with explicit job states, backpressure and per-tenant
fairness:

* **states** — ``queued`` → ``running`` → ``done``/``failed``; a queued job
  can also become ``cancelled`` (explicitly, or by exceeding its queue-wait
  timeout).  Running jobs are never interrupted — Python threads cannot be
  preempted safely — so a cancel/timeout only affects jobs still waiting.
* **backpressure** — at most ``max_queue`` jobs wait; further submissions
  raise :class:`QueueFull` immediately (the HTTP frontend maps this to 429)
  instead of buffering unboundedly.
* **fairness** — at most ``max_inflight_per_tenant`` jobs of one tenant run
  concurrently; workers skip over a flooding tenant's queued jobs to pick
  the first eligible one, so a single tenant can delay but never starve the
  others.  The default of ``1`` also serialises each tenant's work on its
  pooled session, which keeps per-session caches free of data races.

The queue owns scheduling only; *execution* of a claimed job is delegated
to a pluggable :class:`~repro.serve.executor.WorkerExecutor`.  With the
default :class:`~repro.serve.executor.ThreadExecutor` a job's task is a
zero-argument callable run directly on the queue's worker thread (the
original behaviour); with a :class:`~repro.serve.executor.ProcessExecutor`
each worker thread hands its task to a dedicated worker process and blocks
for the reply, so every queue semantic above — backpressure, fairness,
cancel/timeout of waiting jobs, drain on close — applies identically to
both executors.

All state transitions happen under one lock; completion is signalled through
a per-job :class:`threading.Event`, so waiters never poll.
"""

from __future__ import annotations

import hashlib
import itertools
import math
import threading
import time
from typing import Any, Callable

from ..registry.store import IntegrityError
from ..session import RunResult
from .executor import RemoteJobError, ThreadExecutor, WorkerCrashed, WorkerExecutor
from .faults import SITE_QUEUE_EXECUTE, FaultPlan

#: Job lifecycle states.
QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"
DEADLINE_EXCEEDED = "deadline_exceeded"

#: Every job state, in lifecycle order.
JOB_STATES = (QUEUED, RUNNING, DONE, FAILED, CANCELLED, DEADLINE_EXCEEDED)

#: States a job can no longer leave.
_TERMINAL = frozenset({DONE, FAILED, CANCELLED, DEADLINE_EXCEEDED})

#: Failure classes: *infra* failures (worker death, broken pipes, injected
#: transient faults) are the environment's fault and safe to retry — runs
#: are pure, so a retried job's artefacts are byte-identical; *application*
#: failures (bad params, engine errors) are deterministic and never retried.
FAILURE_INFRA = "infra"
FAILURE_APPLICATION = "application"


def classify_failure(exc: BaseException) -> str:
    """``infra`` or ``application`` for an execution failure.

    Infrastructure failures are transport/worker/store-level: a crashed
    worker process, any :class:`ConnectionError` (broken/reset pipes, and
    :class:`~repro.serve.faults.InjectedFault` subclasses it on purpose), a
    truncated stream (:class:`EOFError`) or a corrupt/vanished relation
    registry entry (:class:`~repro.registry.IntegrityError` — the store
    quarantined the entry, so a retried job reads a clean state and fails
    deterministically if the relation is truly gone).  Everything else —
    including :class:`~repro.serve.executor.RemoteJobError`, which carries
    an application error that happened *inside* a healthy worker — is an
    application failure.
    """
    if isinstance(exc, RemoteJobError):
        return FAILURE_APPLICATION
    if isinstance(exc, (WorkerCrashed, ConnectionError, EOFError, IntegrityError)):
        return FAILURE_INFRA
    return FAILURE_APPLICATION


def retry_backoff(job_id: str, attempt: int, base: float, cap: float) -> float:
    """Backoff before retry number ``attempt`` — capped exponential, jittered.

    The jitter is **deterministic** (hash of ``(job_id, attempt)``, mapped
    into ``[0.5, 1.0)`` of the exponential envelope): storms decorrelate
    like with random jitter, but a seeded chaos run replays the exact same
    waits.
    """
    envelope = min(cap, base * (2 ** max(0, attempt - 1)))
    digest = hashlib.sha256(f"{job_id}:{attempt}".encode("ascii")).digest()
    jitter = int.from_bytes(digest[:8], "big") / float(1 << 64)
    return envelope * (0.5 + 0.5 * jitter)


class QueueFull(RuntimeError):
    """Raised when a submission exceeds the queue's backpressure bound.

    ``retry_after`` is the queue's backoff hint in whole seconds (what the
    HTTP frontend sends as ``Retry-After``), derived from the current queue
    depth: roughly how long until a worker has chewed through the backlog.
    """

    def __init__(self, message: str, retry_after: int | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class QueueClosed(RuntimeError):
    """Raised when submitting to a queue that has been closed."""


class Job:
    """One queued unit of work and its lifecycle record.

    ``task`` is whatever the queue's executor understands: a zero-argument
    callable for the thread executor, a ``repro/job-request-v1`` payload (or
    a picklable callable) for the process executor.  All mutation happens
    inside the owning :class:`JobQueue` (under its lock); user code reads
    the attributes and :meth:`wait`\\ s on completion.
    """

    __slots__ = (
        "job_id",
        "tenant",
        "kind",
        "status",
        "result",
        "error",
        "attempts",
        "failure_class",
        "deadline_ms",
        "submitted_at",
        "started_at",
        "finished_at",
        "_task",
        "_deadline",
        "_exec_deadline",
        "_slot",
        "_done_event",
    )

    def __init__(
        self,
        job_id: str,
        tenant: str,
        task: Any,
        kind: str = "",
        timeout: float | None = None,
        deadline_ms: int | None = None,
    ) -> None:
        self.job_id = job_id
        self.tenant = tenant
        self.kind = kind
        self.status = QUEUED
        self.result: Any = None
        self.error: str | None = None
        self.attempts = 0
        self.failure_class: str | None = None
        self.deadline_ms = deadline_ms
        self.submitted_at = time.time()
        self.started_at: float | None = None
        self.finished_at: float | None = None
        self._task: Any = task
        self._deadline = None if timeout is None else time.monotonic() + timeout
        # The end-to-end deadline (queue wait AND execution), enforced by
        # the queue's watchdog; the legacy ``timeout`` above only bounds the
        # queue wait (and cancels, rather than deadline-exceeds, the job).
        self._exec_deadline = (
            None if deadline_ms is None else time.monotonic() + deadline_ms / 1000.0
        )
        self._slot: int | None = None
        self._done_event = threading.Event()

    @property
    def finished(self) -> bool:
        """Whether the job reached a terminal state."""
        return self.status in _TERMINAL

    def wait(self, timeout: float | None = None) -> bool:
        """Block until the job is terminal; ``False`` on wait timeout."""
        return self._done_event.wait(timeout)

    def __repr__(self) -> str:
        return f"Job({self.job_id!r}, tenant={self.tenant!r}, status={self.status!r})"


class JobQueue:
    """Bounded, tenant-fair thread-pool queue.

    Parameters
    ----------
    workers:
        Number of worker threads executing jobs.
    max_queue:
        Backpressure bound on *waiting* jobs; beyond it :meth:`submit`
        raises :class:`QueueFull`.
    max_inflight_per_tenant:
        Fairness cap: at most this many jobs of one tenant run concurrently
        (``1`` additionally serialises each tenant's work on its session).
    default_timeout:
        Default queue-wait timeout in seconds applied to submissions that do
        not pass their own; jobs still queued past their deadline are
        cancelled instead of run (``None`` = wait forever).
    max_finished_retained:
        How many terminal jobs stay pollable; older ones are forgotten
        (their :meth:`get` then raises :class:`KeyError`, HTTP 404).
    executor:
        The :class:`~repro.serve.executor.WorkerExecutor` running claimed
        jobs (default: a fresh :class:`ThreadExecutor` — the in-process
        behaviour).  The queue owns its executor's lifecycle: ``start`` is
        called here, ``close`` inside :meth:`close`.
    max_attempts:
        Execution attempts per job.  *Infra* failures (see
        :func:`classify_failure`) are retried with capped exponential
        backoff and deterministic jitter until this many attempts were made;
        *application* failures fail immediately.  The default of ``1``
        keeps the queue's historical fail-fast behaviour — the serving
        layer turns retries on via :class:`~repro.config.ServeConfig`.
    retry_backoff_base / retry_backoff_cap:
        The backoff envelope in seconds: attempt *n* waits
        ``min(cap, base * 2**(n-1))``, deterministically jittered into the
        upper half of the envelope (see :func:`retry_backoff`).
    faults:
        Optional :class:`~repro.serve.faults.FaultPlan`; when set, every
        execution attempt passes the ``queue.execute`` injection site.
    """

    def __init__(
        self,
        workers: int = 4,
        max_queue: int = 64,
        max_inflight_per_tenant: int = 1,
        default_timeout: float | None = None,
        max_finished_retained: int = 1024,
        executor: WorkerExecutor | None = None,
        max_attempts: int = 1,
        retry_backoff_base: float = 0.05,
        retry_backoff_cap: float = 2.0,
        faults: FaultPlan | None = None,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be at least 1, got {workers}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be at least 1, got {max_queue}")
        if max_inflight_per_tenant < 1:
            raise ValueError(
                f"max_inflight_per_tenant must be at least 1, got {max_inflight_per_tenant}"
            )
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be at least 1, got {max_attempts}")
        if retry_backoff_base < 0 or retry_backoff_cap < 0:
            raise ValueError("retry backoff base/cap must be non-negative")
        self.workers = workers
        self.max_queue = max_queue
        self.max_inflight_per_tenant = max_inflight_per_tenant
        self.default_timeout = default_timeout
        self.max_finished_retained = max_finished_retained
        self.max_attempts = max_attempts
        self.retry_backoff_base = retry_backoff_base
        self.retry_backoff_cap = retry_backoff_cap
        self.faults = faults
        self._lock = threading.Lock()
        self._work_ready = threading.Condition(self._lock)
        self._watch_ready = threading.Condition(self._lock)
        self._pending: list[Job] = []
        self._jobs: dict[str, Job] = {}
        self._finished_order: list[str] = []
        self._inflight: dict[str, int] = {}
        self._watched: list[Job] = []
        self._ids = itertools.count(1)
        self._closed = False
        self._closing = threading.Event()
        self._counters = {
            "submitted": 0,
            "rejected": 0,
            "done": 0,
            "failed": 0,
            "cancelled": 0,
            "expired": 0,
            "retries": 0,
            "deadline_exceeded": 0,
        }
        self.executor = executor if executor is not None else ThreadExecutor()
        # Execution slots are allocated before any worker thread exists, so
        # a process executor never forks/spawns from a mid-flight parent.
        self.executor.start(workers)
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(i,),
                name=f"repro-serve-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]
        for thread in self._threads:
            thread.start()
        # The deadline watchdog sleeps until the earliest registered
        # deadline; it costs nothing while no job carries a deadline.
        self._watchdog = threading.Thread(
            target=self._watchdog_loop, name="repro-serve-watchdog", daemon=True
        )
        self._watchdog.start()

    # -- submission and lookup -------------------------------------------------
    def submit(
        self,
        tenant: str,
        task: "Callable[[], Any] | Any",
        kind: str = "",
        timeout: float | None = None,
        deadline_ms: int | None = None,
    ) -> Job:
        """Enqueue ``task`` for ``tenant``; raises :class:`QueueFull`/:class:`QueueClosed`.

        What a valid ``task`` is depends on the queue's executor: callables
        for the thread executor, job payloads or picklable callables for the
        process executor.  ``deadline_ms`` is an end-to-end deadline
        covering queue wait *and* execution: a job that overruns it becomes
        ``deadline_exceeded`` (the watchdog kills+respawns an overrunning
        process worker; thread-executor jobs finish cooperatively and their
        result is discarded).
        """
        if timeout is None:
            timeout = self.default_timeout
        if deadline_ms is not None and deadline_ms < 1:
            raise ValueError(f"deadline_ms must be a positive integer, got {deadline_ms}")
        with self._lock:
            if self._closed:
                raise QueueClosed("the job queue has been closed")
            depth = len(self._pending)
            if depth >= self.max_queue:
                self._counters["rejected"] += 1
                raise QueueFull(
                    f"job queue is full ({self.max_queue} jobs waiting); retry later",
                    retry_after=self._retry_after_locked(depth),
                )
            job = Job(
                f"job-{next(self._ids):08d}",
                tenant,
                task,
                kind=kind,
                timeout=timeout,
                deadline_ms=deadline_ms,
            )
            self._jobs[job.job_id] = job
            self._pending.append(job)
            self._counters["submitted"] += 1
            self._work_ready.notify()
            if deadline_ms is not None:
                self._watched.append(job)
                self._watch_ready.notify()
            return job

    def _retry_after_locked(self, depth: int) -> int:
        """The backpressure hint in whole seconds, derived from queue depth.

        A full queue of ``depth`` jobs spread over ``workers`` workers needs
        roughly ``depth / workers`` job-durations to drain; with sub-second
        jobs the hint is deliberately pessimistic (clamped to [1, 60]) — a
        client retrying after it will almost always get a slot.
        """
        return max(1, min(60, math.ceil(depth / self.workers)))

    def get(self, job_id: str) -> Job:
        """The job with ``job_id``; raises :class:`KeyError` when unknown/expired."""
        with self._lock:
            return self._jobs[job_id]

    def cancel(self, job_id: str) -> bool:
        """Cancel a still-queued job; ``False`` if it already started/finished."""
        with self._lock:
            job = self._jobs[job_id]
            if job.status != QUEUED:
                return False
            self._pending.remove(job)
            self._finish_locked(job, CANCELLED, error="cancelled by client")
            self._counters["cancelled"] += 1
            return True

    # -- lifecycle ---------------------------------------------------------------
    def close(self, timeout: float | None = 10.0) -> None:
        """Stop accepting work, cancel queued jobs, wait for running ones.

        Running jobs drain normally within the deadline; queued jobs are
        cancelled.  The executor is closed after the drain — under the
        process executor a job still running past the deadline is forcibly
        reclaimed (its worker process is terminated), which threads cannot
        do.  Idempotent.
        """
        with self._lock:
            already_closed = self._closed
            if not already_closed:
                self._closed = True
                pending, self._pending = self._pending, []
                for job in pending:
                    self._finish_locked(job, CANCELLED, error="queue closed")
                    self._counters["cancelled"] += 1
            self._work_ready.notify_all()
            self._watch_ready.notify_all()
        # Workers backing off before a retry abort the wait immediately and
        # fail their job instead of stretching the drain.
        self._closing.set()
        for thread in self._threads:
            thread.join(timeout)
        if not already_closed:
            self.executor.close(timeout)
        # The watchdog (a daemon) exits on its own once every watched job is
        # terminal; it is deliberately not joined — a still-running
        # deadline job must stay enforceable during the drain itself.

    def __enter__(self) -> "JobQueue":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def stats(self) -> dict[str, Any]:
        """Submission/outcome counters plus current queue depth and running count."""
        with self._lock:
            payload = {
                **self._counters,
                "queued": len(self._pending),
                "running": sum(self._inflight.values()),
                "workers": self.workers,
                "max_queue": self.max_queue,
                "max_attempts": self.max_attempts,
                "executor": self.executor.name,
            }
        if self.faults is not None:
            payload["faults"] = self.faults.stats()
        return payload

    # -- worker internals ----------------------------------------------------
    def _finish_locked(self, job: Job, status: str, error: str | None = None) -> None:
        job.status = status
        job.error = error
        job.finished_at = time.time()
        job._task = None
        self._finished_order.append(job.job_id)
        while len(self._finished_order) > self.max_finished_retained:
            self._jobs.pop(self._finished_order.pop(0), None)
        job._done_event.set()

    def _pop_eligible_locked(self) -> Job | None:
        """Pop the first runnable pending job (FIFO, skipping capped tenants).

        Queued jobs past their deadline are cancelled on the way — expiry
        needs no timer thread because an expired job, by definition, is
        still in the queue when a worker scans it.
        """
        now = time.monotonic()
        kept: list[Job] = []
        chosen: Job | None = None
        for job in self._pending:
            if chosen is not None:
                kept.append(job)
            elif job._exec_deadline is not None and job._exec_deadline < now:
                # The watchdog usually beats this check; it exists so a
                # worker scanning first never claims an already-dead job.
                self._finish_locked(
                    job,
                    DEADLINE_EXCEEDED,
                    error=f"deadline of {job.deadline_ms} ms exceeded while queued",
                )
                self._counters["deadline_exceeded"] += 1
            elif job._deadline is not None and job._deadline < now:
                self._finish_locked(job, CANCELLED, error="timed out waiting in queue")
                self._counters["expired"] += 1
            elif self._inflight.get(job.tenant, 0) >= self.max_inflight_per_tenant:
                kept.append(job)
            else:
                chosen = job
        self._pending = kept
        return chosen

    def _retry_allowed_locked(self, job: Job) -> bool:
        """Whether an infra failure of ``job`` may be retried right now."""
        if job.attempts >= self.max_attempts:
            return False
        if job.status in _TERMINAL:
            # The watchdog already deadline-exceeded the job; the failure
            # was most likely our own kill of its overrunning worker.
            return False
        if self._closed:
            # Draining: a retry (plus its backoff) would stretch the drain.
            return False
        if job._exec_deadline is not None and time.monotonic() >= job._exec_deadline:
            return False
        return True

    def _execute_with_retries(self, slot: int, job: Job, task: Any) -> tuple[str, Any, str | None]:
        """Run one claimed job, retrying infra failures; returns (outcome, result, error).

        Every attempt passes the *same* ``task`` object to the executor —
        for a :class:`~repro.serve.executor.PreparedTask` that is the
        serialise-once guarantee: attempt N ships the exact payload bytes
        attempt 1 encoded (pinned by its ``serialisations`` counter).
        """
        faults = self.faults
        while True:
            job.attempts += 1
            try:
                if faults is not None:
                    faults.fire(SITE_QUEUE_EXECUTE)
                result = self.executor.execute(slot, task)
            except RemoteJobError as exc:
                # The child already rendered "ExcType: message" — reuse it so
                # failure diagnostics are identical across executors.
                job.failure_class = FAILURE_APPLICATION
                return FAILED, None, str(exc)
            except Exception as exc:  # noqa: BLE001 - job errors become payloads
                job.failure_class = classify_failure(exc)
                error = f"{type(exc).__name__}: {exc}"
                if job.failure_class != FAILURE_INFRA:
                    return FAILED, None, error
                with self._lock:
                    retry = self._retry_allowed_locked(job)
                    if retry:
                        self._counters["retries"] += 1
                if not retry:
                    return FAILED, None, error
                delay = retry_backoff(
                    job.job_id, job.attempts, self.retry_backoff_base, self.retry_backoff_cap
                )
                if job._exec_deadline is not None:
                    delay = min(delay, max(0.0, job._exec_deadline - time.monotonic()))
                if self._closing.wait(delay):
                    # The queue started draining mid-backoff: give up now
                    # instead of holding the drain hostage to the backoff.
                    return FAILED, None, f"{error} (retry abandoned: queue closing)"
                if job.status in _TERMINAL:
                    # The deadline fired during the backoff; nothing to do.
                    return FAILED, None, error
            else:
                job.failure_class = None
                if isinstance(result, RunResult):
                    # Re-stamp the provenance block with the executor that
                    # actually ran the job ("inline" is the session default).
                    result = result.with_provenance(executor=self.executor.name)
                return DONE, result, None

    def _worker_loop(self, slot: int) -> None:
        while True:
            with self._work_ready:
                job = self._pop_eligible_locked()
                while job is None:
                    if self._closed:
                        return
                    self._work_ready.wait()
                    job = self._pop_eligible_locked()
                job.status = RUNNING
                job.started_at = time.time()
                job._slot = slot
                self._inflight[job.tenant] = self._inflight.get(job.tenant, 0) + 1
                task = job._task
            outcome, result, error = self._execute_with_retries(slot, job, task)
            with self._work_ready:
                if job.status not in _TERMINAL:
                    job.result = result
                    self._finish_locked(job, outcome, error=error)
                    self._counters["done" if outcome == DONE else "failed"] += 1
                # else: the watchdog deadline-exceeded the job while it ran —
                # its (late) result is discarded, only the slot is released.
                count = self._inflight.get(job.tenant, 0) - 1
                if count > 0:
                    self._inflight[job.tenant] = count
                else:
                    self._inflight.pop(job.tenant, None)
                # A freed tenant slot (or the finished job itself) may make a
                # previously skipped job eligible: wake every waiting worker.
                self._work_ready.notify_all()
                if job._exec_deadline is not None:
                    self._watch_ready.notify_all()

    # -- the deadline watchdog ------------------------------------------------
    def _watchdog_loop(self) -> None:
        """Enforce end-to-end deadlines on every job submitted with one.

        Sleeps until the earliest registered deadline, then finishes every
        overdue job as ``deadline_exceeded``: still-queued jobs are pulled
        from the queue, running jobs have their waiters released immediately
        and — under the process executor — their worker SIGKILLed (the slot
        reaps and respawns; the queue thread discards the crash).  Under the
        thread executor the overrunning callable cannot be preempted: it
        completes cooperatively and its result is discarded.
        """
        while True:
            kills: list[int] = []
            with self._watch_ready:
                now = time.monotonic()
                next_deadline: float | None = None
                still_watched: list[Job] = []
                overdue: list[Job] = []
                for job in self._watched:
                    if job.status in _TERMINAL:
                        continue
                    if job._exec_deadline <= now:
                        overdue.append(job)
                    else:
                        still_watched.append(job)
                        if next_deadline is None or job._exec_deadline < next_deadline:
                            next_deadline = job._exec_deadline
                self._watched = still_watched
                for job in overdue:
                    if job.status == QUEUED:
                        if job in self._pending:
                            self._pending.remove(job)
                        phase = "while queued"
                    else:
                        phase = "during execution"
                        if job._slot is not None:
                            kills.append(job._slot)
                    self._finish_locked(
                        job,
                        DEADLINE_EXCEEDED,
                        error=f"deadline of {job.deadline_ms} ms exceeded {phase}",
                    )
                    self._counters["deadline_exceeded"] += 1
                if overdue:
                    self._work_ready.notify_all()
                if not kills:
                    if self._closed and not self._watched:
                        return
                    timeout = None if next_deadline is None else max(0.0, next_deadline - now)
                    self._watch_ready.wait(timeout)
            for slot in kills:
                # Outside the lock: the kill is what unblocks the queue
                # thread currently holding the slot (its recv fails).
                self.executor.kill_slot(slot)
