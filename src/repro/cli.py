"""Command-line interface: regenerate the paper's tables and figures.

Examples
--------
Regenerate Table I (base-table characteristics) at the default scale::

    python -m repro table1

Regenerate the runtime comparison of Fig. 3 for the MIMIC-III views only,
against TANE and HyFD, at a larger scale::

    python -m repro fig3 --databases mimic3 --algorithms tane hyfd --scale medium

Run everything and save the rendered tables under ``results/``::

    python -m repro all --output results/

Start the multi-tenant HTTP serving endpoint (see :mod:`repro.serve.cli`)::

    python -m repro serve --workers 8 --max-queue 256 --tenant-config tenants.json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .datasets.registry import SCALE_PRESETS, load_all
from .datasets.views import DATABASES, paper_views
from .discovery.registry import PAPER_BASELINES, available_algorithms
from .experiments.figures import fig3_rows, fig4_rows, fig5_rows
from .experiments.harness import run_full_evaluation
from .experiments.report import render_csv, render_table
from .experiments.tables import table1_rows, table2_rows, table3_rows
from .session import Session

_COMMANDS = ("table1", "table2", "table3", "fig3", "fig4", "fig5", "views", "all")


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser of the ``repro-infine`` command."""
    parser = argparse.ArgumentParser(
        prog="repro-infine",
        description="Reproduce the tables and figures of the InFine paper (ICDE 2022).",
        epilog="The multi-tenant serving endpoint has its own flag surface: "
        "see `repro-infine serve --help`.",
    )
    parser.add_argument("command", choices=_COMMANDS, help="which artefact to regenerate")
    parser.add_argument(
        "--scale", default="small",
        help=f"dataset scale: a number or one of {sorted(SCALE_PRESETS)} (default: small)",
    )
    parser.add_argument(
        "--databases", nargs="*", choices=DATABASES, default=None,
        help="restrict to these databases",
    )
    parser.add_argument(
        "--views", nargs="*", default=None,
        help="restrict to these view keys (e.g. tpch/q3)",
    )
    parser.add_argument(
        "--algorithms", nargs="*", default=list(PAPER_BASELINES),
        choices=available_algorithms(),
        help="baseline discovery algorithms to compare against",
    )
    parser.add_argument("--seed", type=int, default=7, help="dataset generation seed")
    parser.add_argument(
        "--output", type=Path, default=None,
        help="directory to write CSV results into (tables are always printed)",
    )
    parser.add_argument(
        "--backend", default=None, choices=("auto", "python", "numpy"),
        help="partition backend for this invocation (default: the "
             "REPRO_PARTITION_BACKEND environment variable, else auto); both "
             "backends produce byte-identical artefacts",
    )
    parser.add_argument(
        "--kernel-stats", action="store_true",
        help="print partition-kernel diagnostics after the command: the active "
             "backend and the mark-table / partition / combined-codes cache "
             "hit, miss and eviction counters of this invocation's session "
             "(scoped per invocation, so repeated commands in one process "
             "never double-count; off by default so table output stays "
             "byte-identical across backends)",
    )
    return parser


def _scale(value: str) -> float | str:
    try:
        return float(value)
    except ValueError:
        return value


def _emit(rows: list[dict], title: str, name: str, output: Path | None) -> None:
    print(render_table(rows, title=title))
    print()
    if output is not None:
        output.mkdir(parents=True, exist_ok=True)
        target = output / f"{name}.csv"
        target.write_text(render_csv(rows) + "\n", encoding="utf-8")
        print(f"[saved {target}]")


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point.

    Every invocation runs under its own :class:`~repro.session.Session`
    (environment-variable defaults, ``--backend`` overriding the backend), so
    ``--kernel-stats`` reports exactly this invocation's kernel work.

    ``serve`` is dispatched before the artefact parser: it has its own flag
    surface (workers, queue bounds, tenant configs) and blocks on the HTTP
    endpoint instead of rendering tables.
    """
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "serve":
        from .serve.cli import main_serve

        return main_serve(list(argv[1:]))
    parser = build_parser()
    args = parser.parse_args(argv)
    session = Session(backend=args.backend)
    with session.activate():
        exit_code = _run_command(args)
    if args.kernel_stats:
        print()
        print(session.render_kernel_stats())
    return exit_code


def _run_command(args: argparse.Namespace) -> int:
    """Execute the selected artefact command (tables/figures/views)."""
    scale = _scale(args.scale)

    if args.command == "views":
        rows = [
            {"key": case.key, "database": case.database, "label": case.paper_label,
             "description": case.description}
            for case in paper_views()
            if args.databases is None or case.database in args.databases
        ]
        _emit(rows, "Evaluation workload (Table II views)", "views", args.output)
        return 0

    catalogs = load_all(scale, args.seed)
    if args.databases:
        catalogs = {k: v for k, v in catalogs.items() if k in args.databases}

    if args.command in ("table1", "all"):
        rows = table1_rows(catalogs=catalogs)
        _emit(rows, "Table I — base table characteristics", "table1", args.output)
    if args.command in ("table2", "all"):
        rows = table2_rows(catalogs=catalogs)
        _emit(rows, "Table II — SPJ views of the evaluation", "table2", args.output)

    if args.command in ("table3", "fig3", "fig4", "fig5", "all"):
        # Peak-memory tracing (tracemalloc) distorts wall-clock measurements,
        # so the runtime artefacts (Table III, Fig. 3, Fig. 5) are measured
        # without it and Fig. 4 gets its own memory-traced pass.
        run_kwargs = dict(
            algorithms=args.algorithms,
            databases=args.databases,
            views=args.views,
            seed=args.seed,
            catalogs=catalogs,
        )
        if args.command in ("table3", "fig3", "fig5", "all"):
            experiments = run_full_evaluation(scale, measure_memory=False, **run_kwargs)
            if args.command in ("table3", "all"):
                _emit(table3_rows(experiments),
                      "Table III — InFine accuracy and time breakdowns", "table3", args.output)
            if args.command in ("fig3", "all"):
                _emit(fig3_rows(experiments),
                      "Fig. 3 — runtime: InFine vs. baselines with full SPJ computation",
                      "fig3", args.output)
            if args.command in ("fig5", "all"):
                _emit(fig5_rows(experiments),
                      "Fig. 5 — InFine runtime and FD-fraction breakdown per step",
                      "fig5", args.output)
        if args.command in ("fig4", "all"):
            memory_experiments = run_full_evaluation(scale, measure_memory=True, **run_kwargs)
            _emit(fig4_rows(memory_experiments),
                  "Fig. 4 — peak memory consumption (MB)", "fig4", args.output)
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via python -m repro
    sys.exit(main())
