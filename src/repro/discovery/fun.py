"""FUN: FD discovery driven by free sets and cardinalities.

Port of the algorithm of Novelli and Cicchetti ("FUN: An Efficient Algorithm
for Mining Functional and Embedded Dependencies", ICDT 2001).  FUN explores
the lattice of *free sets* — attribute sets whose cardinality (number of
distinct value combinations) is strictly greater than the cardinality of each
of their proper subsets — and decides FD validity by cardinality equality:

    ``X -> a`` holds  iff  ``|π_X(r)| = |π_{X ∪ {a}}(r)|``.

Only free sets can be minimal left-hand sides, so non-free candidates are
pruned from the level-wise exploration, which is the distinguishing feature
of FUN compared to TANE's C+ machinery.
"""

from __future__ import annotations

from ..fd.fd import FD
from ..relational.partition import PartitionCache, make_partition_cache, validate_level
from ..relational.relation import Relation
from .base import DiscoveryStats, FDDiscoveryAlgorithm

AttributeSet = frozenset[str]


class FUN(FDDiscoveryAlgorithm):
    """Cardinality-based, free-set-driven FD discovery (FUN)."""

    name = "fun"

    def _run(self, relation: Relation, attributes: tuple[str, ...]):
        stats = DiscoveryStats()
        results: list[FD] = []
        if not attributes:
            return results, stats
        if not len(relation):
            # Every FD holds vacuously on an empty instance.
            return [FD((), attribute) for attribute in attributes], stats

        cache = make_partition_cache(relation)
        n_rows = len(relation)
        cardinality: dict[AttributeSet, int] = {frozenset(): 1}
        minimal_lhs: dict[str, list[AttributeSet]] = {a: [] for a in attributes}

        # Level 0: constant attributes.  Cardinalities of single attributes
        # come straight from the relation's cached integer encodings — no
        # partition needs to be materialised for attributes that the free-set
        # walk never revisits.
        for attribute in attributes:
            stats.validations += 1
            card = relation.column_code_count(attribute)
            cardinality[frozenset({attribute})] = card
            if card <= 1:
                results.append(FD((), attribute))
                minimal_lhs[attribute].append(frozenset())

        # Level 1 candidates: singletons are free sets unless constant
        # (a constant attribute has the same cardinality as the empty set).
        level: list[AttributeSet] = [
            frozenset({a}) for a in sorted(attributes) if cardinality[frozenset({a})] > 1
        ]
        max_lhs = self._effective_max_lhs(len(attributes))
        size = 1

        while level and size <= max_lhs:
            stats.levels = size
            free_sets: list[AttributeSet] = []
            # FD tests of one level are mutually independent (two distinct
            # same-size LHSs can never dominate each other), so the whole
            # level is validated as one batch: every surviving RHS candidate
            # of a free set becomes one (LHS partition, RHS) pair and the
            # kernel answers all pairs sharing an LHS in a single pass.
            pending: list[tuple[AttributeSet, str]] = []
            for candidate in level:
                candidate_card = self._cardinality(candidate, cardinality, cache)
                # Free-set test: strictly larger cardinality than all subsets.
                is_free = all(
                    self._cardinality(candidate - {attribute}, cardinality, cache)
                    < candidate_card
                    for attribute in candidate
                )
                if not is_free:
                    continue
                free_sets.append(candidate)
                # FD test against every attribute outside the candidate.
                for rhs in attributes:
                    if rhs in candidate:
                        continue
                    if any(previous <= candidate for previous in minimal_lhs[rhs]):
                        continue
                    stats.candidates_checked += 1
                    stats.validations += 1
                    pending.append((candidate, rhs))
                # Keys need no expansion: any superset FD would be non-minimal.
                if candidate_card == n_rows:
                    free_sets.pop()
            if pending:
                # One backend call grades the entire level: candidates are
                # grouped by LHS partition and, on the numpy backend, stacked
                # across LHS groups so FUN pays per-level (not per-candidate)
                # dispatch overhead.
                batch = [(cache.get(candidate), rhs) for candidate, rhs in pending]
                for (candidate, rhs), valid in zip(
                    pending, validate_level(relation, batch)
                ):
                    if valid:
                        results.append(FD(candidate, rhs))
                        minimal_lhs[rhs].append(candidate)
            level = self._next_level(free_sets)
            size += 1
        stats.extra["partition_cache"] = cache.stats.as_dict()
        return results, stats

    def _cardinality(
        self, attribute_set: AttributeSet, cardinality: dict[AttributeSet, int],
        cache: PartitionCache,
    ) -> int:
        cached = cardinality.get(attribute_set)
        if cached is not None:
            return cached
        value = cache.get(attribute_set).distinct_count
        cardinality[attribute_set] = value
        return value

    @staticmethod
    def _next_level(free_sets: list[AttributeSet]) -> list[AttributeSet]:
        """Prefix-join candidate generation restricted to surviving free sets."""
        next_level: set[AttributeSet] = set()
        current = set(free_sets)
        ordered = sorted(free_sets, key=lambda s: tuple(sorted(s)))
        for i, first in enumerate(ordered):
            first_sorted = tuple(sorted(first))
            for second in ordered[i + 1 :]:
                second_sorted = tuple(sorted(second))
                if first_sorted[:-1] != second_sorted[:-1]:
                    continue
                union = first | second
                if all(union - {attribute} in current for attribute in union):
                    next_level.add(union)
        return sorted(next_level, key=lambda s: tuple(sorted(s)))
