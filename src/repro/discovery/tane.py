"""TANE: level-wise FD discovery with stripped partitions.

Port of the algorithm of Huhtala, Kärkkäinen, Porkka and Toivonen
("TANE: An Efficient Algorithm for Discovering Functional and Approximate
Dependencies", The Computer Journal 42(2), 1999).  The implementation follows
the published pseudo-code: candidate attribute sets are explored level by
level through the containment lattice, right-hand-side candidate sets
``C+(X)`` prune the search, superkeys terminate branches early, and validity
is decided by comparing stripped-partition errors.
"""

from __future__ import annotations

from ..fd.fd import FD
from ..relational.partition import (
    StrippedPartition,
    fd_violation_fraction_from_partition,
    validate_level,
    validate_level_errors,
)
from ..relational.relation import Relation
from .base import DiscoveryStats, FDDiscoveryAlgorithm

AttributeSet = frozenset[str]

#: One candidate dependency of a lattice level: (candidate set, RHS, LHS).
LevelCheck = tuple[AttributeSet, str, AttributeSet]


class TANE(FDDiscoveryAlgorithm):
    """Level-wise FD discovery using partition refinement (TANE)."""

    name = "tane"

    def _run(self, relation: Relation, attributes: tuple[str, ...]):
        stats = DiscoveryStats()
        results: list[FD] = []
        if not attributes:
            return results, stats
        if not len(relation):
            # Every FD holds vacuously on an empty instance; the minimal ones
            # have an empty left-hand side.
            return [FD((), attribute) for attribute in attributes], stats

        universe: AttributeSet = frozenset(attributes)
        n_rows = len(relation)
        # Kept for subclasses whose validity test needs row access
        # (e.g. the g3 measure of ApproximateTANE).
        self._current_relation = relation

        # Partitions per candidate set; level 0 and 1 computed directly.
        partitions: dict[AttributeSet, StrippedPartition] = {
            frozenset(): StrippedPartition([list(range(n_rows))], n_rows)
        }
        for attribute in attributes:
            partitions[frozenset({attribute})] = StrippedPartition.from_column(
                relation, attribute
            )

        # Right-hand-side candidate sets C+.
        cplus: dict[AttributeSet, AttributeSet] = {frozenset(): universe}

        level: list[AttributeSet] = [frozenset({a}) for a in sorted(attributes)]
        max_level = self._effective_max_lhs(len(attributes)) + 1
        current_size = 1

        while level and current_size <= max_level:
            stats.levels = current_size
            self._compute_dependencies(level, cplus, partitions, universe, results, stats)
            level = self._prune(level, cplus, partitions, universe, results, stats)
            if current_size == max_level:
                break
            level = self._generate_next_level(level, partitions, stats)
            current_size += 1

        # The key-pruning rule can emit a dependency whose minimality check
        # referred to a candidate set pruned in an earlier level; a final
        # minimality pass removes any such redundant specialisation.
        minimal: list[FD] = []
        for dependency in results:
            dominated = any(
                other.rhs == dependency.rhs and other.lhs < dependency.lhs
                for other in results
            )
            if not dominated:
                minimal.append(dependency)
        return minimal, stats

    # -- TANE procedures ------------------------------------------------------
    def _compute_dependencies(
        self,
        level: list[AttributeSet],
        cplus: dict[AttributeSet, AttributeSet],
        partitions: dict[AttributeSet, StrippedPartition],
        universe: AttributeSet,
        results: list[FD],
        stats: DiscoveryStats,
    ) -> None:
        # C+(X) = ∩_{A ∈ X} C+(X \ {A})
        for candidate in level:
            rhs_candidates = universe
            for attribute in candidate:
                rhs_candidates = rhs_candidates & cplus.get(candidate - {attribute}, universe)
            cplus[candidate] = rhs_candidates

        # The RHS iteration sets are snapshotted per candidate before any
        # validation, and a validation verdict only ever updates the C+ set
        # of its *own* candidate — so the whole level can be validated as one
        # batch (a single backend call per level; the numpy backend stacks
        # candidates across LHS partitions when the level is dispatch-bound)
        # and the verdicts applied afterwards in the original order.
        checks: list[LevelCheck] = []
        for candidate in level:
            for attribute in sorted(candidate & cplus[candidate]):
                checks.append((candidate, attribute, candidate - {attribute}))
        verdicts = self._validate_level(checks, partitions)
        for (candidate, attribute, lhs), valid in zip(checks, verdicts):
            stats.candidates_checked += 1
            stats.validations += 1
            if valid:
                results.append(FD(lhs, attribute))
                new_rhs = set(cplus[candidate])
                new_rhs.discard(attribute)
                new_rhs -= universe - candidate
                cplus[candidate] = frozenset(new_rhs)

    def _validate_level(
        self,
        checks: list[LevelCheck],
        partitions: dict[AttributeSet, StrippedPartition],
    ) -> list[bool]:
        """Validity verdicts for one lattice level's candidates (input order).

        TANE's own walk materialises ``π(candidate)`` for every level member
        (they seed the next level's products), so exact validity is the O(1)
        partition-error equality; only checks whose candidate partition is
        absent (external callers driving the hook directly) fall through to
        the kernel's batched :func:`validate_level`.  Subclasses customising
        the scalar :meth:`_dependency_is_valid` hook (without overriding this
        method) are honoured by per-candidate calls.
        """
        if type(self)._dependency_is_valid is not TANE._dependency_is_valid:
            return [
                self._dependency_is_valid(lhs, candidate, attribute, partitions)
                for candidate, attribute, lhs in checks
            ]
        verdicts: list[bool] = [False] * len(checks)
        deferred: list[int] = []
        for index, (candidate, attribute, lhs) in enumerate(checks):
            candidate_partition = partitions.get(candidate)
            if candidate_partition is not None:
                verdicts[index] = partitions[lhs].error == candidate_partition.error
            else:
                deferred.append(index)
        if deferred:
            batch = [
                (partitions[checks[index][2]], checks[index][1]) for index in deferred
            ]
            for index, verdict in zip(
                deferred, validate_level(self._current_relation, batch)
            ):
                verdicts[index] = verdict
        return verdicts

    def _dependency_is_valid(
        self,
        lhs: AttributeSet,
        candidate: AttributeSet,
        attribute: str,
        partitions: dict[AttributeSet, StrippedPartition],
    ) -> bool:
        """Exact validity test: the LHS partition does not refine further with the RHS."""
        return partitions[lhs].error == partitions[candidate].error

    def _prune(
        self,
        level: list[AttributeSet],
        cplus: dict[AttributeSet, AttributeSet],
        partitions: dict[AttributeSet, StrippedPartition],
        universe: AttributeSet,
        results: list[FD],
        stats: DiscoveryStats,
    ) -> list[AttributeSet]:
        kept: list[AttributeSet] = []
        for candidate in level:
            if not cplus[candidate]:
                continue
            if partitions[candidate].is_key():
                for attribute in sorted(cplus[candidate] - candidate):
                    # The key-pruning rule: X -> A is output only if A remains
                    # a RHS candidate of every X ∪ {A} \ {B}.
                    in_all = True
                    for other in candidate:
                        superset = (candidate | {attribute}) - {other}
                        if attribute not in cplus.get(superset, universe):
                            in_all = False
                            break
                    if in_all:
                        stats.candidates_checked += 1
                        results.append(FD(candidate, attribute))
                continue  # superkeys are not expanded further
            kept.append(candidate)
        return kept

    def _generate_next_level(
        self,
        level: list[AttributeSet],
        partitions: dict[AttributeSet, StrippedPartition],
        stats: DiscoveryStats,
    ) -> list[AttributeSet]:
        next_level: list[AttributeSet] = []
        current = set(level)
        ordered = sorted(level, key=lambda s: tuple(sorted(s)))
        for i, first in enumerate(ordered):
            first_sorted = tuple(sorted(first))
            for second in ordered[i + 1 :]:
                second_sorted = tuple(sorted(second))
                # Prefix join: the two sets must share all but their last attribute.
                if first_sorted[:-1] != second_sorted[:-1]:
                    continue
                union = first | second
                # Keep the candidate only if every |union|-1 subset survived pruning.
                if all(
                    union - {attribute} in current for attribute in union
                ):
                    partitions[union] = partitions[first].intersect(
                        partitions[frozenset({second_sorted[-1]})]
                    )
                    next_level.append(union)
        return next_level


class ApproximateTANE(TANE):
    """TANE variant that accepts FDs with g3 error at most ``threshold``.

    Used to mirror the paper's mention of approximate FDs on the base tables
    (e.g. ``expire_flag ⇁ dod`` in PATIENT) when profiling candidate
    upstaged dependencies.
    """

    name = "tane-approximate"

    def __init__(self, threshold: float = 0.01, max_lhs_size: int | None = None) -> None:
        super().__init__(max_lhs_size=max_lhs_size)
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold

    def _validate_level(self, checks, partitions):
        """Batched g3 validation: exact pass first, then grade the failures.

        The whole level's exact checks run as one batched pass; only the
        failing candidates pay the (heavier) batched g3 counting, mirroring
        the scalar fast path of :meth:`_dependency_is_valid`.  A subclass
        customising the scalar hook keeps driving the validation through it.
        """
        if type(self)._dependency_is_valid is not ApproximateTANE._dependency_is_valid:
            return [
                self._dependency_is_valid(lhs, candidate, attribute, partitions)
                for candidate, attribute, lhs in checks
            ]
        batch = [(partitions[lhs], attribute) for _, attribute, lhs in checks]
        verdicts = validate_level(self._current_relation, batch)
        failing = [index for index, exact in enumerate(verdicts) if not exact]
        errors = validate_level_errors(
            self._current_relation, [batch[index] for index in failing]
        )
        for index, error in zip(failing, errors):
            verdicts[index] = error <= self.threshold
        return verdicts

    def _dependency_is_valid(self, lhs, candidate, attribute, partitions):
        """Accept the dependency when its exact g3 error is within the threshold.

        Reuses the LHS partition already held by the lattice walk and the
        relation's cached column codes instead of rebuilding a partition
        cache per check.  (Scalar twin of the batched :meth:`_validate_level`.)
        """
        if partitions[lhs].error == partitions[candidate].error:
            return True
        return (
            fd_violation_fraction_from_partition(
                self._current_relation, partitions[lhs], attribute
            )
            <= self.threshold
        )
