"""Naive (brute-force) FD discovery.

Enumerates the candidate lattice breadth-first and validates every candidate
against the data with stripped partitions.  It is exponential and makes no
attempt at cleverness beyond minimality pruning; its role in this repository
is to act as the *test oracle* against which TANE, FUN, FastFDs, HyFD and
InFine are verified on small instances.
"""

from __future__ import annotations

from itertools import combinations

from ..fd.fd import FD
from ..relational.partition import make_partition_cache
from ..relational.relation import Relation
from .base import DiscoveryStats, FDDiscoveryAlgorithm


class NaiveFDDiscovery(FDDiscoveryAlgorithm):
    """Breadth-first brute-force discovery of all minimal canonical FDs."""

    name = "naive"

    def _run(self, relation: Relation, attributes: tuple[str, ...]):
        stats = DiscoveryStats()
        cache = make_partition_cache(relation)
        results: list[FD] = []
        # minimal LHSs discovered so far, per RHS attribute.
        minimal_lhs: dict[str, list[frozenset[str]]] = {a: [] for a in attributes}

        if not len(relation):
            # Every FD holds vacuously on an empty instance.
            return [FD((), attribute) for attribute in attributes], stats

        # Level 0: constant attributes yield empty-LHS FDs.
        for attribute in attributes:
            stats.candidates_checked += 1
            stats.validations += 1
            if cache.get([attribute]).distinct_count <= 1:
                results.append(FD((), attribute))
                minimal_lhs[attribute].append(frozenset())

        max_lhs = self._effective_max_lhs(len(attributes))
        for size in range(1, max_lhs + 1):
            stats.levels = size
            for lhs in combinations(sorted(attributes), size):
                lhs_set = frozenset(lhs)
                lhs_partition = cache.get(lhs_set)
                for rhs in attributes:
                    if rhs in lhs_set:
                        continue
                    if any(previous <= lhs_set for previous in minimal_lhs[rhs]):
                        continue  # a smaller LHS already determines rhs
                    stats.candidates_checked += 1
                    stats.validations += 1
                    if lhs_partition.error == cache.get(lhs_set | {rhs}).error:
                        results.append(FD(lhs_set, rhs))
                        minimal_lhs[rhs].append(lhs_set)
        return results, stats
