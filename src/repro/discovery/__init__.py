"""Single-table FD discovery algorithms (the paper's baselines plus a naive oracle)."""

from .base import DiscoveryResult, DiscoveryStats, FDDiscoveryAlgorithm
from .fastfds import FastFDs
from .fun import FUN
from .hyfd import HyFD
from .naive import NaiveFDDiscovery
from .registry import (
    PAPER_BASELINES,
    available_algorithms,
    make_algorithm,
    make_algorithms,
    register_algorithm,
)
from .tane import TANE, ApproximateTANE

__all__ = [
    "FDDiscoveryAlgorithm",
    "DiscoveryResult",
    "DiscoveryStats",
    "TANE",
    "ApproximateTANE",
    "FUN",
    "FastFDs",
    "HyFD",
    "NaiveFDDiscovery",
    "PAPER_BASELINES",
    "available_algorithms",
    "make_algorithm",
    "make_algorithms",
    "register_algorithm",
]
