"""HyFD: hybrid FD discovery (sampling + induction + partition validation).

Port (in spirit) of the algorithm of Papenbrock and Naumann ("A Hybrid
Approach to Functional Dependency Discovery", SIGMOD 2016).  HyFD alternates
between two phases:

1. **Sampling / induction** — tuple pairs are sampled in a *focused* way
   (neighbouring rows inside the equivalence classes of each attribute), the
   agree sets of the sampled pairs form a negative cover, and the candidate
   FD set (positive cover) is specialised so that no candidate is violated by
   a sampled pair.
2. **Validation** — the remaining candidates are checked against the data
   with stripped partitions, level by level; violated candidates are
   specialised and, when too many violations are observed, the algorithm
   switches back to sampling using the violating pairs as new evidence.

The implementation keeps the data structures simple (per-RHS sets of
candidate LHS bitmask-free frozensets) but preserves the phase interplay that
gives HyFD its performance profile relative to purely lattice- or purely
tuple-oriented algorithms.
"""

from __future__ import annotations

from ..fd.fd import FD
from ..relational.partition import PartitionCache, make_partition_cache
from ..relational.relation import Relation
from .base import DiscoveryStats, FDDiscoveryAlgorithm

AttributeSet = frozenset[str]


class HyFD(FDDiscoveryAlgorithm):
    """Hybrid sampling/validation FD discovery (HyFD)."""

    name = "hyfd"

    def __init__(self, max_lhs_size: int | None = None, window: int = 3) -> None:
        super().__init__(max_lhs_size=max_lhs_size)
        #: Size of the neighbourhood window used by focused sampling.
        self.window = window

    def _run(self, relation: Relation, attributes: tuple[str, ...]):
        stats = DiscoveryStats()
        if not attributes:
            return [], stats
        if not len(relation):
            # Every FD holds vacuously on an empty instance.
            return [FD((), attribute) for attribute in attributes], stats

        names = tuple(sorted(attributes))
        universe = frozenset(names)
        cache = make_partition_cache(relation)

        # Phase 1: focused sampling builds the negative cover.
        agree_sets = self._sample_agree_sets(relation, names, stats, cache)
        candidates = self._induce_candidates(names, universe, agree_sets)

        # Phase 2: validation, with specialisation of violated candidates.
        max_lhs = self._effective_max_lhs(len(names))
        results: list[FD] = []
        validated: dict[str, list[AttributeSet]] = {name: [] for name in names}

        for rhs in names:
            pending = sorted(candidates[rhs], key=lambda s: (len(s), tuple(sorted(s))))
            seen: set[AttributeSet] = set(pending)
            while pending:
                lhs = pending.pop(0)
                if len(lhs) > max_lhs:
                    continue
                if any(previous <= lhs for previous in validated[rhs]):
                    continue
                stats.candidates_checked += 1
                stats.validations += 1
                if self._holds(cache, lhs, rhs):
                    validated[rhs].append(lhs)
                    results.append(FD(lhs, rhs))
                    continue
                # Violated: specialise by one attribute and re-queue, exactly
                # like HyFD's lattice traversal after a failed validation.
                for attribute in names:
                    if attribute == rhs or attribute in lhs:
                        continue
                    extended = lhs | {attribute}
                    if len(extended) > max_lhs or extended in seen:
                        continue
                    seen.add(extended)
                    pending.append(extended)
                pending.sort(key=lambda s: (len(s), tuple(sorted(s))))
        stats.extra["partition_cache"] = cache.stats.as_dict()
        return self._minimise(results), stats

    # -- phase 1: sampling and induction --------------------------------------
    def _sample_agree_sets(
        self,
        relation: Relation,
        names: tuple[str, ...],
        stats: DiscoveryStats,
        cache: PartitionCache,
    ) -> set[AttributeSet]:
        """Agree sets of focused-sampled tuple pairs (the negative cover).

        Pairs are read off the single-attribute stripped partitions (shared
        with the validation phase through ``cache``) and compared through the
        relation's cached integer column codes, so sampling performs integer
        comparisons only — never re-reads raw row values.
        """
        agree_sets: set[AttributeSet] = set()
        codes = {name: relation.column_codes(name)[0] for name in names}
        full = frozenset(names)
        for name in names:
            # Neighbouring rows inside each equivalence class of `name` are the
            # pairs most likely to agree on many attributes.  The classes are
            # windowed straight off the partition's flat positions/offsets
            # arrays — no per-group python lists are materialised.
            positions, offsets = cache.get([name]).flat_lists()
            start = offsets[0]
            for group_id in range(1, len(offsets)):
                end = offsets[group_id]
                for offset in range(1, min(self.window, end - start)):
                    for i in range(start, end - offset):
                        first, second = positions[i], positions[i + offset]
                        stats.sampled_pairs += 1
                        agreeing = frozenset(
                            attr for attr in names
                            if codes[attr][first] == codes[attr][second]
                        )
                        if agreeing != full:
                            agree_sets.add(agreeing)
                start = end
        return agree_sets

    @staticmethod
    def _induce_candidates(
        names: tuple[str, ...], universe: AttributeSet, agree_sets: set[AttributeSet]
    ) -> dict[str, set[AttributeSet]]:
        """Specialise the positive cover so no candidate is refuted by a sampled pair.

        Starting from the most general candidate (the empty LHS) for every
        RHS, each agree set ``A`` that omits the RHS refutes every candidate
        ``X ⊆ A``; such candidates are replaced by their one-attribute
        specialisations outside ``A``.
        """
        candidates: dict[str, set[AttributeSet]] = {name: {frozenset()} for name in names}
        ordered = sorted(agree_sets, key=len, reverse=True)
        for rhs in names:
            for agree in ordered:
                if rhs in agree:
                    continue
                current = candidates[rhs]
                refuted = {lhs for lhs in current if lhs <= agree}
                if not refuted:
                    continue
                survivors = current - refuted
                for lhs in refuted:
                    for attribute in universe - agree - {rhs}:
                        extended = lhs | {attribute}
                        if not any(other <= extended for other in survivors):
                            survivors.add(extended)
                candidates[rhs] = survivors
        return candidates

    # -- phase 2: validation ---------------------------------------------------
    @staticmethod
    def _holds(cache: PartitionCache, lhs: AttributeSet, rhs: str) -> bool:
        if not lhs:
            return cache.get([rhs]).distinct_count <= 1
        return cache.get(lhs).error == cache.get(lhs | {rhs}).error

    @staticmethod
    def _minimise(results: list[FD]) -> list[FD]:
        minimal: list[FD] = []
        for dependency in results:
            dominated = any(
                other.rhs == dependency.rhs and other.lhs < dependency.lhs
                for other in results
            )
            if not dominated:
                minimal.append(dependency)
        return minimal
