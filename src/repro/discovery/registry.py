"""Registry of the available FD discovery algorithms.

The experiment harness and the command-line interface look algorithms up by
name, so registering a new algorithm automatically makes it available to
every benchmark and comparison.
"""

from __future__ import annotations

from typing import Callable, Iterable

from .base import FDDiscoveryAlgorithm
from .fastfds import FastFDs
from .fun import FUN
from .hyfd import HyFD
from .naive import NaiveFDDiscovery
from .tane import TANE, ApproximateTANE

AlgorithmFactory = Callable[[], FDDiscoveryAlgorithm]

_REGISTRY: dict[str, AlgorithmFactory] = {
    TANE.name: TANE,
    FUN.name: FUN,
    FastFDs.name: FastFDs,
    HyFD.name: HyFD,
    NaiveFDDiscovery.name: NaiveFDDiscovery,
    ApproximateTANE.name: ApproximateTANE,
}

#: The four state-of-the-art baselines the paper compares InFine against.
PAPER_BASELINES: tuple[str, ...] = ("tane", "fun", "fastfds", "hyfd")


def register_algorithm(name: str, factory: AlgorithmFactory) -> None:
    """Register a custom algorithm factory under ``name``."""
    if not name:
        raise ValueError("algorithm name must be non-empty")
    _REGISTRY[name] = factory


def available_algorithms() -> tuple[str, ...]:
    """Names of all registered algorithms."""
    return tuple(sorted(_REGISTRY))


def make_algorithm(name: str, **kwargs) -> FDDiscoveryAlgorithm:
    """Instantiate the algorithm registered under ``name``."""
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown FD discovery algorithm {name!r}; available: {available_algorithms()}"
        ) from None
    return factory(**kwargs) if kwargs else factory()


def make_algorithms(names: Iterable[str] | None = None) -> list[FDDiscoveryAlgorithm]:
    """Instantiate several algorithms (defaults to the paper's four baselines)."""
    return [make_algorithm(name) for name in (names or PAPER_BASELINES)]
