"""FastFDs: difference-set based FD discovery.

Port of the algorithm of Wyss, Giannella and Robertson ("FastFDs: A
Heuristic-Driven, Depth-First Algorithm for Mining Functional Dependencies
from Relation Instances", DaWaK 2001).

The tuple-oriented strategy is the opposite of TANE's attribute-oriented
lattice walk: FastFDs first computes the *agree sets* of tuple pairs, derives
the *difference sets* (their complements), and then, for each right-hand-side
attribute ``a``, searches depth-first for the minimal covers of the
difference sets modulo ``a`` — each minimal cover is the LHS of a minimal FD
``X -> a``.

Attribute sets are encoded as integer bitmasks so that agree-set accumulation
and cover checks stay cheap in pure Python.
"""

from __future__ import annotations

from ..fd.fd import FD
from ..relational.partition import StrippedPartition
from ..relational.relation import Relation
from .base import DiscoveryStats, FDDiscoveryAlgorithm


class FastFDs(FDDiscoveryAlgorithm):
    """Depth-first, difference-set driven FD discovery (FastFDs)."""

    name = "fastfds"

    def _run(self, relation: Relation, attributes: tuple[str, ...]):
        stats = DiscoveryStats()
        results: list[FD] = []
        if not attributes:
            return results, stats
        if not len(relation):
            # Every FD holds vacuously on an empty instance.
            return [FD((), attribute) for attribute in attributes], stats

        names = tuple(sorted(attributes))
        bit_of = {name: 1 << i for i, name in enumerate(names)}
        full_mask = (1 << len(names)) - 1

        difference_sets = self._difference_sets(relation, names, bit_of, full_mask, stats)

        max_lhs = self._effective_max_lhs(len(names))
        for rhs in names:
            rhs_bit = bit_of[rhs]
            modulo_rhs = sorted(
                {diff & ~rhs_bit for diff in difference_sets if diff & rhs_bit}
            )
            if not modulo_rhs:
                # No tuple pair ever disagrees on rhs: the attribute is constant.
                results.append(FD((), rhs))
                continue
            minimal_diffs = self._minimal_sets(modulo_rhs)
            covers = self._minimal_covers(minimal_diffs, full_mask & ~rhs_bit, stats)
            for cover in covers:
                lhs = [name for name in names if bit_of[name] & cover]
                if len(lhs) <= max_lhs:
                    results.append(FD(lhs, rhs))
        return results, stats

    # -- difference sets ------------------------------------------------------
    def _difference_sets(
        self,
        relation: Relation,
        names: tuple[str, ...],
        bit_of: dict[str, int],
        full_mask: int,
        stats: DiscoveryStats,
    ) -> set[int]:
        """Distinct difference sets (as bitmasks) over all tuple pairs.

        Agree sets are accumulated from the stripped partitions of the single
        attributes: a pair of rows contributes the attribute's bit for every
        partition class containing both.  Pairs that agree on nothing never
        appear in any partition class; their difference set is the full
        attribute set and is added once if such a pair exists.

        Pair enumeration walks each partition's flat positions/offsets
        arrays directly (positions ascend within a group, so ``first <
        second`` holds without sorting) instead of materialising per-group
        python lists.
        """
        n_rows = len(relation)
        agree: dict[int, int] = {}
        for name in names:
            bit = bit_of[name]
            partition = StrippedPartition.from_column(relation, name)
            positions, offsets = partition.flat_lists()
            start = offsets[0]
            for group_id in range(1, len(offsets)):
                end = offsets[group_id]
                for left in range(start, end - 1):
                    key_base = positions[left] * n_rows
                    for right in range(left + 1, end):
                        key = key_base + positions[right]
                        agree[key] = agree.get(key, 0) | bit
                start = end
        stats.sampled_pairs = len(agree)
        difference_sets = {full_mask ^ mask for mask in agree.values() if mask != full_mask}
        total_pairs = n_rows * (n_rows - 1) // 2
        if len(agree) < total_pairs:
            # At least one pair of rows agrees on no attribute at all.
            difference_sets.add(full_mask)
        return difference_sets

    # -- minimal covers -------------------------------------------------------
    @staticmethod
    def _minimal_sets(sets: list[int]) -> list[int]:
        """Keep only the sets that contain no other set of the collection."""
        ordered = sorted(set(sets), key=lambda mask: bin(mask).count("1"))
        minimal: list[int] = []
        for mask in ordered:
            if not any(kept & mask == kept for kept in minimal):
                minimal.append(mask)
        return minimal

    def _minimal_covers(
        self, difference_sets: list[int], allowed_mask: int, stats: DiscoveryStats
    ) -> list[int]:
        """All minimal hitting sets of ``difference_sets`` within ``allowed_mask``.

        Depth-first search in the spirit of FastFDs: at each step the first
        still-uncovered difference set is selected and the search branches on
        each of its attributes.  The generated covers are filtered to the
        subset-minimal ones at the end.
        """
        covers: set[int] = set()

        def search(cover: int, remaining: list[int]) -> None:
            stats.candidates_checked += 1
            uncovered = [diff for diff in remaining if not diff & cover]
            if not uncovered:
                covers.add(cover)
                return
            # Early domination cut: a cover extending a known cover cannot be minimal.
            if any(known & cover == known for known in covers):
                return
            branch_on = min(uncovered, key=lambda mask: bin(mask).count("1"))
            bit = 1
            candidates = branch_on & allowed_mask
            while candidates:
                if candidates & 1:
                    search(cover | bit, uncovered)
                candidates >>= 1
                bit <<= 1

        search(0, difference_sets)
        return self._minimal_sets(sorted(covers))
