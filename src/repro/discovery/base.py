"""Common interface of the single-table FD discovery algorithms.

Every baseline (TANE, FUN, FastFDs, HyFD, and the naive oracle) implements
:class:`FDDiscoveryAlgorithm.discover` and returns a :class:`DiscoveryResult`
containing the complete set of minimal canonical FDs of the input relation,
optionally restricted to a subset of attributes (the projected-attribute
optimisation of InFine Step 1).
"""

from __future__ import annotations

import time
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..fd.fd import FD
from ..fd.fdset import FDSet
from ..relational.backend import active_state, get_backend
from ..relational.relation import Relation


@dataclass
class DiscoveryStats:
    """Bookkeeping counters reported by the discovery algorithms.

    ``extra`` carries kernel-level diagnostics: every run records the
    ``partition_backend`` resolved for its relation and a ``kernel`` delta of
    the active engine state's cache counters (mark-table, partition and
    combined-codes prefix caches, batched validation) bracketing the run —
    session-scoped, so concurrent sessions never pollute each other's
    deltas; algorithms owning a ``PartitionCache`` add their per-run
    ``partition_cache`` breakdown.
    """

    candidates_checked: int = 0
    validations: int = 0
    levels: int = 0
    sampled_pairs: int = 0
    runtime_seconds: float = 0.0
    extra: dict = field(default_factory=dict)


@dataclass
class DiscoveryResult:
    """The output of one FD discovery run."""

    algorithm: str
    relation_name: str
    fds: FDSet
    attributes: tuple[str, ...]
    stats: DiscoveryStats = field(default_factory=DiscoveryStats)

    def __iter__(self):
        return iter(self.fds)

    def __len__(self) -> int:
        return len(self.fds)

    def as_list(self) -> list[FD]:
        """The discovered FDs as a deterministically sorted list."""
        return self.fds.as_list()


class FDDiscoveryAlgorithm(ABC):
    """Base class of all single-table FD discovery algorithms."""

    #: Human-readable algorithm name (used in reports and benchmark labels).
    name: str = "abstract"

    def __init__(self, max_lhs_size: int | None = None) -> None:
        #: Optional cap on the LHS size explored; ``None`` means unbounded.
        self.max_lhs_size = max_lhs_size

    def discover(
        self, relation: Relation, attributes: Sequence[str] | None = None
    ) -> DiscoveryResult:
        """Discover all minimal canonical FDs of ``relation``.

        Parameters
        ----------
        relation:
            The instance to profile.
        attributes:
            Optional restriction of the search to these attributes (InFine's
            projection pruning).  Defaults to all attributes of the relation.
        """
        names = self._resolve_attributes(relation, attributes)
        counters = active_state().counters
        counters_before = counters.snapshot()
        started = time.perf_counter()
        fds, stats = self._run(relation, names)
        stats.runtime_seconds = time.perf_counter() - started
        stats.extra.setdefault("partition_backend", get_backend(len(relation)).name)
        stats.extra.setdefault("kernel", counters.delta(counters_before))
        return DiscoveryResult(
            algorithm=self.name,
            relation_name=relation.name,
            fds=FDSet(fds),
            attributes=names,
            stats=stats,
        )

    @abstractmethod
    def _run(
        self, relation: Relation, attributes: tuple[str, ...]
    ) -> tuple[Iterable[FD], DiscoveryStats]:
        """Algorithm-specific implementation."""

    def _resolve_attributes(
        self, relation: Relation, attributes: Sequence[str] | None
    ) -> tuple[str, ...]:
        if attributes is None:
            return relation.attribute_names
        known = set(relation.attribute_names)
        resolved = tuple(a for a in attributes if a in known)
        unknown = [a for a in attributes if a not in known]
        if unknown:
            raise ValueError(
                f"attributes {unknown} are not part of relation {relation.name!r}"
            )
        return resolved

    def _effective_max_lhs(self, n_attributes: int) -> int:
        if self.max_lhs_size is None:
            return max(n_attributes - 1, 0)
        return min(self.max_lhs_size, max(n_attributes - 1, 0))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(max_lhs_size={self.max_lhs_size})"
