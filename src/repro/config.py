"""Engine configuration: every tuning knob of the partition kernel in one place.

Before the :class:`~repro.session.Session` API, the kernel was configured
through scattered process-wide environment variables (backend selection,
cache budgets) read lazily at first use.  :class:`EngineConfig` turns those
into an explicit, immutable value object:

* environment variables become *defaults*, parsed once by
  :meth:`EngineConfig.from_env`;
* an explicit ``EngineConfig(...)`` (or keyword overrides on
  ``Session(...)``/per-call overrides on ``Session.discover(...)``) always
  wins over the environment;
* the whole configuration is JSON-serialisable (:meth:`as_dict`) and
  content-addressed (:meth:`fingerprint`), so every
  :class:`~repro.session.RunResult` can record exactly which engine settings
  produced it.

The configuration only affects *how fast* results are computed, never *what*
is computed: the two partition backends are bit-compatible and every cache is
semantics-preserving, so artefacts stay byte-identical across any two
configurations (this is pinned by tests).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

#: Environment variable forcing the backend (``python`` / ``numpy`` / ``auto``).
ENV_BACKEND = "REPRO_PARTITION_BACKEND"

#: Environment variable overriding the mark-table cache budget in bytes.
ENV_MARKS_CACHE_BYTES = "REPRO_MARKS_CACHE_BYTES"

#: Environment variable overriding the combined-codes prefix cache size.
ENV_COMBINED_CACHE_ENTRIES = "REPRO_COMBINED_CODES_CACHE_ENTRIES"

#: Environment variable for the per-relation backend heuristic: relations
#: with fewer rows than this fall back to the pure-python loops (their lower
#: constant factors beat the vectorized path on micro inputs).
ENV_BACKEND_MIN_NUMPY_ROWS = "REPRO_BACKEND_MIN_NUMPY_ROWS"

#: Environment variable toggling batched lattice-level validation (``1``/``0``).
ENV_BATCH_VALIDATION = "REPRO_BATCH_VALIDATION"

#: Environment variable bounding the counting-sort grouping path of the numpy
#: backend: key spaces up to this many dense codes are grouped by a 16-bit
#: counting sort instead of the composite introsort (``0`` disables the path).
ENV_COUNTING_SORT_MAX_CODES = "REPRO_COUNTING_SORT_MAX_CODES"

#: Environment variable setting the shard count of the row-sharded grouping
#: path (``0`` = auto-size to the host CPU count, ``1`` = never shard).
ENV_SHARD_COUNT = "REPRO_SHARD_COUNT"

#: Environment variable setting the minimum relation size (rows) at which the
#: sharded grouping path engages (``0`` = shard every grouping).
ENV_SHARD_MIN_ROWS = "REPRO_SHARD_MIN_ROWS"

#: Default mark-table budget: sixteen ~1M-row tables at 8 bytes per row.
DEFAULT_MARKS_CACHE_BYTES = 128 * 1024 * 1024

#: Default number of combined-code prefixes cached per relation.
DEFAULT_COMBINED_CACHE_ENTRIES = 16

#: Default row threshold of the per-relation backend heuristic (0 = always
#: honour the nominal backend choice; the heuristic is opt-in).
DEFAULT_BACKEND_MIN_NUMPY_ROWS = 0

#: Default counting-sort bound: the whole 16-bit key space.  The counting
#: path narrows keys to ``uint16`` before sorting, so values above 65536 are
#: clamped back to it at resolution time; ``0`` disables the path entirely.
DEFAULT_COUNTING_SORT_MAX_CODES = 65536

#: Default sharding threshold: below this many rows the per-shard dispatch
#: and merge bookkeeping cannot beat one straight-line grouping pass, so the
#: kernel stays sequential.  ``benchmarks/bench_calibration.py`` re-measures
#: the crossover per host.
DEFAULT_SHARD_MIN_ROWS = 100_000

_BACKEND_CHOICES = ("auto", "python", "numpy")


def _env_int(env: Mapping[str, str], name: str, default: int, minimum: int = 0) -> int:
    raw = env.get(name)
    if raw:
        try:
            return max(minimum, int(raw))
        except ValueError:
            pass
    return default


def _env_bool(env: Mapping[str, str], name: str, default: bool) -> bool:
    raw = env.get(name)
    if raw is None or raw == "":
        return default
    return raw.strip().lower() not in ("0", "false", "no", "off")


def _env_float(env: Mapping[str, str], name: str, default: float, minimum: float = 0.0) -> float:
    raw = env.get(name)
    if raw:
        try:
            return max(minimum, float(raw))
        except ValueError:
            pass
    return default


class ConfigError(ValueError):
    """Raised for invalid engine configurations."""


@dataclass(frozen=True)
class EngineConfig:
    """Immutable configuration of the partition-kernel engine.

    Parameters
    ----------
    backend:
        Nominal partition backend: ``auto`` (numpy when importable),
        ``python`` or ``numpy`` (raises at resolution time when numpy is not
        importable).
    backend_min_numpy_rows:
        Per-relation override of ``auto``: relations with fewer rows than
        this threshold use the pure-python loops even when numpy is
        available (the python kernel's lower constant factors win on micro
        inputs).  ``0`` disables the heuristic.  Both backends are
        bit-compatible, so the switch point never changes artefacts.
    marks_cache_bytes:
        Byte budget of each relation-scoped row -> group-id mark-table cache.
    combined_codes_cache_entries:
        Entries of each relation-scoped combined-codes prefix LRU.
    partition_cache_max_positions:
        Default ``stripped_size`` budget for algorithm-owned
        :class:`~repro.relational.partition.PartitionCache` instances
        (``None`` = unbounded; call sites may still pass an explicit budget).
    batch_validation:
        Whether :func:`~repro.relational.partition.validate_level` batches a
        lattice level's RHS checks per shared LHS partition (``False`` falls
        back to the scalar per-candidate loop — same verdicts, no batching).
    batch_min_candidates:
        Minimum batch size below which ``validate_level`` uses the scalar
        loop even when batching is enabled (``0`` = always batch).
    counting_sort_max_codes:
        Exclusive key-space bound up to which the numpy backend groups by a
        16-bit counting sort (numpy's radix path over ``uint16`` keys)
        instead of the composite introsort.  Values above 65536 are clamped
        to 65536 at resolution time (the counting path narrows keys to
        ``uint16``); ``0`` disables the path so every grouping takes the
        introsort.  Both sort paths produce the identical stable order, so
        the switch point never changes artefacts.
    shard_count:
        Number of row shards of the sharded grouping path of the numpy
        backend (partition construction splits the code array into row
        ranges, groups each shard on its own thread — numpy releases the GIL
        — and merges shard-local groups back into global first-appearance
        order).  ``0`` auto-sizes to the host CPU count; ``1`` never shards.
        The merge reassigns positions exactly as the sequential grouping
        would emit them, so the knob never changes artefacts (and is inert
        on the python backend).
    shard_min_rows:
        Minimum relation size (rows) at which the sharded grouping path
        engages; smaller groupings stay sequential (the per-shard dispatch
        and merge bookkeeping cannot beat one straight-line pass on small
        inputs).  ``0`` shards every grouping.
    """

    backend: str = "auto"
    backend_min_numpy_rows: int = DEFAULT_BACKEND_MIN_NUMPY_ROWS
    marks_cache_bytes: int = DEFAULT_MARKS_CACHE_BYTES
    combined_codes_cache_entries: int = DEFAULT_COMBINED_CACHE_ENTRIES
    partition_cache_max_positions: int | None = None
    batch_validation: bool = True
    batch_min_candidates: int = 0
    counting_sort_max_codes: int = DEFAULT_COUNTING_SORT_MAX_CODES
    shard_count: int = 0
    shard_min_rows: int = DEFAULT_SHARD_MIN_ROWS

    def __post_init__(self) -> None:
        if self.backend not in _BACKEND_CHOICES:
            raise ConfigError(
                f"unknown partition backend {self.backend!r}: "
                f"expected one of {_BACKEND_CHOICES}"
            )
        for name in (
            "backend_min_numpy_rows",
            "marks_cache_bytes",
            "batch_min_candidates",
            "counting_sort_max_codes",
            "shard_count",
            "shard_min_rows",
        ):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative, got {getattr(self, name)}")
        if self.combined_codes_cache_entries < 2:
            raise ConfigError(
                "combined_codes_cache_entries must be at least 2, got "
                f"{self.combined_codes_cache_entries}"
            )
        if (
            self.partition_cache_max_positions is not None
            and self.partition_cache_max_positions < 0
        ):
            raise ConfigError(
                "partition_cache_max_positions must be non-negative or None"
            )

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_env(cls, env: Mapping[str, str] | None = None) -> "EngineConfig":
        """Parse the environment-variable defaults into a configuration.

        Unset or malformed variables fall back to the built-in defaults, so
        a pristine environment yields ``EngineConfig()`` with ``auto``
        backend selection — exactly the pre-session behaviour.
        """
        if env is None:
            env = os.environ
        backend = (env.get(ENV_BACKEND) or "auto").strip().lower() or "auto"
        if backend not in _BACKEND_CHOICES:
            raise ConfigError(
                f"{ENV_BACKEND}={backend!r} is not a valid backend: "
                f"expected one of {_BACKEND_CHOICES}"
            )
        return cls(
            backend=backend,
            backend_min_numpy_rows=_env_int(
                env, ENV_BACKEND_MIN_NUMPY_ROWS, DEFAULT_BACKEND_MIN_NUMPY_ROWS
            ),
            marks_cache_bytes=_env_int(
                env, ENV_MARKS_CACHE_BYTES, DEFAULT_MARKS_CACHE_BYTES
            ),
            combined_codes_cache_entries=_env_int(
                env, ENV_COMBINED_CACHE_ENTRIES, DEFAULT_COMBINED_CACHE_ENTRIES, minimum=2
            ),
            batch_validation=_env_bool(env, ENV_BATCH_VALIDATION, True),
            counting_sort_max_codes=_env_int(
                env, ENV_COUNTING_SORT_MAX_CODES, DEFAULT_COUNTING_SORT_MAX_CODES
            ),
            shard_count=_env_int(env, ENV_SHARD_COUNT, 0),
            shard_min_rows=_env_int(env, ENV_SHARD_MIN_ROWS, DEFAULT_SHARD_MIN_ROWS),
        )

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "EngineConfig":
        """Build a configuration from a JSON-native mapping of field values.

        The inverse of :meth:`as_dict` (and the parser of per-tenant config
        files for the serving layer): unknown keys raise :class:`ConfigError`,
        missing keys keep their built-in defaults, ``None`` values mean
        "default" (mirroring :meth:`replace`).
        """
        if not isinstance(data, Mapping):
            raise ConfigError(
                f"engine configuration must be a mapping, got {type(data).__name__}"
            )
        return cls().replace(**dict(data))

    def replace(self, **overrides) -> "EngineConfig":
        """A copy with ``overrides`` applied; ``None`` values mean "keep".

        This is the per-call override mechanism of the session API:
        ``session.discover(relation, backend="python")`` derives a one-call
        configuration from the session's without mutating it.
        """
        cleaned = {key: value for key, value in overrides.items() if value is not None}
        unknown = set(cleaned) - {f.name for f in dataclasses.fields(self)}
        if unknown:
            raise ConfigError(f"unknown EngineConfig fields: {sorted(unknown)}")
        return dataclasses.replace(self, **cleaned) if cleaned else self

    # -- serialisation --------------------------------------------------------
    def as_dict(self) -> dict[str, object]:
        """The configuration as a JSON-native dictionary."""
        return dataclasses.asdict(self)

    def fingerprint(self) -> str:
        """A short, stable content hash of the configuration.

        Recorded in every :class:`~repro.session.RunResult` so artefacts can
        be traced back to the exact engine settings that produced them.
        """
        canonical = json.dumps(self.as_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# ---------------------------------------------------------------------------
# Serving-executor configuration (the serving layer's worker model).
# ---------------------------------------------------------------------------

#: Environment variable selecting the serving executor (``thread``/``process``).
ENV_SERVE_EXECUTOR = "REPRO_SERVE_EXECUTOR"

#: Environment variable overriding the serving worker count.
ENV_SERVE_WORKERS = "REPRO_SERVE_WORKERS"

#: Environment variable toggling eager worker-process warmup (``1``/``0``).
ENV_SERVE_WARMUP = "REPRO_SERVE_WARMUP"

#: Environment variable selecting the ``multiprocessing`` start method of the
#: process executor (``spawn``/``fork``/``forkserver``).
ENV_SERVE_START_METHOD = "REPRO_SERVE_START_METHOD"

#: Environment variable holding a fault-injection plan spec (see
#: :mod:`repro.serve.faults`; the literal is duplicated here so ``config``
#: never imports the serving package).  Empty/unset disables injection.
ENV_SERVE_FAULTS = "REPRO_FAULTS"

#: Environment variable capping execution attempts per job (infra retries).
ENV_SERVE_MAX_ATTEMPTS = "REPRO_SERVE_MAX_ATTEMPTS"

#: Environment variable setting the worker-respawn budget per rolling window.
ENV_SERVE_RESTART_BUDGET = "REPRO_SERVE_RESTART_BUDGET"

#: Environment variable setting the rolling respawn-budget window (seconds).
ENV_SERVE_RESTART_WINDOW = "REPRO_SERVE_RESTART_WINDOW"

#: Environment variable toggling the degraded-mode inline fallback (``1``/``0``).
ENV_SERVE_DEGRADED_FALLBACK = "REPRO_SERVE_DEGRADED_FALLBACK"

#: Environment variable setting the graceful-drain deadline (seconds).
ENV_SERVE_DRAIN_DEADLINE = "REPRO_SERVE_DRAIN_DEADLINE"

#: Environment variable pointing the serving layer at an on-disk relation
#: registry root (see :class:`repro.registry.RelationRegistry`); empty/unset
#: keeps the registry in-memory (``relation_ref`` still works, nothing
#: survives a restart).
ENV_REGISTRY_DIR = "REPRO_REGISTRY_DIR"

#: Environment variable sizing the process-executor worker pool independently
#: of the queue-thread count (``0`` = one worker process per queue thread).
ENV_SERVE_PROCESSES = "REPRO_SERVE_PROCESSES"

#: Environment variable recycling each worker process after N jobs (``0`` =
#: never recycle).
ENV_SERVE_MAX_JOBS_PER_WORKER = "REPRO_SERVE_MAX_JOBS_PER_WORKER"

#: Environment variable budgeting the shared-memory data plane in bytes
#: (``0`` disables it; jobs then always travel the pickled wire path).
ENV_SHM_BYTES = "REPRO_SHM_BYTES"

#: Default serving worker count (threads or worker processes).
DEFAULT_SERVE_WORKERS = 4

#: Default execution attempts per job: one retry-capable serving stack, but
#: conservative (the first infra failure is retried twice at most).
DEFAULT_SERVE_MAX_ATTEMPTS = 3

#: Default worker-respawn budget within the rolling window.
DEFAULT_SERVE_RESTART_BUDGET = 5

#: Default rolling window of the respawn budget, in seconds.
DEFAULT_SERVE_RESTART_WINDOW = 30.0

#: Default graceful-drain deadline, in seconds.
DEFAULT_SERVE_DRAIN_DEADLINE = 10.0

#: Default shared-memory plane budget: sixteen ~1M-row, 8-column relations of
#: 8-byte codes.  ``0`` disables the plane.
DEFAULT_SHM_BYTES = 256 * 1024 * 1024

_EXECUTOR_CHOICES = ("thread", "process")

_START_METHOD_CHOICES = ("spawn", "fork", "forkserver")


@dataclass(frozen=True)
class ServeConfig:
    """Immutable executor configuration of the serving layer.

    Parameters
    ----------
    executor:
        ``thread`` (in-process worker threads sharing one session pool — the
        GIL bounds CPU-bound throughput) or ``process`` (one worker process
        per worker, each with its own session pool — CPU-bound jobs scale
        with cores).  Served artefacts are byte-identical either way.
    workers:
        Worker count of the job queue (threads, and under ``process`` also
        the paired worker processes).
    warmup:
        Under ``process``, start and ping every worker process at server
        boot (paying interpreter/import cost once, upfront) instead of
        lazily on each slot's first job.
    start_method:
        ``multiprocessing`` start method of the process executor.  ``spawn``
        is the safe default (fresh interpreter per worker); ``fork`` starts
        faster but inherits parent threads' lock state.
    max_attempts:
        Execution attempts per job: *infra* failures (worker killed, broken
        pipe, injected transient faults) are retried with capped exponential
        backoff up to this many attempts total; *application* failures never
        retry.  Safe because runs are pure — a retried job's artefacts are
        byte-identical to a first-try run.  ``1`` disables retries.
    restart_budget / restart_window:
        Supervision of process workers: more than ``restart_budget`` worker
        respawns within the rolling ``restart_window`` seconds marks the
        executor *degraded* (``/healthz`` turns 503).
    degraded_fallback:
        When the process executor is degraded, run jobs inline in the server
        process (the thread-executor path — same dispatch, byte-identical
        artefacts) instead of feeding a crash-looping worker fleet.
    drain_deadline:
        Graceful-shutdown bound in seconds: running jobs get this long to
        drain before overrunning process workers are terminated.
    faults:
        Fault-injection plan spec (see :mod:`repro.serve.faults`), parsed by
        the serving layer; ``None``/empty disables injection (zero overhead).
    registry_dir:
        Root directory of the on-disk relation registry
        (:class:`repro.registry.RelationRegistry`); ``None`` keeps the
        server's registry in-memory — ``PUT /relations``/``relation_ref``
        still work, but entries do not survive a restart.
    processes:
        Size of the process executor's worker-process pool, decoupled from
        ``workers`` (the queue-thread count): any idle worker serves any
        queue thread.  ``0`` sizes the pool to match ``workers`` — the
        pre-pool 1:1 behaviour.
    max_jobs_per_worker:
        Recycle each worker process after this many completed jobs (bounds
        per-worker memory growth; the replacement spawn is *not* counted
        against the supervision restart budget).  ``0`` never recycles.
    shm_bytes:
        Byte budget of the shared-memory data plane
        (:class:`repro.shm.SharedRelationPlane`): registry-resident
        relations are published once as ``/dev/shm`` segments and attached
        zero-copy by worker processes instead of being re-pickled per job.
        ``0`` disables the plane (jobs travel the wire path, artefacts are
        byte-identical either way).
    """

    executor: str = "thread"
    workers: int = DEFAULT_SERVE_WORKERS
    warmup: bool = True
    start_method: str = "spawn"
    max_attempts: int = DEFAULT_SERVE_MAX_ATTEMPTS
    restart_budget: int = DEFAULT_SERVE_RESTART_BUDGET
    restart_window: float = DEFAULT_SERVE_RESTART_WINDOW
    degraded_fallback: bool = False
    drain_deadline: float = DEFAULT_SERVE_DRAIN_DEADLINE
    faults: str | None = None
    registry_dir: str | None = None
    processes: int = 0
    max_jobs_per_worker: int = 0
    shm_bytes: int = DEFAULT_SHM_BYTES

    def __post_init__(self) -> None:
        if self.executor not in _EXECUTOR_CHOICES:
            raise ConfigError(
                f"unknown serving executor {self.executor!r}: "
                f"expected one of {_EXECUTOR_CHOICES}"
            )
        if self.workers < 1:
            raise ConfigError(f"workers must be at least 1, got {self.workers}")
        if self.start_method not in _START_METHOD_CHOICES:
            raise ConfigError(
                f"unknown start method {self.start_method!r}: "
                f"expected one of {_START_METHOD_CHOICES}"
            )
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be at least 1, got {self.max_attempts}")
        if self.restart_budget < 0:
            raise ConfigError(
                f"restart_budget must be non-negative, got {self.restart_budget}"
            )
        if self.restart_window <= 0:
            raise ConfigError(f"restart_window must be positive, got {self.restart_window}")
        if self.drain_deadline <= 0:
            raise ConfigError(f"drain_deadline must be positive, got {self.drain_deadline}")
        for name in ("processes", "max_jobs_per_worker", "shm_bytes"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be non-negative, got {getattr(self, name)}")

    @classmethod
    def from_env(cls, env: Mapping[str, str] | None = None) -> "ServeConfig":
        """Parse the environment-variable defaults into a serving configuration.

        Unset variables fall back to the built-in defaults (thread executor,
        4 workers, warmup on, ``spawn``, 3 attempts, no fault plan);
        malformed choices raise :class:`ConfigError` rather than silently
        degrading.
        """
        if env is None:
            env = os.environ
        executor = (env.get(ENV_SERVE_EXECUTOR) or "thread").strip().lower() or "thread"
        start_method = (env.get(ENV_SERVE_START_METHOD) or "spawn").strip().lower() or "spawn"
        return cls(
            executor=executor,
            workers=_env_int(env, ENV_SERVE_WORKERS, DEFAULT_SERVE_WORKERS, minimum=1),
            warmup=_env_bool(env, ENV_SERVE_WARMUP, True),
            start_method=start_method,
            max_attempts=_env_int(
                env, ENV_SERVE_MAX_ATTEMPTS, DEFAULT_SERVE_MAX_ATTEMPTS, minimum=1
            ),
            restart_budget=_env_int(
                env, ENV_SERVE_RESTART_BUDGET, DEFAULT_SERVE_RESTART_BUDGET
            ),
            restart_window=_env_float(
                env, ENV_SERVE_RESTART_WINDOW, DEFAULT_SERVE_RESTART_WINDOW, minimum=0.001
            ),
            degraded_fallback=_env_bool(env, ENV_SERVE_DEGRADED_FALLBACK, False),
            drain_deadline=_env_float(
                env, ENV_SERVE_DRAIN_DEADLINE, DEFAULT_SERVE_DRAIN_DEADLINE, minimum=0.001
            ),
            faults=(env.get(ENV_SERVE_FAULTS) or "").strip() or None,
            registry_dir=(env.get(ENV_REGISTRY_DIR) or "").strip() or None,
            processes=_env_int(env, ENV_SERVE_PROCESSES, 0),
            max_jobs_per_worker=_env_int(env, ENV_SERVE_MAX_JOBS_PER_WORKER, 0),
            shm_bytes=_env_int(env, ENV_SHM_BYTES, DEFAULT_SHM_BYTES),
        )

    @classmethod
    def from_env_fields(
        cls, names: "Iterable[str]", env: Mapping[str, str] | None = None
    ) -> dict[str, object]:
        """Parse just ``names`` from the environment (see :meth:`from_env`).

        Lets a caller resolve only the fields it actually left defaulted: a
        server constructed with an explicit executor must not fail on (or
        vary with) a malformed ``REPRO_SERVE_*`` variable it never reads.
        The returned values are validated (malformed requested variables
        still raise :class:`ConfigError`).
        """
        if env is None:
            env = os.environ
        parsers: dict[str, Callable[[], object]] = {
            "executor": lambda: (env.get(ENV_SERVE_EXECUTOR) or "thread").strip().lower()
            or "thread",
            "workers": lambda: _env_int(env, ENV_SERVE_WORKERS, DEFAULT_SERVE_WORKERS, minimum=1),
            "warmup": lambda: _env_bool(env, ENV_SERVE_WARMUP, True),
            "start_method": lambda: (env.get(ENV_SERVE_START_METHOD) or "spawn").strip().lower()
            or "spawn",
            "max_attempts": lambda: _env_int(
                env, ENV_SERVE_MAX_ATTEMPTS, DEFAULT_SERVE_MAX_ATTEMPTS, minimum=1
            ),
            "restart_budget": lambda: _env_int(
                env, ENV_SERVE_RESTART_BUDGET, DEFAULT_SERVE_RESTART_BUDGET
            ),
            "restart_window": lambda: _env_float(
                env, ENV_SERVE_RESTART_WINDOW, DEFAULT_SERVE_RESTART_WINDOW, minimum=0.001
            ),
            "degraded_fallback": lambda: _env_bool(env, ENV_SERVE_DEGRADED_FALLBACK, False),
            "drain_deadline": lambda: _env_float(
                env, ENV_SERVE_DRAIN_DEADLINE, DEFAULT_SERVE_DRAIN_DEADLINE, minimum=0.001
            ),
            "faults": lambda: (env.get(ENV_SERVE_FAULTS) or "").strip() or None,
            "registry_dir": lambda: (env.get(ENV_REGISTRY_DIR) or "").strip() or None,
            "processes": lambda: _env_int(env, ENV_SERVE_PROCESSES, 0),
            "max_jobs_per_worker": lambda: _env_int(env, ENV_SERVE_MAX_JOBS_PER_WORKER, 0),
            "shm_bytes": lambda: _env_int(env, ENV_SHM_BYTES, DEFAULT_SHM_BYTES),
        }
        unknown = set(names) - set(parsers)
        if unknown:
            raise ConfigError(f"unknown ServeConfig fields: {sorted(unknown)}")
        values = {name: parsers[name]() for name in names}
        # Validate only the requested fields: everything else stays at its
        # (always valid) built-in default.
        cls(**values)  # type: ignore[arg-type]
        return values

    def as_dict(self) -> dict[str, object]:
        """The configuration as a JSON-native dictionary."""
        return dataclasses.asdict(self)


# ---------------------------------------------------------------------------
# Per-tenant configuration (the serving layer's tenant model).
# ---------------------------------------------------------------------------

#: Tenant-config key holding the defaults applied to tenants with no entry.
TENANT_DEFAULT_KEY = "*"


def parse_tenant_configs(
    data: Mapping[str, Mapping[str, object]],
) -> dict[str, EngineConfig]:
    """Parse a ``{tenant: {field: value}}`` mapping into per-tenant configs.

    The wire/file format of ``python -m repro serve --tenant-config``: each
    key is a tenant name, each value a partial :class:`EngineConfig` mapping
    (unknown fields raise :class:`ConfigError`, naming the offending tenant).
    The special key ``"*"`` configures the *default* applied to tenants
    without an explicit entry; explicit entries are layered on top of it, so

    .. code-block:: json

        {"*": {"backend": "python"},
         "acme": {"marks_cache_bytes": 1048576}}

    gives ``acme`` the python backend *and* the 1 MiB budget.
    """
    if not isinstance(data, Mapping):
        raise ConfigError(
            f"tenant configuration must be a mapping, got {type(data).__name__}"
        )
    base = EngineConfig()
    default_fields = data.get(TENANT_DEFAULT_KEY)
    if default_fields is not None:
        try:
            base = base.replace(**dict(default_fields))
        except (ConfigError, TypeError, ValueError) as exc:
            raise ConfigError(f"tenant {TENANT_DEFAULT_KEY!r}: {exc}") from exc
    configs: dict[str, EngineConfig] = {TENANT_DEFAULT_KEY: base}
    for tenant, fields in data.items():
        if tenant == TENANT_DEFAULT_KEY:
            continue
        if not isinstance(tenant, str) or not tenant:
            raise ConfigError(f"tenant names must be non-empty strings, got {tenant!r}")
        try:
            configs[tenant] = base.replace(**dict(fields))
        except (ConfigError, TypeError, ValueError) as exc:
            raise ConfigError(f"tenant {tenant!r}: {exc}") from exc
    return configs


def load_tenant_configs(path: "os.PathLike[str] | str") -> dict[str, EngineConfig]:
    """Load :func:`parse_tenant_configs` input from a JSON file."""
    with open(path, "r", encoding="utf-8") as handle:
        try:
            data = json.load(handle)
        except json.JSONDecodeError as exc:
            raise ConfigError(f"tenant config {path}: invalid JSON ({exc})") from exc
    return parse_tenant_configs(data)
