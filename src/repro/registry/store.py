"""The content-addressed relation store: crash-safe, integrity-verified.

:class:`RelationRegistry` maps a relation's content hash (see
:mod:`repro.registry.hashing`) to the relation itself.  Two backends share
one class:

* **in-memory** (``root=None``) — a bounded LRU of materialised relations;
  what a registry-less server uses so ``relation_ref`` submissions still
  work within one process.
* **on-disk** (``root=<dir>``) — one JSON entry per relation under
  ``<root>/objects/<hash>.json``.  Writes are atomic (tmp file + fsync +
  rename into the hash-named path), so a concurrent duplicate ``PUT`` ends
  with one intact file and a crash mid-write leaves only a tmp leftover.
  Every disk read re-verifies the entry by recomputing its content hash;
  corrupt or truncated entries are moved to ``<root>/quarantine/`` and
  surface as a typed :class:`IntegrityError` — an *infra*-class failure in
  the serving layer's classification — never as silently wrong bytes.

A **recovery scan** runs at construction of a disk-backed registry: tmp
leftovers from a ``kill -9`` mid-``PUT`` are removed (and reported via
``stats()["recovery"]``), foreign files in ``objects/`` are quarantined,
and the surviving hash-named entries form the index.

The disk backend keeps the in-memory LRU in front of it, and a cache hit
returns the *same* :class:`Relation` object every time — which is what lets
the session layer's identity-keyed kernel caches (partitions, mark tables,
combined-code prefixes) stay warm across jobs and tenants that address the
same data by hash.

Fault injection: when a :class:`~repro.serve.faults.FaultPlan` (or anything
with a compatible ``fire(site, on_kill=...)``) is attached, disk reads pass
the ``registry.read`` site and the commit point of a write (between fsync
and rename — the torn-write window) passes ``registry.write``; a ``kill``
rule there SIGKILLs the *current process*, the deterministic power-loss
simulation.  The site-name literals are duplicated from
:mod:`repro.serve.faults` so this module never imports the serving package
(which imports the session layer, which imports this module).
"""

from __future__ import annotations

import json
import os
import signal
import threading
import uuid
from collections import OrderedDict
from pathlib import Path
from typing import Any, Callable, Optional

from ..relational.relation import Relation, RelationError
from .hashing import is_relation_hash

#: Schema tag of one on-disk registry entry.
RELATION_ENTRY_SCHEMA = "repro/relation-v1"

#: Fault-injection site names (must match ``repro.serve.faults.SITE_REGISTRY_*``;
#: duplicated so the registry never imports the serving package).
SITE_REGISTRY_READ = "registry.read"
SITE_REGISTRY_WRITE = "registry.write"

#: Test hook invoked with the tmp path between fsync and the atomic rename —
#: the window in which a crash must leave the destination untouched.  Kept
#: module-level (not a parameter) so kill-during-save subprocess tests can
#: arm it without threading it through ``RunResult.save``.
_TEST_BEFORE_REPLACE: Optional[Callable[[Path], None]] = None


class IntegrityError(RuntimeError):
    """A store entry failed verification (corrupt, truncated, unreadable).

    Classified as an *infrastructure* failure by the serving layer
    (:func:`repro.serve.jobs.classify_failure`): the bytes on disk are wrong,
    not the job — jobs that hit it are retried and, if the damage persists,
    fail as ``infra``.  The offending entry has already been moved to the
    registry's ``quarantine/`` directory when ``quarantined`` is set.
    """

    def __init__(
        self,
        message: str,
        content_hash: str | None = None,
        path: str | None = None,
        quarantined: str | None = None,
    ) -> None:
        super().__init__(message)
        self.content_hash = content_hash
        self.path = path
        self.quarantined = quarantined


def _kill_self() -> None:  # pragma: no cover - the caller does not survive
    os.kill(os.getpid(), signal.SIGKILL)


def _fsync_directory(path: Path) -> None:
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform without directory fds
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - fsync unsupported on the mount
        pass
    finally:
        os.close(fd)


def atomic_write_text(
    path: "str | os.PathLike[str]",
    text: str,
    before_replace: Callable[[], None] | None = None,
) -> Path:
    """Write ``text`` to ``path`` atomically: tmp file + fsync + rename.

    A crash at any point leaves either the old content or the new content at
    ``path`` — never a truncated mix; at worst a ``.tmp`` leftover remains
    next to it (the registry's recovery scan removes those).
    ``before_replace`` runs after the data is durable but before the rename
    — the hook the registry uses to expose the torn-write window to fault
    injection.  Shared by :meth:`repro.session.RunResult.save`.
    """
    path = Path(path)
    tmp = path.with_name(f".{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}.tmp")
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        hook = _TEST_BEFORE_REPLACE
        if hook is not None:
            hook(tmp)
        if before_replace is not None:
            before_replace()
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    _fsync_directory(path.parent)
    return path


class RelationRegistry:
    """A content-addressed relation store (see the module docstring).

    Parameters
    ----------
    root:
        Directory of the on-disk backend (created if missing, with
        ``objects/`` and ``quarantine/`` beneath it); ``None`` keeps the
        registry purely in-memory.
    faults:
        Optional fault plan driving the ``registry.read``/``registry.write``
        injection sites (duck-typed: anything with
        ``fire(site, on_kill=...)``).  The serving layer wires its own
        shared :class:`~repro.serve.faults.FaultPlan` in here.
    max_cached_relations:
        Bound on the materialisation LRU (and on the whole store when
        in-memory).
    max_quarantine_bytes:
        Size cap on the ``quarantine/`` directory.  Quarantined entries are
        forensic evidence, not data the store needs — without a cap a
        corruption storm (or a restart loop over the same rotten entry)
        grows the directory without bound.  Oldest files are pruned first,
        at construction (stale quarantine from previous runs) and after
        every new quarantine; ``0`` disables pruning.
    """

    def __init__(
        self,
        root: "str | os.PathLike[str] | None" = None,
        faults: Any = None,
        max_cached_relations: int = 256,
        max_quarantine_bytes: int = 64 * 1024 * 1024,
    ) -> None:
        if max_cached_relations < 1:
            raise ValueError(
                f"max_cached_relations must be at least 1, got {max_cached_relations}"
            )
        if max_quarantine_bytes < 0:
            raise ValueError(
                f"max_quarantine_bytes must be non-negative, got {max_quarantine_bytes}"
            )
        self.faults = faults
        self._max_cached = max_cached_relations
        self._max_quarantine_bytes = max_quarantine_bytes
        self._lock = threading.RLock()
        self._cache: "OrderedDict[str, Relation]" = OrderedDict()
        self._counters = {
            "puts": 0,
            "gets": 0,
            "cache_hits": 0,
            "disk_reads": 0,
            "writes": 0,
            "write_skips": 0,
            "quarantined": 0,
            "quarantine_pruned": 0,
        }
        self.last_recovery: dict[str, int] | None = None
        self.root: Path | None = None if root is None else Path(root)
        if self.root is not None:
            self._objects_dir.mkdir(parents=True, exist_ok=True)
            self._quarantine_dir.mkdir(parents=True, exist_ok=True)
            self.last_recovery = self.recover()
            self._prune_quarantine()

    # -- layout ----------------------------------------------------------------
    @property
    def persistent(self) -> bool:
        """Whether this registry has an on-disk backend."""
        return self.root is not None

    @property
    def _objects_dir(self) -> Path:
        return self.root / "objects"

    @property
    def _quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def _object_path(self, content_hash: str) -> Path:
        return self._objects_dir / f"{content_hash}.json"

    # -- the store verbs -------------------------------------------------------
    def put(self, relation: Relation) -> str:
        """Store ``relation``; returns its content hash (idempotent).

        Disk writes are atomic and skipped when the hash-named entry already
        exists (reads verify, so trusting an existing file is safe); two
        concurrent ``put``\\ s of the same relation both succeed and leave
        exactly one intact file.  Persisting requires JSON-native values.
        """
        content_hash = relation.content_hash()
        with self._lock:
            self._counters["puts"] += 1
        if self.persistent:
            path = self._object_path(content_hash)
            if path.exists():
                with self._lock:
                    self._counters["write_skips"] += 1
            else:
                entry = {
                    "schema": RELATION_ENTRY_SCHEMA,
                    "hash": content_hash,
                    "relation": {
                        "name": relation.name,
                        "attributes": list(relation.attribute_names),
                        "rows": [list(row) for row in relation.rows],
                    },
                }
                try:
                    text = json.dumps(entry, sort_keys=True, ensure_ascii=False, allow_nan=False)
                except (TypeError, ValueError) as exc:
                    raise ValueError(
                        f"relation {relation.name!r} holds values that are not "
                        f"JSON-native and cannot be persisted: {exc}"
                    ) from exc
                atomic_write_text(path, text, before_replace=self._fire_write)
                with self._lock:
                    self._counters["writes"] += 1
        self._remember(content_hash, relation)
        return content_hash

    def get(self, content_hash: str) -> Relation:
        """The relation addressed by ``content_hash``.

        Raises :class:`KeyError` for an unknown hash and
        :class:`IntegrityError` for an entry that fails verification (the
        entry is quarantined first).  Cache hits return the same
        :class:`Relation` object every time, keeping identity-keyed kernel
        caches warm across callers.
        """
        if not is_relation_hash(content_hash):
            raise KeyError(content_hash)
        with self._lock:
            self._counters["gets"] += 1
            relation = self._cache.get(content_hash)
            if relation is not None:
                self._cache.move_to_end(content_hash)
                self._counters["cache_hits"] += 1
                return relation
        if not self.persistent:
            raise KeyError(content_hash)
        if self.faults is not None:
            self.faults.fire(SITE_REGISTRY_READ)
        relation = self._read_verified(content_hash)
        return self._remember(content_hash, relation)

    def __contains__(self, content_hash: object) -> bool:
        if not is_relation_hash(content_hash):
            return False
        with self._lock:
            if content_hash in self._cache:
                return True
        return self.persistent and self._object_path(str(content_hash)).exists()

    def hashes(self) -> list[str]:
        """Every content hash currently addressable, sorted."""
        with self._lock:
            known = set(self._cache)
        if self.persistent:
            for path in self._objects_dir.glob("*.json"):
                stem = path.name[: -len(".json")]
                if is_relation_hash(stem):
                    known.add(stem)
        return sorted(known)

    def verify(self, content_hash: str) -> bool:
        """Re-verify an entry against the disk, bypassing the LRU.

        ``True`` when the stored bytes still hash to ``content_hash``;
        raises like :meth:`get` otherwise.  In-memory registries only check
        membership (their entries cannot rot).
        """
        if not self.persistent:
            with self._lock:
                if content_hash not in self._cache:
                    raise KeyError(content_hash)
            return True
        self._read_verified(content_hash)
        return True

    # -- internals -------------------------------------------------------------
    def _fire_write(self) -> None:
        # The commit point of an atomic write: a ``registry.write`` kill rule
        # here SIGKILLs the process with the tmp file durable but the rename
        # not yet performed — the deterministic torn-write simulation.
        if self.faults is not None:
            self.faults.fire(SITE_REGISTRY_WRITE, on_kill=_kill_self)

    def _read_verified(self, content_hash: str) -> Relation:
        path = self._object_path(content_hash)
        try:
            text = path.read_text(encoding="utf-8")
        except FileNotFoundError:
            raise KeyError(content_hash) from None
        except UnicodeDecodeError as exc:
            quarantined = self._quarantine(path)
            raise IntegrityError(
                f"registry entry {content_hash} is corrupt (not UTF-8: {exc}); "
                f"moved to quarantine",
                content_hash=content_hash,
                path=str(path),
                quarantined=quarantined,
            ) from exc
        except OSError as exc:
            raise IntegrityError(
                f"registry entry {content_hash} is unreadable: {exc}",
                content_hash=content_hash,
                path=str(path),
            ) from exc
        with self._lock:
            self._counters["disk_reads"] += 1
        try:
            entry = json.loads(text)
            if not isinstance(entry, dict):
                raise ValueError("entry is not a JSON object")
            if entry.get("schema") != RELATION_ENTRY_SCHEMA:
                raise ValueError(f"unexpected entry schema {entry.get('schema')!r}")
            if entry.get("hash") != content_hash:
                raise ValueError("embedded hash does not match the entry's address")
            payload = entry["relation"]
            relation = Relation(payload["name"], tuple(payload["attributes"]), payload["rows"])
        except (ValueError, KeyError, TypeError, RelationError) as exc:
            # json.JSONDecodeError is a ValueError: truncated and bit-flipped
            # entries land here unless the flip kept the JSON well-formed —
            # then the hash check below catches it.
            quarantined = self._quarantine(path)
            raise IntegrityError(
                f"registry entry {content_hash} is corrupt ({exc}); "
                f"moved to quarantine",
                content_hash=content_hash,
                path=str(path),
                quarantined=quarantined,
            ) from exc
        actual = relation.content_hash()
        if actual != content_hash:
            quarantined = self._quarantine(path)
            raise IntegrityError(
                f"registry entry {content_hash} failed verification "
                f"(stored bytes hash to {actual}); moved to quarantine",
                content_hash=content_hash,
                path=str(path),
                quarantined=quarantined,
            )
        return relation

    def _quarantine(self, path: Path) -> str | None:
        target = self._quarantine_dir / f"{path.name}.{os.getpid()}.{uuid.uuid4().hex[:8]}"
        try:
            os.replace(path, target)
        except OSError:  # pragma: no cover - a concurrent reader already moved it
            return None
        with self._lock:
            self._counters["quarantined"] += 1
        self._prune_quarantine(keep=target)
        return str(target)

    def _prune_quarantine(self, keep: "Path | None" = None) -> int:
        """Trim ``quarantine/`` to the byte cap, oldest files first.

        ``keep`` protects the just-quarantined file — the evidence of the
        *current* failure must survive its own pruning sweep even when it
        alone exceeds the cap.  Returns how many files were removed.
        """
        if not self._max_quarantine_bytes:
            return 0
        entries = []
        for path in self._quarantine_dir.iterdir():
            try:
                stat = path.stat()
            except OSError:  # pragma: no cover - raced with another pruner
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        total = sum(size for _mtime, size, _path in entries)
        removed = 0
        for _mtime, size, path in sorted(entries):
            if total <= self._max_quarantine_bytes:
                break
            if keep is not None and path == keep:
                continue
            try:
                path.unlink()
            except OSError:  # pragma: no cover - raced with another pruner
                continue
            total -= size
            removed += 1
        if removed:
            with self._lock:
                self._counters["quarantine_pruned"] += removed
        return removed

    def _remember(self, content_hash: str, relation: Relation) -> Relation:
        with self._lock:
            existing = self._cache.get(content_hash)
            if existing is not None:
                self._cache.move_to_end(content_hash)
                return existing
            self._cache[content_hash] = relation
            while len(self._cache) > self._max_cached:
                self._cache.popitem(last=False)
        return relation

    # -- recovery and diagnostics ----------------------------------------------
    def recover(self) -> dict[str, int]:
        """Scan ``objects/`` and rebuild a consistent state after a crash.

        Removes tmp leftovers (partial writes killed before their rename),
        quarantines files that are neither entries nor tmp files, and counts
        the surviving hash-named entries.  Runs automatically when a
        disk-backed registry is constructed; the report is kept on
        ``last_recovery`` and surfaced through :meth:`stats`.
        """
        report = {"entries": 0, "partial_writes_removed": 0, "foreign_files_quarantined": 0}
        for path in sorted(self._objects_dir.iterdir()):
            name = path.name
            if name.endswith(".tmp"):
                try:
                    path.unlink()
                except OSError:  # pragma: no cover - raced by a writer
                    continue
                report["partial_writes_removed"] += 1
            elif (
                name.endswith(".json")
                and is_relation_hash(name[: -len(".json")])
                and path.is_file()
            ):
                report["entries"] += 1
            elif self._quarantine(path) is not None:
                report["foreign_files_quarantined"] += 1
        return report

    def stats(self) -> dict[str, Any]:
        """Store counters, cache occupancy, backend and last recovery report."""
        with self._lock:
            payload: dict[str, Any] = {
                **self._counters,
                "cached": len(self._cache),
                "persistent": self.persistent,
            }
        if self.root is not None:
            payload["root"] = str(self.root)
            files = bytes_used = 0
            for path in self._quarantine_dir.iterdir():
                try:
                    bytes_used += path.stat().st_size
                except OSError:  # pragma: no cover - raced with a pruner
                    continue
                files += 1
            payload["quarantine"] = {
                "files": files,
                "bytes": bytes_used,
                "max_bytes": self._max_quarantine_bytes,
            }
        if self.last_recovery is not None:
            payload["recovery"] = dict(self.last_recovery)
        return payload

    def __repr__(self) -> str:
        backend = f"root={str(self.root)!r}" if self.persistent else "in-memory"
        return f"RelationRegistry({backend}, cached={len(self._cache)})"
