"""Canonical content hashing of relations — the registry's addressing scheme.

A relation's **content hash** is a sha256 computed column by column from the
same dense dictionary encoding every partition primitive already runs on
(:meth:`repro.relational.relation.Relation.column_codes`):

* one **leaf digest per column** over a canonical header (attribute name,
  code count), the raw ``array('q')`` code stream rendered little-endian,
  and the column's dictionary — its distinct values in first-appearance
  order, length-prefixed canonical JSON each.  The codes alone would make
  ``[1, 2]`` and ``["a", "b"]`` collide; folding the dictionary in makes the
  leaf a function of the actual values.
* the **relation hash** folds the leaves merkle-style: sha256 over a
  canonical relation header (name, attribute order, row count) followed by
  the column digests in schema order.

The encoding is pure Python and backend-independent — code assignment in
first-appearance order is part of the kernel's bit-compatibility contract —
so the same relation hashes identically under the python and numpy backends,
across executors, and across processes.  Hashing is representation-level:
row order and duplicate rows are part of the identity (two bag-equal
relations with different row orders address different registry entries,
matching how results depend on the instance actually submitted).
"""

from __future__ import annotations

import hashlib
import json
import sys
from array import array
from typing import TYPE_CHECKING, Any, Mapping

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..relational.relation import Relation

#: Length of a relation content hash (sha256 hexdigest).
HASH_HEX_LENGTH = 64

#: Version tag folded into every digest so a future scheme change can never
#: alias an old address.
_HASH_VERSION = 1

_HEX_DIGITS = frozenset("0123456789abcdef")


def is_relation_hash(value: Any) -> bool:
    """Whether ``value`` is syntactically a relation content hash."""
    return (
        isinstance(value, str)
        and len(value) == HASH_HEX_LENGTH
        and set(value) <= _HEX_DIGITS
    )


def _canonical_json_bytes(value: Any) -> bytes:
    # ``default=repr`` keeps hashing total over exotic in-memory values
    # (persistence separately requires JSON-native values; see the store).
    return json.dumps(
        value, sort_keys=True, separators=(",", ":"), ensure_ascii=False, default=repr
    ).encode("utf-8")


def _code_bytes(codes: array) -> bytes:
    if sys.byteorder == "big":  # pragma: no cover - no big-endian CI host
        swapped = array("q", codes)
        swapped.byteswap()
        return swapped.tobytes()
    return codes.tobytes()


def column_digest(relation: "Relation", attribute: str) -> bytes:
    """The sha256 leaf of one column: header + code stream + dictionary."""
    codes, n_codes = relation.column_codes(attribute)
    index = relation.schema.index_of(attribute)
    # First-appearance dictionary: a value is new exactly when its code
    # equals the number of values collected so far (dense assignment order).
    dictionary: list[Any] = []
    for row, code in zip(relation.rows, codes):
        if code == len(dictionary):
            dictionary.append(row[index])
    digest = hashlib.sha256()
    digest.update(
        _canonical_json_bytes(
            {"attribute": attribute, "n_codes": n_codes, "version": _HASH_VERSION}
        )
    )
    digest.update(_code_bytes(codes))
    for value in dictionary:
        encoded = _canonical_json_bytes(value)
        digest.update(len(encoded).to_bytes(8, "little"))
        digest.update(encoded)
    return digest.digest()


def relation_content_hash(relation: "Relation") -> str:
    """The content address of ``relation`` (64-char sha256 hexdigest).

    Prefer :meth:`Relation.content_hash`, which memoises this per instance.
    """
    digest = hashlib.sha256()
    digest.update(
        _canonical_json_bytes(
            {
                "attributes": list(relation.attribute_names),
                "n_rows": len(relation),
                "name": relation.name,
                "version": _HASH_VERSION,
            }
        )
    )
    for attribute in relation.attribute_names:
        digest.update(column_digest(relation, attribute))
    return digest.hexdigest()


def catalog_content_hash(catalog: Mapping[str, "Relation"]) -> str:
    """One address for a whole catalog: sha256 over its per-relation hashes.

    Used to stamp :meth:`~repro.session.Session.infine` results, whose input
    is a mapping of base relations rather than a single instance.
    """
    leaves = {name: relation.content_hash() for name, relation in catalog.items()}
    return hashlib.sha256(
        _canonical_json_bytes({"catalog": leaves, "version": _HASH_VERSION})
    ).hexdigest()
