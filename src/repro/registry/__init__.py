"""``repro.registry`` — content-addressed relation storage and provenance.

The data-plane counterpart of the serving layer's fault tolerance: relations
are addressed by a canonical columnar content hash
(:func:`relation_content_hash`, exposed as
:meth:`~repro.relational.relation.Relation.content_hash`), stored in a
crash-safe :class:`RelationRegistry` (atomic writes, read-time integrity
verification with quarantine, a startup recovery scan), and every
:class:`~repro.session.RunResult` is stamped with a provenance block that
:func:`verify_provenance` can re-check end-to-end::

    from repro import Relation, RelationRegistry, Session, verify_provenance

    registry = RelationRegistry("./relations")      # or None for in-memory
    relation = Relation("r", ("a", "b"), [(1, 2), (1, 3)])
    content_hash = registry.put(relation)

    result = Session().discover(registry.get(content_hash))
    verify_provenance(result, registry)             # raises if the chain broke

Over the wire, ``PUT /relations`` stores a relation once and ``job-request-v1``
payloads may then reference it via the additive ``relation_ref`` field (see
``docs/PROTOCOL.md``); the serving layer resolves references through one
shared registry, so kernel caches stay warm across jobs, tenants and the
process-executor boundary.
"""

from .hashing import (
    HASH_HEX_LENGTH,
    catalog_content_hash,
    is_relation_hash,
    relation_content_hash,
)
from .provenance import (
    PROVENANCE_EXECUTORS,
    PROVENANCE_KEYS,
    ProvenanceError,
    build_provenance,
    verify_provenance,
)
from .store import (
    RELATION_ENTRY_SCHEMA,
    SITE_REGISTRY_READ,
    SITE_REGISTRY_WRITE,
    IntegrityError,
    RelationRegistry,
    atomic_write_text,
)

__all__ = [
    "HASH_HEX_LENGTH",
    "IntegrityError",
    "PROVENANCE_EXECUTORS",
    "PROVENANCE_KEYS",
    "ProvenanceError",
    "RELATION_ENTRY_SCHEMA",
    "RelationRegistry",
    "SITE_REGISTRY_READ",
    "SITE_REGISTRY_WRITE",
    "atomic_write_text",
    "build_provenance",
    "catalog_content_hash",
    "is_relation_hash",
    "relation_content_hash",
    "verify_provenance",
]
