"""Provenance stamping and verification of run results.

Every :class:`~repro.session.RunResult` carries a ``provenance`` block —
``{relation_hash, config_fingerprint, code_version, executor}`` — naming
exactly which data (by content hash), which engine configuration (by
fingerprint), which code version and which execution path produced the
artefacts.  :func:`verify_provenance` re-checks that chain after the fact:
the block's internal consistency always, and, given a registry, that the
named relation still exists and still verifies against its hash.

The block lives next to ``engine`` in the payload and, like ``engine``, is
excluded from :meth:`~repro.session.RunResult.artifact_fingerprint` — two
byte-identical artefact sets produced on different executors share a
fingerprint while their provenance records the difference.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Mapping

from .._version import __version__
from ..config import ConfigError, EngineConfig
from .hashing import is_relation_hash

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .store import RelationRegistry

#: The required keys of a provenance block.
PROVENANCE_KEYS = ("code_version", "config_fingerprint", "executor", "relation_hash")

#: Execution paths a result can be stamped with: ``inline`` (a bare session
#: call, and the build-time default), ``thread``/``process`` (stamped by the
#: serving layer's job queue with its executor's name).
PROVENANCE_EXECUTORS = ("inline", "thread", "process")


class ProvenanceError(ValueError):
    """Raised when a result's provenance chain fails verification."""


def build_provenance(
    relation_hash: str | None,
    config_fingerprint: str,
    executor: str = "inline",
) -> dict[str, Any]:
    """A fresh provenance block (``relation_hash=None`` = subject unhashed)."""
    if relation_hash is not None and not is_relation_hash(relation_hash):
        raise ProvenanceError(f"not a relation content hash: {relation_hash!r}")
    if executor not in PROVENANCE_EXECUTORS:
        raise ProvenanceError(
            f"unknown executor {executor!r}: expected one of {PROVENANCE_EXECUTORS}"
        )
    return {
        "code_version": __version__,
        "config_fingerprint": config_fingerprint,
        "executor": executor,
        "relation_hash": relation_hash,
    }


def verify_provenance(
    result: "Any", registry: "RelationRegistry | None" = None
) -> dict[str, Any]:
    """Re-check a result's provenance chain; returns a verification report.

    ``result`` is a :class:`~repro.session.RunResult` or a raw
    ``repro/run-result-v1`` payload.  Always verified: the block is present
    and complete, the executor is known, and the configuration fingerprint
    agrees with **both** the recorded ``engine.config_fingerprint`` and a
    recomputation from ``engine.config`` (a tampered config cannot keep its
    fingerprint).  With a ``registry``, additionally: the stamped
    ``relation_hash`` resolves (an unknown hash raises
    :class:`ProvenanceError`; a corrupt entry propagates the store's
    :class:`~repro.registry.store.IntegrityError`), the stored relation
    re-hashes to its address, and its name matches the result's subject for
    single-relation kinds.

    The report carries the verified fields plus
    ``code_version_matches_current`` (informational — replaying an artefact
    from an older code version is legitimate) and ``relation_verified``.
    """
    payload = getattr(result, "payload", result)
    if not isinstance(payload, Mapping):
        raise ProvenanceError(
            f"expected a RunResult or result payload, got {type(result).__name__}"
        )
    block = payload.get("provenance")
    if not isinstance(block, Mapping):
        raise ProvenanceError("result carries no provenance block")
    missing = [key for key in PROVENANCE_KEYS if key not in block]
    if missing:
        raise ProvenanceError(f"provenance block is missing {missing}")
    executor = block["executor"]
    if executor not in PROVENANCE_EXECUTORS:
        raise ProvenanceError(
            f"unknown executor {executor!r}: expected one of {PROVENANCE_EXECUTORS}"
        )
    code_version = block["code_version"]
    if not isinstance(code_version, str) or not code_version:
        raise ProvenanceError(f"invalid code_version {code_version!r}")

    engine = payload.get("engine")
    if not isinstance(engine, Mapping):
        raise ProvenanceError("result carries no engine block to verify against")
    fingerprint = block["config_fingerprint"]
    recorded = engine.get("config_fingerprint")
    try:
        recomputed = EngineConfig.from_dict(engine.get("config") or {}).fingerprint()
    except ConfigError as exc:
        raise ProvenanceError(f"engine.config does not parse: {exc}") from exc
    if fingerprint != recorded or fingerprint != recomputed:
        raise ProvenanceError(
            f"config fingerprint mismatch: provenance says {fingerprint!r}, "
            f"engine block says {recorded!r}, recomputed {recomputed!r}"
        )

    relation_hash = block["relation_hash"]
    if relation_hash is not None and not is_relation_hash(relation_hash):
        raise ProvenanceError(f"not a relation content hash: {relation_hash!r}")
    relation_verified = False
    if registry is not None:
        if relation_hash is None:
            raise ProvenanceError(
                "result carries no relation hash to check against the registry"
            )
        try:
            relation = registry.get(relation_hash)
        except KeyError:
            raise ProvenanceError(
                f"relation {relation_hash} is not in the registry"
            ) from None
        if relation.content_hash() != relation_hash:  # pragma: no cover - get() verifies
            raise ProvenanceError(f"registry returned wrong bytes for {relation_hash}")
        if payload.get("kind") in ("discover", "validate", "profile"):
            subject = payload.get("subject")
            if relation.name != subject:
                raise ProvenanceError(
                    f"relation {relation_hash} is named {relation.name!r} but the "
                    f"result's subject is {subject!r}"
                )
        relation_verified = True
    return {
        "code_version": code_version,
        "code_version_matches_current": code_version == __version__,
        "config_fingerprint": fingerprint,
        "executor": executor,
        "relation_hash": relation_hash,
        "relation_verified": relation_verified,
    }
