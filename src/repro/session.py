"""`repro.Session` — the first-class engine/configuration API.

Historically every algorithm of the reproduction had its own ad-hoc entry
point (``TANE().discover(...)``, ``approximate_fds(...)``,
``InFine().run(...)``) and every tuning knob was a process-wide environment
variable.  :class:`Session` replaces that with one explicit, embeddable
context object:

* a session owns an :class:`~repro.config.EngineConfig` (backend choice with
  the per-relation small-input override, cache budgets, validation batching
  knobs), the relation-scoped kernel caches, and its own kernel counters —
  two concurrent sessions share nothing;
* every workload goes through one verb — :meth:`Session.discover` (exact
  FDs), :meth:`Session.validate` (check specific FDs),
  :meth:`Session.profile` (approximate FDs) and :meth:`Session.infine`
  (provenance-aware view discovery) — and returns a unified, JSON-native
  :class:`RunResult` that records the artefacts, run statistics, backend
  provenance and the configuration fingerprint, and round-trips through
  :meth:`RunResult.save`/:meth:`RunResult.load` byte-identically;
* environment variables remain *defaults* (parsed by
  :meth:`EngineConfig.from_env`); an explicit ``Session(config=...)`` or
  constructor/per-call keyword overrides always win.

A lazy module-level :func:`default_session` preserves the old one-liner
ergonomics: the classic entry points keep working unchanged (they now run
against the default session's engine state), and the module-level
:func:`discover`/:func:`validate`/:func:`profile`/:func:`infine` shims
delegate to it.
"""

from __future__ import annotations

import hashlib
import json
import threading
import time
from collections import OrderedDict
from pathlib import Path
from typing import Any, Iterable, Mapping, Sequence

from .config import EngineConfig
from .registry.hashing import catalog_content_hash
from .registry.provenance import PROVENANCE_KEYS, build_provenance
from .registry.store import atomic_write_text
from .discovery.base import DiscoveryResult, FDDiscoveryAlgorithm
from .discovery.registry import make_algorithm
from .fd.approximate import approximate_fds
from .fd.fd import FD
from .fd.fdset import FDSet
from .infine.engine import InFine, InFineResult
from .relational.backend import (
    EngineState,
    activate_state,
    get_backend,
    get_default_state,
    render_kernel_stats,
)
from .relational.partition import (
    PartitionCache,
    make_partition_cache,
    validate_level,
    validate_level_errors,
)
from .relational.relation import Relation
from .relational.view import ViewSpec

#: Schema tag of the :class:`RunResult` serialisation format.
RUN_RESULT_SCHEMA = "repro/run-result-v1"


def _fd_records(fds: Iterable[FD]) -> list[dict[str, Any]]:
    """FDs as JSON-native records, deterministically sorted."""
    return [
        {"lhs": sorted(dependency.lhs), "rhs": dependency.rhs}
        for dependency in sorted(fds, key=FD.sort_key)
    ]


def _parse_fd(item: "FD | str | tuple") -> FD:
    """Coerce an FD given as an :class:`FD`, ``"a,b -> c"`` or ``(lhs, rhs)``."""
    if isinstance(item, FD):
        return item
    if isinstance(item, str):
        return FD.parse(item)
    lhs, rhs = item
    return FD(lhs, rhs)


class RunResult:
    """The unified, JSON-serialisable outcome of one session run.

    A thin wrapper around a canonical JSON-native payload with typed
    accessors.  The payload always carries:

    ``kind``
        ``discover`` / ``validate`` / ``profile`` / ``infine``.
    ``artifacts``
        The deterministic outputs (always including ``fds``); byte-identical
        across backends and across equivalent configurations.
    ``stats``
        Volatile run bookkeeping (runtimes, cache counters).
    ``engine``
        The resolved backend name, the full configuration and its
        fingerprint.
    ``provenance``
        The provenance chain: ``{relation_hash, config_fingerprint,
        code_version, executor}`` — which data (by content hash), engine
        settings, code version and execution path produced the artefacts.
        Verified end-to-end by :func:`repro.registry.verify_provenance`.

    ``save``/``load`` round-trip byte-identically: the canonical rendering
    (sorted keys, fixed indentation) is decided at serialisation time, so a
    loaded result re-saves to the exact same bytes.
    """

    __slots__ = ("payload",)

    def __init__(self, payload: Mapping[str, Any]) -> None:
        if payload.get("schema") != RUN_RESULT_SCHEMA:
            raise ValueError(
                f"not a RunResult payload (schema={payload.get('schema')!r}, "
                f"expected {RUN_RESULT_SCHEMA!r})"
            )
        # Normalising through JSON makes the in-memory payload identical to
        # its serialised form (tuples become lists, keys become strings), so
        # save() -> load() -> save() is byte-stable by construction.
        self.payload: dict[str, Any] = json.loads(json.dumps(payload, sort_keys=True))

    # -- typed accessors ------------------------------------------------------
    @property
    def kind(self) -> str:
        """The session verb that produced this result."""
        return self.payload["kind"]

    @property
    def algorithm(self) -> str:
        """Name of the algorithm (or base algorithm, for InFine) used."""
        return self.payload["algorithm"]

    @property
    def subject(self) -> str:
        """Name of the relation (or description of the view) profiled."""
        return self.payload["subject"]

    @property
    def attributes(self) -> tuple[str, ...]:
        """The attributes the run was restricted to."""
        return tuple(self.payload["attributes"])

    @property
    def artifacts(self) -> dict[str, Any]:
        """The deterministic outputs of the run."""
        return self.payload["artifacts"]

    @property
    def stats(self) -> dict[str, Any]:
        """Volatile run statistics (runtimes, counters)."""
        return self.payload["stats"]

    @property
    def backend(self) -> str:
        """The partition backend the run resolved to."""
        return self.payload["engine"]["backend"]

    @property
    def config(self) -> EngineConfig:
        """The engine configuration the run executed under."""
        raw = dict(self.payload["engine"]["config"])
        return EngineConfig(**raw)

    @property
    def config_fingerprint(self) -> str:
        """Short content hash of the engine configuration."""
        return self.payload["engine"]["config_fingerprint"]

    @property
    def provenance(self) -> dict[str, Any] | None:
        """The provenance block (``None`` on pre-provenance payloads)."""
        return self.payload.get("provenance")

    @property
    def fds(self) -> FDSet:
        """The FDs of the run (holding/discovered), as an :class:`FDSet`."""
        return FDSet(
            FD(record["lhs"], record["rhs"]) for record in self.artifacts["fds"]
        )

    def __len__(self) -> int:
        return len(self.artifacts["fds"])

    def __repr__(self) -> str:
        return (
            f"RunResult(kind={self.kind!r}, subject={self.subject!r}, "
            f"fds={len(self)}, backend={self.backend!r})"
        )

    # -- serialisation --------------------------------------------------------
    def to_json(self) -> str:
        """The canonical JSON rendering (stable key order, trailing newline)."""
        return json.dumps(self.payload, sort_keys=True, indent=2, ensure_ascii=False) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "RunResult":
        """Parse a result from its canonical JSON rendering."""
        return cls(json.loads(text))

    def save(self, path: "str | Path") -> Path:
        """Write the canonical JSON rendering to ``path``; returns the path.

        Atomic (tmp file + fsync + rename): a crash mid-save leaves either
        the previous artefact or the complete new one, never truncated bytes
        (at worst a ``.tmp`` leftover next to it).
        """
        return atomic_write_text(path, self.to_json())

    @classmethod
    def load(cls, path: "str | Path") -> "RunResult":
        """Load a result previously written by :meth:`save`."""
        return cls.from_json(Path(path).read_text(encoding="utf-8"))

    def artifact_fingerprint(self) -> str:
        """Content hash of the deterministic outputs only.

        Excludes ``stats`` and ``engine``, so two runs of the same workload
        under different (but semantics-preserving) configurations — python
        vs numpy backend, batched vs scalar validation, any cache budget —
        produce the **same** fingerprint.
        """
        core = {
            "kind": self.kind,
            "algorithm": self.algorithm,
            "subject": self.subject,
            "attributes": list(self.attributes),
            "artifacts": self.artifacts,
        }
        canonical = json.dumps(core, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode("utf-8")).hexdigest()

    def with_provenance(self, **fields: Any) -> "RunResult":
        """A copy with ``fields`` merged into the provenance block.

        Used by the serving layer to stamp the executor a job actually ran
        on; returns ``self`` unchanged when nothing would change.  Artefacts
        and the artifact fingerprint are untouched by construction.
        """
        unknown = set(fields) - set(PROVENANCE_KEYS)
        if unknown:
            raise ValueError(f"unknown provenance fields: {sorted(unknown)}")
        current = self.payload.get("provenance") or {}
        if all(current.get(key) == value for key, value in fields.items()):
            return self
        payload = dict(self.payload)
        payload["provenance"] = {**current, **fields}
        # The payload is already JSON-normalised and the merge only replaces
        # scalar values, so the __init__ round-trip can be skipped.
        result = object.__new__(RunResult)
        result.payload = payload
        return result

    # -- builders -------------------------------------------------------------
    @classmethod
    def _build(
        cls,
        kind: str,
        algorithm: str,
        subject: str,
        attributes: Sequence[str],
        artifacts: dict[str, Any],
        stats: dict[str, Any],
        config: EngineConfig,
        backend: str,
        relation_hash: str | None = None,
    ) -> "RunResult":
        return cls(
            {
                "schema": RUN_RESULT_SCHEMA,
                "kind": kind,
                "algorithm": algorithm,
                "subject": subject,
                "attributes": list(attributes),
                "artifacts": artifacts,
                "stats": stats,
                "engine": {
                    "backend": backend,
                    "config": config.as_dict(),
                    "config_fingerprint": config.fingerprint(),
                },
                # "inline" = a bare session call; the serving layer re-stamps
                # the executor a job actually ran on via with_provenance().
                "provenance": build_provenance(relation_hash, config.fingerprint()),
            }
        )

    @classmethod
    def from_discovery(
        cls,
        result: DiscoveryResult,
        config: EngineConfig,
        relation_hash: str | None = None,
    ) -> "RunResult":
        """Wrap a classic :class:`DiscoveryResult`."""
        stats = result.stats
        backend = stats.extra.get("partition_backend", get_backend().name)
        return cls._build(
            kind="discover",
            algorithm=result.algorithm,
            subject=result.relation_name,
            attributes=result.attributes,
            artifacts={"fds": _fd_records(result.fds)},
            stats={
                "candidates_checked": stats.candidates_checked,
                "validations": stats.validations,
                "levels": stats.levels,
                "sampled_pairs": stats.sampled_pairs,
                "runtime_seconds": stats.runtime_seconds,
                "extra": stats.extra,
            },
            config=config,
            backend=backend,
            relation_hash=relation_hash,
        )

    @classmethod
    def from_infine(
        cls,
        result: InFineResult,
        algorithm: str,
        config: EngineConfig,
        backend: str,
        relation_hash: str | None = None,
    ) -> "RunResult":
        """Wrap an :class:`InFineResult` (provenance triples and breakdowns)."""
        stats = result.stats
        return cls._build(
            kind="infine",
            algorithm=algorithm,
            subject=result.view.describe(),
            attributes=result.attributes,
            artifacts={
                "fds": _fd_records(result.fds),
                "provenance": result.provenance.to_records(),
                "count_by_step": result.count_by_step(),
                "count_by_type": {
                    fd_type.value: count
                    for fd_type, count in result.count_by_type().items()
                },
            },
            stats={
                "timings": result.timings.as_dict(),
                "base_fd_counts": stats.base_fd_counts,
                "upstage_candidates_checked": stats.upstage_candidates_checked,
                "infer_candidates_checked": stats.infer_candidates_checked,
                "mine_candidates_validated": stats.mine_candidates_validated,
                "mine_candidates_pruned_logically": stats.mine_candidates_pruned_logically,
                "partial_join_rows": stats.partial_join_rows,
                "partial_joins_materialised": stats.partial_joins_materialised,
                "raw_inferred": stats.raw_inferred,
            },
            config=config,
            backend=backend,
            relation_hash=relation_hash,
        )


class Session:
    """An explicit engine context: configuration, caches and counters.

    Parameters
    ----------
    config:
        The engine configuration (default: :meth:`EngineConfig.from_env`,
        i.e. the environment-variable defaults).
    **overrides:
        Keyword overrides applied on top of ``config`` (see
        :class:`~repro.config.EngineConfig` for the available fields), e.g.
        ``Session(backend="python", marks_cache_bytes=1 << 20)``.

    A session can be used as a context manager (``with Session() as s: ...``)
    or activated explicitly around arbitrary legacy code::

        with session.activate():
            TANE().discover(relation)   # runs on the session's engine state

    Two sessions never share kernel caches or counters; relation-scoped
    caches die with the session (or with the relation, whichever first).
    """

    #: Cap on memoised per-call-override states (each holds its own relation
    #: caches); least recently used are dropped beyond this.
    _MAX_DERIVED_STATES = 8

    def __init__(self, config: EngineConfig | None = None, **overrides) -> None:
        if config is None:
            config = EngineConfig.from_env()
        config = config.replace(**overrides)
        self._state = EngineState(config)
        self._derived_states: "OrderedDict[EngineConfig, EngineState]" = OrderedDict()
        self._local = threading.local()

    @classmethod
    def _from_state(cls, state: EngineState) -> "Session":
        session = object.__new__(cls)
        session._state = state
        session._derived_states = OrderedDict()
        session._local = threading.local()
        return session

    # -- state plumbing -------------------------------------------------------
    @property
    def config(self) -> EngineConfig:
        """The session's engine configuration."""
        return self._state.config

    @property
    def state(self) -> EngineState:
        """The resolved engine state (backend policy, caches, counters)."""
        return self._state

    @property
    def counters(self):
        """The session-scoped kernel counters."""
        return self._state.counters

    def activate(self):
        """Context manager installing this session's engine state."""
        return activate_state(self._state)

    def __enter__(self) -> "Session":
        activation = self.activate()
        activation.__enter__()
        # A thread-local stack: nested ``with session:`` blocks unwind
        # correctly and two threads sharing one session never pop each
        # other's contextvar tokens.
        stack = getattr(self._local, "activations", None)
        if stack is None:
            stack = self._local.activations = []
        stack.append(activation)
        return self

    def __exit__(self, *exc_info) -> None:
        activation = self._local.activations.pop()
        activation.__exit__(*exc_info)

    def _call_state(self, overrides: Mapping[str, Any]) -> EngineState:
        """The engine state of one call: the session's, or a derived one.

        Per-call overrides derive a throwaway state that *shares the
        session's counters* (so ``--kernel-stats``-style accounting stays
        whole) but resolves backend/budgets from the overridden config —
        the topmost layer of the precedence chain
        ``env var < EngineConfig kwarg < per-call override``.
        """
        if not overrides:
            return self._state
        derived = self.config.replace(**overrides)
        if derived is self.config or derived == self.config:
            return self._state
        # Derived states are memoised per configuration (bounded LRU), so
        # repeated calls with the same overrides keep their relation caches
        # warm without accumulating one cache hierarchy per distinct sweep
        # value.
        state = self._derived_states.get(derived)
        if state is None:
            state = EngineState(derived, counters=self._state.counters)
            self._derived_states[derived] = state
            while len(self._derived_states) > self._MAX_DERIVED_STATES:
                self._derived_states.popitem(last=False)
        else:
            self._derived_states.move_to_end(derived)
        return state

    def partition_cache(
        self, relation: Relation, state: EngineState | None = None
    ) -> PartitionCache:
        """The session-owned :class:`PartitionCache` of ``relation``.

        Reused across :meth:`validate` calls on the same relation, so
        repeated validations amortise their partition builds; budgeted by
        ``EngineConfig.partition_cache_max_positions``.  The cache lives on
        the engine state's relation-cache entry, sharing its lifecycle
        (dropped with the session or the relation, whichever goes first).
        """
        if state is None:
            state = self._state
        entry = state.caches_for(relation)
        if entry.partitions is None:
            with activate_state(state):
                entry.partitions = make_partition_cache(relation)
        return entry.partitions

    # -- diagnostics ----------------------------------------------------------
    def kernel_stats(self) -> dict[str, object]:
        """The session's backend name plus its kernel cache counters.

        ``shard_timings`` carries the per-shard sort seconds of the most
        recent sharded grouping (empty when the sharded path never ran).
        """
        return {
            "backend": self._state.backend_for().name,
            **self._state.counters.snapshot(),
            "shard_timings": [
                round(seconds, 6)
                for seconds in self._state.counters.last_shard_timings
            ],
        }

    def render_kernel_stats(self) -> str:
        """Human-readable block of :meth:`kernel_stats` (CLI ``--kernel-stats``)."""
        return render_kernel_stats(self._state)

    def reset_counters(self) -> None:
        """Zero the session's kernel counters."""
        self._state.reset_counters()

    def close(self) -> None:
        """Drop every cache held by the session (the session stays usable)."""
        self._state.drop_caches()
        for state in self._derived_states.values():
            state.drop_caches()
        self._derived_states.clear()

    def __repr__(self) -> str:
        return (
            f"Session(backend={self.config.backend!r}, "
            f"fingerprint={self.config.fingerprint()})"
        )

    # -- verbs ----------------------------------------------------------------
    def discover(
        self,
        relation: Relation,
        algorithm: "str | FDDiscoveryAlgorithm" = "tane",
        attributes: Sequence[str] | None = None,
        *,
        max_lhs_size: int | None = None,
        **overrides,
    ) -> RunResult:
        """Discover all minimal exact FDs of ``relation``.

        ``algorithm`` is a registry name (``tane``/``fun``/``fastfds``/
        ``hyfd``/``naive``/``tane-approximate``) or an algorithm instance;
        ``**overrides`` are per-call :class:`EngineConfig` field overrides
        (e.g. ``backend="python"``).
        """
        if isinstance(algorithm, str):
            kwargs = {"max_lhs_size": max_lhs_size} if max_lhs_size is not None else {}
            algorithm = make_algorithm(algorithm, **kwargs)
        elif max_lhs_size is not None:
            raise ValueError(
                "max_lhs_size only applies when `algorithm` is a registry name; "
                "configure the algorithm instance directly instead"
            )
        state = self._call_state(overrides)
        with activate_state(state):
            result = algorithm.discover(relation, attributes)
        return RunResult.from_discovery(
            result, state.config, relation_hash=relation.content_hash()
        )

    def validate(
        self,
        relation: Relation,
        fds: Iterable["FD | str | tuple"],
        *,
        with_errors: bool = True,
        **overrides,
    ) -> RunResult:
        """Check whether specific FDs hold on ``relation``.

        ``fds`` accepts :class:`FD` objects, ``"a,b -> c"`` strings or
        ``(lhs, rhs)`` tuples.  The result's ``artifacts`` carry one record
        per input FD (``holds`` plus, with ``with_errors``, its ``g3``
        violation fraction) and ``fds`` lists the holding subset.  Checks
        are validated as one batched lattice pass per shared LHS partition,
        served from the session-owned partition cache of the relation.
        """
        parsed = [_parse_fd(item) for item in fds]
        state = self._call_state(overrides)
        cache = self.partition_cache(relation, state)
        started = time.perf_counter()
        with activate_state(state):
            batch = [(cache.get(dependency.lhs), dependency.rhs) for dependency in parsed]
            if with_errors:
                # One g3 pass answers both questions: an FD holds exactly
                # when its violation fraction is zero (the kernel's batched
                # entry points are pinned to agree on this).
                errors = validate_level_errors(relation, batch)
                verdicts = [error == 0.0 for error in errors]
            else:
                verdicts = validate_level(relation, batch)
                errors = [None] * len(parsed)
        runtime = time.perf_counter() - started
        checks = []
        for dependency, holds, error in zip(parsed, verdicts, errors):
            record: dict[str, Any] = {
                "lhs": sorted(dependency.lhs),
                "rhs": dependency.rhs,
                "holds": bool(holds),
            }
            if error is not None:
                record["g3"] = error
            checks.append(record)
        return RunResult._build(
            kind="validate",
            algorithm="partition-kernel",
            subject=relation.name,
            attributes=relation.attribute_names,
            artifacts={
                "checks": checks,
                "fds": _fd_records(
                    dependency for dependency, holds in zip(parsed, verdicts) if holds
                ),
            },
            stats={
                "candidates_checked": len(parsed),
                "runtime_seconds": runtime,
                "partition_cache": cache.stats.as_dict(),
            },
            config=state.config,
            backend=state.backend_for(len(relation)).name,
            relation_hash=relation.content_hash(),
        )

    def profile(
        self,
        relation: Relation,
        threshold: float = 0.05,
        max_lhs: int = 2,
        attributes: Iterable[str] | None = None,
        **overrides,
    ) -> RunResult:
        """Enumerate minimal approximate FDs with g3 error in ``(0, threshold]``.

        The session-verb form of :func:`repro.fd.approximate.approximate_fds`;
        the result's ``artifacts`` carry each AFD with its g3 error, and
        ``fds`` lists the dependencies themselves.
        """
        state = self._call_state(overrides)
        started = time.perf_counter()
        with activate_state(state):
            afds = approximate_fds(relation, threshold, max_lhs, attributes)
        runtime = time.perf_counter() - started
        return RunResult._build(
            kind="profile",
            algorithm="afd-g3",
            subject=relation.name,
            attributes=(
                tuple(attributes) if attributes is not None else relation.attribute_names
            ),
            artifacts={
                "threshold": threshold,
                "max_lhs": max_lhs,
                "afds": [
                    {
                        "lhs": sorted(afd.dependency.lhs),
                        "rhs": afd.dependency.rhs,
                        "g3": afd.error,
                    }
                    for afd in afds
                ],
                "fds": _fd_records(afd.dependency for afd in afds),
            },
            stats={"runtime_seconds": runtime},
            config=state.config,
            backend=state.backend_for(len(relation)).name,
            relation_hash=relation.content_hash(),
        )

    def infine(
        self,
        view: ViewSpec,
        catalog: Mapping[str, Relation],
        algorithm: "str | FDDiscoveryAlgorithm" = "tane",
        *,
        max_lhs_size: int | None = None,
        use_theorem4: bool = True,
        refine_inferred: bool = True,
        **overrides,
    ) -> RunResult:
        """Run the InFine pipeline on an SPJ view under this session.

        Returns the provenance triples, per-step timings and run counters as
        a :class:`RunResult`; ``fds`` are the minimal FDs of the view.
        """
        engine = InFine(
            base_algorithm=algorithm,
            max_lhs_size=max_lhs_size,
            use_theorem4=use_theorem4,
            refine_inferred=refine_inferred,
        )
        state = self._call_state(overrides)
        with activate_state(state):
            result = engine.run(view, catalog)
        return RunResult.from_infine(
            result,
            algorithm=engine.base_algorithm.name,
            config=state.config,
            backend=state.backend_for().name,
            relation_hash=catalog_content_hash(catalog),
        )


# ---------------------------------------------------------------------------
# The module-level default session (one-liner ergonomics + legacy shims).
# ---------------------------------------------------------------------------

_DEFAULT_SESSION: Session | None = None

#: Guards the lazy construction of the default session: concurrent first
#: calls from multiple threads (serving workers, test parallelism) must all
#: receive the same instance.
_DEFAULT_SESSION_LOCK = threading.Lock()


def default_session() -> Session:
    """The lazy module-level session wrapping the default engine state.

    This is the state every classic entry point (``TANE().discover``,
    ``InFine().run``, ``approximate_fds``) runs on when no explicit session
    is active, so its counters/caches and theirs are one and the same.
    Thread-safe: concurrent callers observe a single shared instance (per
    default engine state — resetting the state via ``set_backend(None)``
    derives a fresh session on the next call).
    """
    global _DEFAULT_SESSION
    state = get_default_state()
    session = _DEFAULT_SESSION
    if session is None or session._state is not state:
        with _DEFAULT_SESSION_LOCK:
            session = _DEFAULT_SESSION
            if session is None or session._state is not state:
                session = _DEFAULT_SESSION = Session._from_state(state)
    return session


def discover(
    relation: Relation,
    algorithm: "str | FDDiscoveryAlgorithm" = "tane",
    attributes: Sequence[str] | None = None,
    **opts,
) -> RunResult:
    """:meth:`Session.discover` on the default session."""
    return default_session().discover(relation, algorithm, attributes, **opts)


def validate(relation: Relation, fds: Iterable["FD | str | tuple"], **opts) -> RunResult:
    """:meth:`Session.validate` on the default session."""
    return default_session().validate(relation, fds, **opts)


def profile(relation: Relation, threshold: float = 0.05, **opts) -> RunResult:
    """:meth:`Session.profile` on the default session."""
    return default_session().profile(relation, threshold, **opts)


def infine(view: ViewSpec, catalog: Mapping[str, Relation], **opts) -> RunResult:
    """:meth:`Session.infine` on the default session."""
    return default_session().infine(view, catalog, **opts)
