"""The parent-owned shared-memory segment manager.

A :class:`SharedRelationPlane` publishes registry-resident relations as
``/dev/shm`` segments (one per content hash) and leases them to in-flight
jobs.  Ownership is strictly parental:

* **publish** is idempotent by content hash — the first publish encodes and
  writes the segment, every later one just refreshes its LRU position;
* **acquire/release** bracket each job execution attempt that was told the
  segment name, so eviction never unlinks a segment a job is about to
  attach (POSIX keeps already-mapped segments valid after unlink, so the
  refcount protects the *attach-by-name* window, not the mapped memory);
* an **LRU byte budget** (``REPRO_SHM_BYTES``) evicts idle segments —
  refcount zero, least recently used first — before a new publish;
* **close** unlinks everything immediately (drain-time attaches simply fall
  back to the wire), and **cleanup_orphans** sweeps segments left behind by
  crashed parents at startup, identified by the dead owner pid embedded in
  the segment name (``repro_{pid}_{hash16}``).

Fault-injection sites (literals duplicated from :mod:`repro.serve.faults`
so this package never imports the serving layer): ``shm.attach`` fires on
every lease decision — a raising rule forces that job onto the wire path —
and ``shm.evict`` fires per eviction victim — a raising rule aborts the
sweep (the budget overrun is retried on the next publish).
"""

from __future__ import annotations

import os
import threading
from collections import OrderedDict
from pathlib import Path
from typing import TYPE_CHECKING, Any

from .segment import SegmentFormatError, encode_segment, write_segment

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..relational.relation import Relation
    from ..serve.faults import FaultPlan

#: Fault-injection site names (duplicated from ``repro.serve.faults``).
SITE_SHM_ATTACH = "shm.attach"
SITE_SHM_EVICT = "shm.evict"

#: Segment names look like ``repro_{owner_pid}_{hash16}`` — the prefix is
#: what the CI leak check greps for, the pid is what orphan cleanup parses.
SEGMENT_NAME_PREFIX = "repro"

#: Where POSIX shared memory appears as files (Linux); orphan cleanup is a
#: no-op on hosts without it.
_SHM_DIR = "/dev/shm"


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - foreign-user process
        return True
    except OSError:  # pragma: no cover - conservative: assume alive
        return True
    return True


def plane_available() -> bool:
    """Whether this host can run the shared-memory plane at all.

    Needs ``multiprocessing.shared_memory`` (absent on some minimal
    platforms) and numpy (the attach path is a zero-copy ``np.frombuffer``
    view; without numpy the wire path is used instead).
    """
    try:
        import multiprocessing.shared_memory  # noqa: F401
        import numpy  # noqa: F401
    except ImportError:
        return False
    return True


class _Segment:
    __slots__ = ("name", "content_hash", "size", "shm", "refcount")

    def __init__(self, name: str, content_hash: str, size: int, shm) -> None:
        self.name = name
        self.content_hash = content_hash
        self.size = size
        self.shm = shm
        self.refcount = 0


class SharedRelationPlane:
    """Parent-side segment manager: publish, lease, evict, unlink.

    Thread-safe (the job queue's worker threads acquire/release
    concurrently); fault hooks fire outside the lock so ``delay`` rules
    never serialise the plane.
    """

    def __init__(self, budget_bytes: int, faults: "FaultPlan | None" = None) -> None:
        if budget_bytes < 1:
            raise ValueError(f"budget_bytes must be positive, got {budget_bytes}")
        self._budget = budget_bytes
        self._faults = faults
        self._lock = threading.Lock()
        self._segments: "OrderedDict[str, _Segment]" = OrderedDict()
        self._bytes = 0
        self._closed = False
        self._counters = {
            "published": 0,
            "publish_declined": 0,
            "leases": 0,
            "lease_misses": 0,
            "attach_faults": 0,
            "evictions": 0,
            "evict_faults": 0,
            "orphans_removed": 0,
        }
        # Startup sweep: a crashed previous run (SIGKILL, OOM) cannot have
        # unlinked its segments; reclaim them before publishing new ones.
        self._counters["orphans_removed"] = len(self.cleanup_orphans())

    # -- lifecycle -------------------------------------------------------------
    @classmethod
    def cleanup_orphans(cls) -> "list[str]":
        """Unlink segments whose owner process is gone; returns their names.

        POSIX shared memory survives process death — a SIGKILLed server
        leaks its segments until *something* removes them.  Every plane
        sweeps at construction: ``repro_{pid}_{hash16}`` entries under
        ``/dev/shm`` whose pid no longer runs are unlinked directly (on
        tmpfs, ``shm_unlink`` is a plain file unlink — no attach needed).
        """
        removed: list[str] = []
        base = Path(_SHM_DIR)
        if not base.is_dir():  # pragma: no cover - non-Linux host
            return removed
        for path in base.glob(SEGMENT_NAME_PREFIX + "_*"):
            parts = path.name.split("_")
            if len(parts) != 3 or not parts[1].isdigit():
                continue
            pid = int(parts[1])
            if pid == os.getpid() or _pid_alive(pid):
                continue
            try:
                path.unlink()
            except OSError:  # pragma: no cover - raced with another sweeper
                continue
            removed.append(path.name)
        return removed

    def close(self) -> None:
        """Unlink every segment now.

        Safe while jobs are draining: workers that already mapped a segment
        keep valid views (POSIX), and a worker that loses the attach-by-name
        race falls back to the wire path of its payload.
        """
        with self._lock:
            self._closed = True
            segments = list(self._segments.values())
            self._segments.clear()
            self._bytes = 0
        for segment in segments:
            self._destroy(segment)

    @staticmethod
    def _destroy(segment: _Segment) -> None:
        try:
            segment.shm.close()
        except BufferError:  # pragma: no cover - parent holds no views
            pass
        try:
            segment.shm.unlink()
        except FileNotFoundError:  # pragma: no cover - raced with cleanup
            pass

    # -- publish ---------------------------------------------------------------
    def publish(self, relation: "Relation") -> "str | None":
        """Materialise ``relation`` as a segment; returns its content hash.

        Idempotent per content hash.  Returns ``None`` when the plane
        declines: closed, the relation is not segment-representable
        (non-scalar values), it exceeds the whole budget, or eviction could
        not free enough bytes (everything resident is leased or an
        ``shm.evict`` fault aborted the sweep).  Declining is never an
        error — the job travels the wire instead.
        """
        content_hash = relation.content_hash()
        with self._lock:
            if self._closed:
                return None
            existing = self._segments.get(content_hash)
            if existing is not None:
                self._segments.move_to_end(content_hash)
                return content_hash
        try:
            header_bytes, arrays, total = encode_segment(relation)
        except SegmentFormatError:
            with self._lock:
                self._counters["publish_declined"] += 1
            return None
        if total > self._budget:
            with self._lock:
                self._counters["publish_declined"] += 1
            return None
        if not self._evict_to(self._budget - total):
            with self._lock:
                self._counters["publish_declined"] += 1
            return None
        from multiprocessing.shared_memory import SharedMemory

        name = f"{SEGMENT_NAME_PREFIX}_{os.getpid()}_{content_hash[:16]}"
        with self._lock:
            if self._closed:
                return None
            existing = self._segments.get(content_hash)
            if existing is not None:  # pragma: no cover - publish race
                self._segments.move_to_end(content_hash)
                return content_hash
            try:
                shm = SharedMemory(name=name, create=True, size=total)
            except FileExistsError:
                # A previous plane of this very process published the same
                # content and was closed without unlinking (crash-restart in
                # one interpreter, e.g. tests): reclaim the stale name.
                Path(_SHM_DIR, name).unlink(missing_ok=True)
                try:
                    shm = SharedMemory(name=name, create=True, size=total)
                except OSError:
                    self._counters["publish_declined"] += 1
                    return None
            except OSError:
                self._counters["publish_declined"] += 1
                return None
            write_segment(shm.buf, header_bytes, arrays, len(relation))
            self._segments[content_hash] = _Segment(name, content_hash, total, shm)
            self._bytes += total
            self._counters["published"] += 1
        return content_hash

    def _evict_to(self, target_bytes: int) -> bool:
        """Evict idle segments (LRU first) until at most ``target_bytes`` used.

        Returns whether the target was met.  The ``shm.evict`` fault fires
        per victim *outside* the lock; a raising rule re-inserts the victim
        and aborts the sweep.
        """
        while True:
            with self._lock:
                if self._bytes <= target_bytes:
                    return True
                victim = None
                for segment in self._segments.values():
                    if segment.refcount == 0:
                        victim = segment
                        break
                if victim is None:
                    return False
                del self._segments[victim.content_hash]
                self._bytes -= victim.size
            if self._faults is not None:
                try:
                    self._faults.fire(SITE_SHM_EVICT)
                except Exception:
                    with self._lock:
                        self._counters["evict_faults"] += 1
                        if not self._closed:
                            self._segments[victim.content_hash] = victim
                            self._segments.move_to_end(victim.content_hash, last=False)
                            self._bytes += victim.size
                            return False
                    self._destroy(victim)
                    return False
            self._destroy(victim)
            with self._lock:
                self._counters["evictions"] += 1

    # -- leases ----------------------------------------------------------------
    def acquire(self, content_hash: str) -> "dict[str, Any] | None":
        """Lease the segment of ``content_hash`` for one execution attempt.

        Returns the attach metadata shipped to the worker (``{"name",
        "hash"}``), or ``None`` when the segment is not resident (evicted
        since submit, or the plane closed) — the caller then uses the wire.
        The ``shm.attach`` fault fires first; a raising rule counts as an
        attach fault and the caller falls back.  Every successful acquire
        MUST be paired with exactly one :meth:`release` (the executor does
        so in a ``finally``, which is what reconciles refcounts when a
        worker dies mid-job).
        """
        if self._faults is not None:
            try:
                self._faults.fire(SITE_SHM_ATTACH)
            except Exception:
                with self._lock:
                    self._counters["attach_faults"] += 1
                return None
        with self._lock:
            segment = self._segments.get(content_hash)
            if segment is None or self._closed:
                self._counters["lease_misses"] += 1
                return None
            segment.refcount += 1
            self._segments.move_to_end(content_hash)
            self._counters["leases"] += 1
            return {"name": segment.name, "hash": content_hash}

    def release(self, content_hash: str) -> None:
        """Return a lease taken by :meth:`acquire` (idempotent past zero)."""
        with self._lock:
            segment = self._segments.get(content_hash)
            if segment is not None and segment.refcount > 0:
                segment.refcount -= 1

    # -- diagnostics -------------------------------------------------------------
    def segment_names(self) -> "list[str]":
        """The names of resident segments (test/diagnostic hook)."""
        with self._lock:
            return [segment.name for segment in self._segments.values()]

    def refcounts(self) -> "dict[str, int]":
        """Content hash -> live lease count (test/diagnostic hook)."""
        with self._lock:
            return {h: segment.refcount for h, segment in self._segments.items()}

    def stats(self) -> "dict[str, Any]":
        """The ``/stats`` block of the plane."""
        with self._lock:
            leased = sum(1 for segment in self._segments.values() if segment.refcount > 0)
            return {
                "enabled": True,
                "budget_bytes": self._budget,
                "bytes": self._bytes,
                "segments": len(self._segments),
                "leased_segments": leased,
                **self._counters,
            }
