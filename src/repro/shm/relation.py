"""Worker-side attach path: zero-copy relations over shared-memory segments.

:func:`attach_relation` maps a published segment and reconstructs a
:class:`SharedRelation` — a :class:`~repro.relational.relation.Relation`
whose column encodings are ``np.frombuffer`` views straight into the
segment (no copy of the code arrays, ever) and whose row tuples are decoded
lazily, only if something actually asks for raw rows.  The partition kernel
runs entirely on the cached encodings, so the common case never touches
rows at all.

Bit-compatibility: the codes in a segment *are* the parent's first-
appearance dense encodings, pre-seeded into the relation's encoding cache,
and the content hash is carried in the header — so a shm-attached relation
re-encodes, hashes and computes byte-for-byte like the pickled-path
instance it replaces (pinned by parity tests).

Attaching requires numpy (the whole point is the zero-copy view); hosts
without it raise :class:`~repro.shm.segment.SegmentFormatError` from
:func:`relation_from_segment` and the worker falls back to the wire path.

The resource-tracker caveat: before Python 3.13, attaching a segment by
name registers it with the process's ``resource_tracker``, which *unlinks*
it at interpreter exit — destroying a parent-owned segment other workers
still need.  :func:`attach_segment` passes ``track=False`` where supported
and unregisters manually elsewhere; ownership stays with the parent plane.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Any, Hashable

from ..relational.relation import Relation
from ..relational.schema import RelationSchema
from .segment import SegmentFormatError, read_header

#: Where POSIX shared memory appears as files (kept in sync with
#: ``repro.shm.plane``); hosts without it attach via ``SharedMemory``.
_SHM_DIR = "/dev/shm"


class SharedRelation(Relation):
    """A relation backed by a shared-memory segment (zero-copy codes).

    Construction pre-seeds the encoding cache with the segment's int64
    views and the content-hash cache with the header hash; ``_rows`` is a
    lazy property (shadowing the base-class slot) that decodes
    ``dictionary[code]`` row tuples only on first access.
    """

    __slots__ = ("_segment_columns", "_n_rows", "_lazy_rows")

    def __init__(
        self,
        name: str,
        attributes: "list[str]",
        columns: "dict[str, tuple[Any, int, list[Any]]]",
        n_rows: int,
        content_hash: str,
    ) -> None:
        # Deliberately does NOT call Relation.__init__: that would assign
        # the ``_rows`` slot this class replaces with a lazy property.
        self._name = name
        self._schema = RelationSchema(attributes)
        self._column_index_cache: dict[str, dict[Hashable, list[int]]] = {}
        self._column_codes_cache: dict[str, tuple[Any, int, list[int]]] = {}
        self._content_hash_cache = content_hash
        self._mark_cache = None
        self._segment_columns = columns
        self._n_rows = n_rows
        self._lazy_rows: "tuple[tuple[Any, ...], ...] | None" = None

    @property
    def _rows(self) -> "tuple[tuple[Any, ...], ...]":
        rows = self._lazy_rows
        if rows is None:
            decoded = []
            for attribute in self._schema.names:
                codes, _n_codes, dictionary = self._segment_columns[attribute]
                decoded.append([dictionary[code] for code in codes.tolist()])
            rows = tuple(zip(*decoded)) if decoded else ()
            self._lazy_rows = rows
        return rows

    def __len__(self) -> int:
        return self._n_rows

    def column_dictionary(self, attribute: str) -> "list[Any]":
        """The header dictionary — no row materialisation needed."""
        self._schema.index_of(attribute)
        return list(self._segment_columns[attribute][2])

    def _encode_column(self, attribute: str) -> "tuple[Any, int, list[int]]":
        cached = self._column_codes_cache.get(attribute)
        if cached is not None:
            return cached
        self._schema.index_of(attribute)
        import numpy as np

        codes, n_codes, _dictionary = self._segment_columns[attribute]
        counts = np.bincount(codes, minlength=n_codes).tolist()
        encoded = (codes, n_codes, counts)
        self._column_codes_cache[attribute] = encoded
        return encoded


class _MappedSegment:
    """A minimal attach-side mapping of ``/dev/shm/<name>`` (Linux).

    Used instead of :class:`~multiprocessing.shared_memory.SharedMemory`
    because attaching through that class *registers* the segment with the
    process-tree-wide resource tracker on Python < 3.13 — and the tracker
    then either unlinks a parent-owned segment at exit or double-unregisters
    it (the ``KeyError`` noise of bpo-39959).  A plain ``open`` + ``mmap``
    of the tmpfs file is the same mapping with no ownership claim at all.
    """

    __slots__ = ("name", "_mmap", "_buf")

    def __init__(self, name: str) -> None:
        import mmap

        fd = os.open(os.path.join(_SHM_DIR, name), os.O_RDWR)
        try:
            size = os.fstat(fd).st_size
            self._mmap = mmap.mmap(fd, size)
        finally:
            os.close(fd)
        self._buf: "memoryview | None" = memoryview(self._mmap)
        self.name = name

    @property
    def buf(self) -> memoryview:
        assert self._buf is not None
        return self._buf

    def close(self) -> None:
        try:
            if self._buf is not None:
                self._buf.release()
            if self._mmap is not None:
                self._mmap.close()
        except BufferError:
            # Exported numpy views keep the mmap object (and the mapping)
            # alive until they die; dropping our references is enough.
            pass
        finally:
            self._buf = None
            self._mmap = None


def attach_segment(name: str):
    """Attach an existing segment by name without claiming ownership.

    Returns a handle with ``.buf`` and ``.close()``; the caller closes it
    (never unlinks — the parent plane owns segment lifetimes).  On Linux
    this maps the tmpfs file directly (see :class:`_MappedSegment`); other
    hosts go through :class:`~multiprocessing.shared_memory.SharedMemory`
    with tracking disabled where the interpreter supports it.
    """
    if os.path.isdir(_SHM_DIR):
        return _MappedSegment(name)
    from multiprocessing.shared_memory import SharedMemory  # pragma: no cover

    try:  # pragma: no cover - non-Linux host
        return SharedMemory(name=name, track=False)  # Python >= 3.13
    except TypeError:  # pragma: no cover - Python < 3.13
        shm = SharedMemory(name=name)
        try:
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
        return shm


def relation_from_segment(buf, expected_hash: "str | None" = None) -> SharedRelation:
    """Reconstruct the relation stored in segment buffer ``buf`` (zero-copy).

    Verifies the header's content hash against ``expected_hash`` when given
    — a mismatch means the name was recycled for different content, which
    must fall back to the wire rather than silently compute on wrong data.
    """
    try:
        import numpy as np
    except ImportError as exc:  # pragma: no cover - numpy-less hosts
        raise SegmentFormatError("shared-memory attach requires numpy") from exc
    header, data_offset = read_header(buf)
    if expected_hash is not None and header.get("hash") != expected_hash:
        raise SegmentFormatError(
            f"segment holds relation {header.get('hash')!r}, expected {expected_hash!r}"
        )
    n_rows = header["n_rows"]
    stride = 8 * n_rows
    columns: dict[str, tuple[Any, int, list[Any]]] = {}
    for index, column in enumerate(header["columns"]):
        codes = np.frombuffer(
            buf, dtype=np.int64, count=n_rows, offset=data_offset + index * stride
        )
        columns[column["attribute"]] = (codes, column["n_codes"], column["dictionary"])
    return SharedRelation(
        header["name"], list(header["attributes"]), columns, n_rows, header["hash"]
    )


class SegmentAttachCache:
    """A worker-process cache of attached segments (name -> relation).

    Re-attaching per job would re-parse the header and rebuild the encoding
    views every time; keeping the handle keeps the relation object — and
    with it every engine cache keyed on relation identity — warm across
    jobs.  Bounded LRU: evicting closes the mapping unless numpy views are
    still exported (then the handle is simply dropped and the mapping lives
    until process exit — safe, bounded by the cache size).
    """

    def __init__(self, max_entries: int = 8) -> None:
        if max_entries < 1:
            raise ValueError(f"max_entries must be at least 1, got {max_entries}")
        self._max_entries = max_entries
        self._entries: "OrderedDict[str, tuple[Any, SharedRelation]]" = OrderedDict()
        self.attaches = 0
        self.hits = 0

    @staticmethod
    def _close_quietly(shm) -> None:
        try:
            shm.close()
        except BufferError:
            # Somebody still holds a numpy view into the mapping.  The
            # mapping must stay alive (the views keep the mmap object
            # referenced; it unmaps when the last view dies), but the
            # SharedMemory handle must not retry in __del__ — that prints
            # "Exception ignored" noise at interpreter exit.  Disarm it and
            # close the descriptor ourselves (mapped memory needs no fd).
            shm._buf = None
            shm._mmap = None
            fd = getattr(shm, "_fd", -1)
            if fd >= 0:
                try:
                    import os

                    os.close(fd)
                except OSError:
                    pass
                shm._fd = -1

    def get(self, name: str, expected_hash: "str | None" = None) -> SharedRelation:
        entry = self._entries.get(name)
        if entry is not None:
            self._entries.move_to_end(name)
            self.hits += 1
            return entry[1]
        shm = attach_segment(name)
        try:
            relation = relation_from_segment(shm.buf, expected_hash)
        except Exception:
            self._close_quietly(shm)
            raise
        self.attaches += 1
        self._entries[name] = (shm, relation)
        while len(self._entries) > self._max_entries:
            _, (old_shm, _old_relation) = self._entries.popitem(last=False)
            self._close_quietly(old_shm)
        return relation

    def close(self) -> None:
        while self._entries:
            _, (shm, _relation) = self._entries.popitem(last=False)
            self._close_quietly(shm)
