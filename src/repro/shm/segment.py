"""The binary segment format of the shared-memory data plane.

A **segment** is the flat, attach-in-place form of one relation: a small
JSON header (name, schema, per-column dictionaries, content hash) followed
by the relation's dense dictionary-encoded code arrays — the exact
``array('q')`` streams :meth:`~repro.relational.relation.Relation.column_codes`
already computes — laid out contiguously so a worker can reconstruct every
column as a zero-copy ``np.frombuffer`` view:

.. code-block:: text

    offset 0    magic            b"RPROSHM1"
    offset 8    header length H  uint64 little-endian
    offset 16   header JSON      H bytes of UTF-8 (see ``SEGMENT_SCHEMA``)
    align 8     code arrays      one int64[n_rows] block per attribute,
                                 in schema order, native byte order

Codes are written in *native* byte order: segments are a same-host IPC
format (parent process to its worker processes), never a persistence or
wire format — the content hash in the header is the portable identity.

Dictionaries ride in the header as JSON, so only relations whose distinct
values are JSON scalars are representable; :func:`encode_segment` raises
:class:`SegmentFormatError` for anything else and the caller falls back to
the pickled wire path (the fallback matrix in ``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

import json
from array import array
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..relational.relation import Relation

#: First eight bytes of every segment.
SEGMENT_MAGIC = b"RPROSHM1"

#: Schema tag of the segment header (versioned like the wire schemas).
SEGMENT_SCHEMA = "repro/shm-segment-v1"

#: Bytes before the header JSON: magic + header length.
_PREFIX_LENGTH = 16

#: The JSON value types a segment dictionary may hold.  ``bool`` is an
#: ``int`` subclass and round-trips; containers are rejected because JSON
#: turns tuples into lists, which would silently change the decoded values.
_SCALAR_TYPES = (str, int, float, type(None))


class SegmentFormatError(ValueError):
    """Raised for relations a segment cannot represent, or corrupt segments."""


def _align8(n: int) -> int:
    return (n + 7) & ~7


def encode_segment(relation: "Relation") -> "tuple[bytes, list[array], int]":
    """``(header_bytes, code_arrays, total_size)`` of ``relation``'s segment form.

    Pure encoding — no shared memory is touched.  Raises
    :class:`SegmentFormatError` when a column's dictionary holds non-scalar
    values (the publish path treats that as "not representable, use the
    wire").  ``code_arrays`` are the relation's own cached encodings, so
    repeated publishes of a registry-resident relation never re-encode.
    """
    columns: list[dict[str, Any]] = []
    arrays: list[array] = []
    for attribute in relation.attribute_names:
        codes, n_codes = relation.column_codes(attribute)
        dictionary = relation.column_dictionary(attribute)
        for value in dictionary:
            if not isinstance(value, _SCALAR_TYPES):
                raise SegmentFormatError(
                    f"column {attribute!r} of relation {relation.name!r} holds a "
                    f"{type(value).__name__} value; segments carry JSON scalars only"
                )
        columns.append(
            {"attribute": attribute, "n_codes": n_codes, "dictionary": dictionary}
        )
        arrays.append(codes)
    header = {
        "schema": SEGMENT_SCHEMA,
        "name": relation.name,
        "attributes": list(relation.attribute_names),
        "n_rows": len(relation),
        "hash": relation.content_hash(),
        "columns": columns,
    }
    try:
        header_bytes = json.dumps(header, sort_keys=True, separators=(",", ":")).encode("utf-8")
    except (TypeError, ValueError) as exc:
        raise SegmentFormatError(
            f"relation {relation.name!r} is not JSON-representable: {exc}"
        ) from exc
    data_offset = _align8(_PREFIX_LENGTH + len(header_bytes))
    total = data_offset + 8 * len(arrays) * len(relation)
    return header_bytes, arrays, total


def write_segment(buf, header_bytes: bytes, arrays: "list[array]", n_rows: int) -> None:
    """Lay out an encoded segment into ``buf`` (a writable buffer)."""
    buf[0:8] = SEGMENT_MAGIC
    buf[8:16] = len(header_bytes).to_bytes(8, "little")
    buf[_PREFIX_LENGTH : _PREFIX_LENGTH + len(header_bytes)] = header_bytes
    offset = _align8(_PREFIX_LENGTH + len(header_bytes))
    stride = 8 * n_rows
    for codes in arrays:
        buf[offset : offset + stride] = codes.tobytes()
        offset += stride


def read_header(buf) -> "tuple[dict[str, Any], int]":
    """``(header, data_offset)`` of the segment in ``buf``.

    Validates the magic and schema tag; the caller validates the content
    hash against what it expected to attach.
    """
    if len(buf) < _PREFIX_LENGTH or bytes(buf[0:8]) != SEGMENT_MAGIC:
        raise SegmentFormatError("not a repro shared-memory segment (bad magic)")
    header_length = int.from_bytes(buf[8:16], "little")
    if _PREFIX_LENGTH + header_length > len(buf):
        raise SegmentFormatError(
            f"segment header overruns the mapping ({header_length} bytes declared)"
        )
    try:
        header = json.loads(bytes(buf[_PREFIX_LENGTH : _PREFIX_LENGTH + header_length]))
    except ValueError as exc:
        raise SegmentFormatError(f"corrupt segment header: {exc}") from exc
    if not isinstance(header, dict) or header.get("schema") != SEGMENT_SCHEMA:
        raise SegmentFormatError(
            f"unknown segment schema {header.get('schema') if isinstance(header, dict) else header!r}"
        )
    data_offset = _align8(_PREFIX_LENGTH + header_length)
    n_rows = header.get("n_rows")
    columns = header.get("columns")
    if not isinstance(n_rows, int) or not isinstance(columns, list):
        raise SegmentFormatError("segment header is missing n_rows/columns")
    if data_offset + 8 * len(columns) * n_rows > len(buf):
        raise SegmentFormatError("segment code arrays overrun the mapping")
    return header, data_offset
