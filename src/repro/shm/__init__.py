"""``repro.shm`` — the zero-copy shared-memory data plane.

Registry-resident relations travel to worker processes as ``/dev/shm``
segments instead of per-job pickles: the parent's
:class:`SharedRelationPlane` publishes each relation once (keyed by content
hash, LRU byte budget ``REPRO_SHM_BYTES``), and workers reconstruct a
:class:`SharedRelation` over zero-copy ``np.frombuffer`` views via
:class:`SegmentAttachCache`.  Artefacts are byte-identical to the wire
path; every miss (inline relation, evicted segment, no numpy, injected
``shm.attach`` fault) falls back to the wire transparently.

See ``docs/ARCHITECTURE.md`` ("The shared-memory data plane") for the
segment lifecycle state machine, refcount/eviction rules and the full
fallback matrix.
"""

from .plane import (
    SITE_SHM_ATTACH,
    SITE_SHM_EVICT,
    SharedRelationPlane,
    plane_available,
)
from .relation import (
    SegmentAttachCache,
    SharedRelation,
    attach_segment,
    relation_from_segment,
)
from .segment import (
    SEGMENT_MAGIC,
    SEGMENT_SCHEMA,
    SegmentFormatError,
    encode_segment,
    read_header,
    write_segment,
)

__all__ = [
    "SITE_SHM_ATTACH",
    "SITE_SHM_EVICT",
    "SEGMENT_MAGIC",
    "SEGMENT_SCHEMA",
    "SegmentAttachCache",
    "SegmentFormatError",
    "SharedRelation",
    "SharedRelationPlane",
    "attach_segment",
    "encode_segment",
    "plane_available",
    "read_header",
    "relation_from_segment",
    "write_segment",
]
