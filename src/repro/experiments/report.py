"""Plain-text rendering of experiment results.

Every table/figure module produces a list of dictionaries (one per row);
:func:`render_table` turns them into an aligned ASCII table so the CLI and
EXPERIMENTS.md can show the regenerated numbers next to the paper's.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Sequence


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return f"{value:.4f}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, Any]],
    columns: Sequence[str] | None = None,
    title: str | None = None,
) -> str:
    """Render a list of row dictionaries as an aligned ASCII table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [[_format_value(row.get(column, "")) for column in columns] for row in rows]
    widths = [len(column) for column in columns]
    for line in rendered:
        for i, cell in enumerate(line):
            widths[i] = max(widths[i], len(cell))
    header = " | ".join(column.ljust(widths[i]) for i, column in enumerate(columns))
    separator = "-+-".join("-" * width for width in widths)
    lines = []
    if title:
        lines.append(title)
        lines.append("=" * len(title))
    lines.append(header)
    lines.append(separator)
    for line in rendered:
        lines.append(" | ".join(cell.ljust(widths[i]) for i, cell in enumerate(line)))
    return "\n".join(lines)


def render_csv(rows: Sequence[Mapping[str, Any]], columns: Sequence[str] | None = None) -> str:
    """Render rows as CSV text (for saving results alongside EXPERIMENTS.md)."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    lines = [",".join(columns)]
    for row in rows:
        lines.append(",".join(str(row.get(column, "")) for column in columns))
    return "\n".join(lines)


def summarise(rows: Iterable[Mapping[str, Any]], key: str) -> dict[str, float]:
    """Minimum / mean / maximum of a numeric column (used in EXPERIMENTS.md)."""
    values = [float(row[key]) for row in rows if key in row and row[key] != ""]
    if not values:
        return {"min": 0.0, "mean": 0.0, "max": 0.0}
    return {
        "min": min(values),
        "mean": sum(values) / len(values),
        "max": max(values),
    }
