"""Regeneration of Table I, Table II and Table III of the paper.

* **Table I** — characteristics of the base tables (attribute count, tuple
  count, number of minimal FDs).
* **Table II** — the 16 SPJ views with their tuple and FD counts.
* **Table III** — per view: coverage, per-step accuracy of the InFine
  breakdown, total FD count, and the I/O / upstageFDs / mineFDs time
  breakdown.

Each function returns a list of row dictionaries; combine with
:func:`repro.experiments.report.render_table` for display.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..datasets.registry import Catalog, load_all
from ..datasets.views import paper_views
from ..discovery.registry import make_algorithm
from ..metrics.accuracy import BREAKDOWN_STEPS
from .harness import ViewExperiment

#: Column order of each regenerated table.
TABLE1_COLUMNS = ("database", "table", "attributes", "tuples", "fd_count")
TABLE2_COLUMNS = ("database", "view", "tuples", "fd_count")
TABLE3_COLUMNS = (
    "database", "view", "coverage",
    "upstageFDs_accuracy", "inferFDs_accuracy", "mineFDs_accuracy",
    "total_accuracy", "fd_count",
    "io_s", "upstageFDs_s", "inferFDs_s", "mineFDs_s",
)


def table1_rows(
    catalogs: Mapping[str, Catalog] | None = None,
    scale: float | str = "small",
    algorithm: str = "tane",
    seed: int = 7,
) -> list[dict]:
    """Table I: base-table characteristics of every database."""
    catalogs = dict(catalogs) if catalogs is not None else load_all(scale, seed)
    discovery = make_algorithm(algorithm)
    rows: list[dict] = []
    for database, catalog in catalogs.items():
        for name, relation in catalog.items():
            result = discovery.discover(relation)
            rows.append(
                {
                    "database": database,
                    "table": name,
                    "attributes": relation.arity,
                    "tuples": len(relation),
                    "fd_count": len(result.fds),
                }
            )
    return rows


def table2_rows(
    catalogs: Mapping[str, Catalog] | None = None,
    scale: float | str = "small",
    algorithm: str = "tane",
    seed: int = 7,
) -> list[dict]:
    """Table II: the SPJ views with their sizes and FD counts."""
    catalogs = dict(catalogs) if catalogs is not None else load_all(scale, seed)
    discovery = make_algorithm(algorithm)
    rows: list[dict] = []
    for case in paper_views():
        catalog = catalogs[case.database]
        instance = case.spec.evaluate(catalog)
        attributes = case.spec.projected_attributes(catalog)
        result = discovery.discover(instance, attributes)
        rows.append(
            {
                "database": case.database,
                "view": case.paper_label,
                "attributes": len(attributes),
                "tuples": len(instance),
                "fd_count": len(result.fds),
            }
        )
    return rows


def table3_rows(experiments: Sequence[ViewExperiment]) -> list[dict]:
    """Table III: accuracy and time breakdowns of the InFine algorithms."""
    rows: list[dict] = []
    for experiment in experiments:
        timings = experiment.infine.timings
        row = {
            "database": experiment.case.database,
            "view": experiment.case.paper_label,
            "coverage": round(experiment.coverage, 2),
        }
        for step in BREAKDOWN_STEPS:
            row[f"{step}_accuracy"] = round(experiment.accuracy.step_accuracy(step), 3)
        row.update(
            {
                "total_accuracy": round(experiment.accuracy.total_accuracy, 3),
                "fd_count": experiment.reference_fd_count,
                "io_s": round(timings.io, 4),
                "upstageFDs_s": round(timings.upstage, 4),
                "inferFDs_s": round(timings.infer, 4),
                "mineFDs_s": round(timings.mine, 4),
            }
        )
        rows.append(row)
    return rows
