"""Experiment harness: run InFine and the baselines over the paper's workload.

One :class:`ViewExperiment` captures everything the evaluation section of the
paper reports about a single SPJ view: the view characteristics (rows,
attributes, coverage), the InFine run (FD counts per provenance type, timing
breakdown, accuracy against the reference) and, per baseline method, the
runtime of the straightforward pipeline (full SPJ computation + discovery)
and optionally its peak memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from contextlib import nullcontext

from ..datasets.registry import Catalog, load_all
from ..datasets.views import ViewCase, paper_views
from ..discovery.registry import PAPER_BASELINES
from ..infine.engine import InFine, InFineResult
from ..infine.straightforward import StraightforwardPipeline
from ..metrics.accuracy import AccuracyBreakdown, accuracy_breakdown
from ..metrics.coverage import view_coverage
from ..metrics.profiling import profile_call
from ..session import Session


@dataclass
class MethodMeasurement:
    """Runtime/memory of one baseline method on one view (straightforward pipeline)."""

    algorithm: str
    total_seconds: float
    spj_seconds: float
    discovery_seconds: float
    fd_count: int
    peak_memory_mb: float = 0.0


@dataclass
class ViewExperiment:
    """All measurements of one SPJ view."""

    case: ViewCase
    view_rows: int
    view_attributes: int
    coverage: float
    infine: InFineResult
    infine_seconds: float
    infine_peak_memory_mb: float
    accuracy: AccuracyBreakdown
    baselines: dict[str, MethodMeasurement] = field(default_factory=dict)

    @property
    def reference_fd_count(self) -> int:
        """Number of FDs of the view according to the reference baseline."""
        return self.accuracy.reference_count

    def speedup_over(self, algorithm: str) -> float:
        """Baseline runtime divided by the InFine pipeline runtime."""
        baseline = self.baselines[algorithm]
        if self.infine_seconds == 0:
            return float("inf")
        return baseline.total_seconds / self.infine_seconds


def run_view_experiment(
    case: ViewCase,
    catalog: Catalog,
    algorithms: Sequence[str] = PAPER_BASELINES,
    reference_algorithm: str = "tane",
    measure_memory: bool = False,
    max_lhs_size: int | None = None,
    session: Session | None = None,
) -> ViewExperiment:
    """Run InFine and the straightforward baselines on one view.

    The comparison follows the paper's protocol: base-table FD discovery is
    excluded from both sides (its cost is identical), the baselines pay the
    full SPJ computation, and InFine pays its partial computations inside the
    ``mineFDs`` step.

    ``session`` pins the engine state (backend, cache budgets, counters) the
    whole experiment runs under; without one, the ambient state is inherited
    (the enclosing session's activation, or the module-level default).
    """
    scope = session.activate() if session is not None else nullcontext()
    with scope:
        engine = InFine(max_lhs_size=max_lhs_size)
        infine_profile = profile_call(
            engine.run, case.spec, catalog, trace_memory=measure_memory
        )
        infine_result: InFineResult = infine_profile.value

        baselines: dict[str, MethodMeasurement] = {}
        reference_fds = None
        view_rows = 0
        ordered = list(dict.fromkeys([reference_algorithm, *algorithms]))
        for algorithm in ordered:
            pipeline = StraightforwardPipeline(algorithm)
            profile = profile_call(
                pipeline.run, case.spec, catalog,
                with_provenance=False, trace_memory=measure_memory,
            )
            run = profile.value
            view_rows = run.view_rows
            if algorithm == reference_algorithm:
                reference_fds = run.fds
            baselines[algorithm] = MethodMeasurement(
                algorithm=algorithm,
                total_seconds=run.total_seconds,
                spj_seconds=run.spj_seconds,
                discovery_seconds=run.discovery_seconds,
                fd_count=len(run.fds),
                peak_memory_mb=profile.peak_memory_mb if measure_memory else 0.0,
            )
        assert reference_fds is not None

        coverage = view_coverage(case.spec, catalog)
    return ViewExperiment(
        case=case,
        view_rows=view_rows,
        view_attributes=len(infine_result.attributes),
        coverage=coverage,
        infine=infine_result,
        infine_seconds=infine_result.timings.view_pipeline,
        infine_peak_memory_mb=infine_profile.peak_memory_mb if measure_memory else 0.0,
        accuracy=accuracy_breakdown(infine_result, reference_fds),
        baselines=baselines,
    )


def run_full_evaluation(
    scale: float | str = "small",
    algorithms: Sequence[str] = PAPER_BASELINES,
    databases: Iterable[str] | None = None,
    views: Iterable[str] | None = None,
    measure_memory: bool = False,
    seed: int = 7,
    catalogs: Mapping[str, Catalog] | None = None,
    session: Session | None = None,
) -> list[ViewExperiment]:
    """Run the whole workload of the paper (or a filtered subset).

    Parameters
    ----------
    scale:
        Dataset scale (numeric or preset name).
    algorithms:
        Baseline discovery algorithms to compare against.
    databases:
        Optional database filter (``pte``/``ptc``/``mimic3``/``tpch``).
    views:
        Optional view-key filter (e.g. ``["tpch/q3"]``).
    measure_memory:
        Whether to trace peak memory (slower; needed for Fig. 4).
    seed:
        Dataset generation seed.
    catalogs:
        Pre-generated catalogues to reuse (overrides ``scale``/``seed``).
    session:
        Optional :class:`repro.session.Session` every experiment runs under
        (one engine state, one set of kernel counters for the whole
        evaluation); the ambient state is inherited when omitted.
    """
    resolved_catalogs = dict(catalogs) if catalogs is not None else load_all(scale, seed)
    selected_databases = set(databases) if databases is not None else None
    selected_views = set(views) if views is not None else None

    experiments: list[ViewExperiment] = []
    for case in paper_views():
        if selected_databases is not None and case.database not in selected_databases:
            continue
        if selected_views is not None and case.key not in selected_views:
            continue
        experiments.append(
            run_view_experiment(
                case,
                resolved_catalogs[case.database],
                algorithms=algorithms,
                measure_memory=measure_memory,
                session=session,
            )
        )
    return experiments
