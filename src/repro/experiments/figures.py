"""Regeneration of Fig. 3, Fig. 4 and Fig. 5 of the paper (as data series).

The paper presents these results graphically; this module produces the
underlying series as row dictionaries so they can be printed, saved as CSV,
or plotted by the user with any tool.  The *shape* to look for:

* **Fig. 3 (runtime)** — InFine's pipeline (which never computes the full
  view unless selective mining needs it) versus each baseline's
  full-SPJ-plus-discovery time, per view.
* **Fig. 4 (memory)** — peak memory per method per view; InFine is expected
  to have the smallest footprint because it only materialises reduced and
  partial instances.
* **Fig. 5 (breakdown)** — per-view runtime of the InFine steps together with
  the fraction of FDs each step retrieved.
"""

from __future__ import annotations

from typing import Sequence

from ..metrics.accuracy import BREAKDOWN_STEPS
from .harness import ViewExperiment

FIG3_BASE_COLUMNS = ("database", "view", "view_rows", "infine_s")
FIG4_BASE_COLUMNS = ("database", "view", "infine_mb")
FIG5_COLUMNS = (
    "database", "view",
    "upstageFDs_s", "inferFDs_s", "mineFDs_s", "io_s",
    "upstageFDs_pct", "inferFDs_pct", "mineFDs_pct", "fd_count",
)


def fig3_rows(experiments: Sequence[ViewExperiment]) -> list[dict]:
    """Fig. 3: average runtime of InFine vs. each baseline with full SPJ computation."""
    rows: list[dict] = []
    for experiment in experiments:
        row = {
            "database": experiment.case.database,
            "view": experiment.case.paper_label,
            "view_rows": experiment.view_rows,
            "infine_s": round(experiment.infine_seconds, 4),
        }
        for name, measurement in sorted(experiment.baselines.items()):
            row[f"{name}_full_spj_s"] = round(measurement.total_seconds, 4)
            row[f"speedup_vs_{name}"] = round(experiment.speedup_over(name), 2)
        rows.append(row)
    return rows


def fig4_rows(experiments: Sequence[ViewExperiment]) -> list[dict]:
    """Fig. 4: maximal memory consumption (MB) of InFine vs. the baselines."""
    rows: list[dict] = []
    for experiment in experiments:
        row = {
            "database": experiment.case.database,
            "view": experiment.case.paper_label,
            "infine_mb": round(experiment.infine_peak_memory_mb, 3),
        }
        for name, measurement in sorted(experiment.baselines.items()):
            row[f"{name}_mb"] = round(measurement.peak_memory_mb, 3)
        rows.append(row)
    return rows


def fig5_rows(experiments: Sequence[ViewExperiment]) -> list[dict]:
    """Fig. 5: per-step runtime of InFine and the fraction of FDs found by each step."""
    rows: list[dict] = []
    for experiment in experiments:
        timings = experiment.infine.timings
        row = {
            "database": experiment.case.database,
            "view": experiment.case.paper_label,
            "upstageFDs_s": round(timings.upstage, 4),
            "inferFDs_s": round(timings.infer, 4),
            "mineFDs_s": round(timings.mine, 4),
            "io_s": round(timings.io, 4),
        }
        for step in BREAKDOWN_STEPS:
            row[f"{step}_pct"] = round(100.0 * experiment.accuracy.step_accuracy(step), 1)
        row["fd_count"] = experiment.reference_fd_count
        rows.append(row)
    return rows
