"""Experiment harness regenerating every table and figure of the paper's evaluation."""

from .figures import fig3_rows, fig4_rows, fig5_rows
from .harness import (
    MethodMeasurement,
    ViewExperiment,
    run_full_evaluation,
    run_view_experiment,
)
from .report import render_csv, render_table, summarise
from .tables import (
    TABLE1_COLUMNS,
    TABLE2_COLUMNS,
    TABLE3_COLUMNS,
    table1_rows,
    table2_rows,
    table3_rows,
)

__all__ = [
    "ViewExperiment",
    "MethodMeasurement",
    "run_view_experiment",
    "run_full_evaluation",
    "render_table",
    "render_csv",
    "summarise",
    "table1_rows",
    "table2_rows",
    "table3_rows",
    "TABLE1_COLUMNS",
    "TABLE2_COLUMNS",
    "TABLE3_COLUMNS",
    "fig3_rows",
    "fig4_rows",
    "fig5_rows",
]
