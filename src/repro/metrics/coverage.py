"""The *coverage* measure of Section V of the paper.

Coverage quantifies how the cardinalities of the join-attribute values
survive a join::

    Coverage(R ♦ L) = 1/2 (Cov(R♦L, L, X) + Cov(R♦L, R, Y))

    Cov(Join, I, a) = 1/|π_a(I)| · Σ_{v ∈ π_a(I)} |σ_{a=v}(Join)| / |σ_{a=v}(I)|

A coverage of 0 means no tuple joins at all, below 1 some tuples are dropped,
exactly 1 means a perfect one-to-one match, and above 1 means tuples are
repeated through the join (the paper's Q9* reaches ≈ 25 800).
"""

from __future__ import annotations

from collections import Counter
from typing import Mapping, Sequence

from ..relational.relation import NULL, Relation
from ..relational.view import JoinSpec, ViewSpec


def _key_counts(relation: Relation, attributes: Sequence[str]) -> Counter:
    counts: Counter = Counter()
    idxs = relation.schema.indexes_of(attributes)
    for row in relation.rows:
        key = tuple(row[i] for i in idxs)
        if any(value is NULL for value in key):
            continue
        counts[key] += 1
    return counts


def side_coverage(
    own_counts: Counter, other_counts: Counter
) -> float:
    """``Cov(Join, I, a)`` for an inner equi-join, computed from key histograms.

    For each distinct key value ``v`` of the side ``I``, the join contains
    ``count_I(v) * count_other(v)`` rows with that value, so the per-value
    ratio reduces to ``count_other(v)``.
    """
    if not own_counts:
        return 0.0
    total = sum(other_counts.get(value, 0) for value in own_counts)
    return total / len(own_counts)


def join_coverage(
    left: Relation,
    right: Relation,
    left_on: Sequence[str],
    right_on: Sequence[str] | None = None,
) -> float:
    """``Coverage(left ♦ right)`` of an inner equi-join."""
    right_on = list(right_on) if right_on is not None else list(left_on)
    left_counts = _key_counts(left, list(left_on))
    right_counts = _key_counts(right, right_on)
    return 0.5 * (
        side_coverage(left_counts, right_counts) + side_coverage(right_counts, left_counts)
    )


def view_coverage(spec: ViewSpec, catalog: Mapping[str, Relation]) -> float:
    """Coverage of the *outermost* join of a view specification.

    The paper reports a single coverage value per SPJ view; it characterises
    the top-level join of the (possibly nested) specification.  Views without
    a join (pure selections/projections) have coverage 1 by convention.
    """
    top_join: JoinSpec | None = None
    for node in spec.walk():
        if isinstance(node, JoinSpec):
            top_join = node
    if top_join is None:
        return 1.0
    left = top_join.left.evaluate(catalog)
    right = top_join.right.evaluate(catalog)
    return join_coverage(left, right, top_join.left_on, top_join.right_on)
