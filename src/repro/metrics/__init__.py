"""Evaluation metrics: coverage, accuracy breakdowns and runtime/memory profiling."""

from .accuracy import (
    BREAKDOWN_STEPS,
    AccuracyBreakdown,
    accuracy_breakdown,
    paper_step_of,
    self_breakdown,
)
from .coverage import join_coverage, side_coverage, view_coverage
from .profiling import ProfileResult, profile_call, repeat_profile

__all__ = [
    "join_coverage",
    "side_coverage",
    "view_coverage",
    "AccuracyBreakdown",
    "accuracy_breakdown",
    "self_breakdown",
    "paper_step_of",
    "BREAKDOWN_STEPS",
    "ProfileResult",
    "profile_call",
    "repeat_profile",
]
