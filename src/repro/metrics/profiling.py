"""Runtime and peak-memory measurement helpers (Fig. 3 and Fig. 4).

The paper reports average runtime and maximal memory consumption per method
and per view.  :func:`profile_call` wraps an arbitrary callable with
``time.perf_counter`` and ``tracemalloc`` so every experiment and benchmark
uses the same measurement discipline.
"""

from __future__ import annotations

import gc
import time
import tracemalloc
from dataclasses import dataclass
from typing import Any, Callable, TypeVar

T = TypeVar("T")


@dataclass(frozen=True)
class ProfileResult:
    """Outcome of one profiled call."""

    #: The value returned by the profiled callable.
    value: Any
    #: Wall-clock seconds.
    seconds: float
    #: Peak Python-heap allocation during the call, in bytes.
    peak_memory_bytes: int

    @property
    def peak_memory_mb(self) -> float:
        """Peak memory in megabytes (the unit of Fig. 4)."""
        return self.peak_memory_bytes / (1024 * 1024)


def profile_call(
    fn: Callable[..., T], *args: Any, trace_memory: bool = True, **kwargs: Any
) -> ProfileResult:
    """Run ``fn(*args, **kwargs)`` measuring wall-clock time and peak memory.

    ``tracemalloc`` adds noticeable overhead; pass ``trace_memory=False`` for
    pure-runtime benchmarks (Fig. 3) and keep it on for the memory experiment
    (Fig. 4).
    """
    gc.collect()
    was_tracing = tracemalloc.is_tracing()
    peak = 0
    if trace_memory:
        if not was_tracing:
            tracemalloc.start()
        tracemalloc.reset_peak()
    started = time.perf_counter()
    value = fn(*args, **kwargs)
    elapsed = time.perf_counter() - started
    if trace_memory:
        _current, peak = tracemalloc.get_traced_memory()
        if not was_tracing:
            tracemalloc.stop()
    return ProfileResult(value=value, seconds=elapsed, peak_memory_bytes=peak)


def repeat_profile(
    fn: Callable[..., T], repeats: int = 3, trace_memory: bool = False, **kwargs: Any
) -> tuple[ProfileResult, float]:
    """Run ``fn`` several times; return the last profile and the mean runtime.

    The paper reports averages over 10 runs per query; the default here is 3
    to keep the pure-Python benchmark suite affordable (pytest-benchmark
    handles the statistically careful timing separately).
    """
    if repeats < 1:
        raise ValueError("repeats must be at least 1")
    seconds = []
    profile: ProfileResult | None = None
    for _ in range(repeats):
        profile = profile_call(fn, trace_memory=trace_memory, **kwargs)
        seconds.append(profile.seconds)
    assert profile is not None
    return profile, sum(seconds) / len(seconds)
