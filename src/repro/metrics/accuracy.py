"""Accuracy breakdowns (Table III and the pie charts of Fig. 5).

The paper defines accuracy as the fraction of the FDs found by a classical
method on the fully computed view that InFine retrieves, and breaks that
fraction down by the InFine algorithm that retrieved each FD.  In the
figures, base FDs carried over from the inputs are attributed to the
``upstageFDs`` step (the step that handles per-side FDs), which is mirrored
here by :func:`paper_step_of`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..fd.fd import FD
from ..fd.fdset import FDSet
from ..infine.engine import InFineResult
from ..infine.provenance import FDType

#: The three steps of the paper's accuracy breakdown.
BREAKDOWN_STEPS: tuple[str, ...] = ("upstageFDs", "inferFDs", "mineFDs")


def paper_step_of(fd_type: FDType) -> str:
    """Map a provenance type to the paper's three-way breakdown.

    Base FDs and upstaged FDs are both handled without looking at join data
    and are reported under ``upstageFDs`` in Fig. 5/Table III; inferred FDs
    under ``inferFDs``; join FDs under ``mineFDs``.
    """
    if fd_type in (FDType.BASE, FDType.UPSTAGED_SELECTION, FDType.UPSTAGED_LEFT,
                   FDType.UPSTAGED_RIGHT):
        return "upstageFDs"
    if fd_type is FDType.INFERRED:
        return "inferFDs"
    return "mineFDs"


@dataclass
class AccuracyBreakdown:
    """Per-step accuracy of one InFine run against a reference FD set."""

    #: Number of reference FDs (found by the baseline on the full view).
    reference_count: int
    #: Number of reference FDs that InFine retrieved (exactly).
    matched: int
    #: Reference FDs retrieved per paper step.
    per_step: dict[str, int] = field(default_factory=dict)
    #: Reference FDs InFine did not report verbatim (should stay empty).
    missing: list[FD] = field(default_factory=list)
    #: FDs InFine reported that the reference does not contain.
    extra: list[FD] = field(default_factory=list)

    @property
    def total_accuracy(self) -> float:
        """Fraction of reference FDs retrieved (the paper's accuracy, 1.0 expected)."""
        if self.reference_count == 0:
            return 1.0
        return self.matched / self.reference_count

    def step_accuracy(self, step: str) -> float:
        """Fraction of reference FDs retrieved by one step."""
        if self.reference_count == 0:
            return 0.0
        return self.per_step.get(step, 0) / self.reference_count

    def as_dict(self) -> dict[str, float]:
        """Row-friendly rendering (used by the Table III report)."""
        result = {
            f"{step}_accuracy": round(self.step_accuracy(step), 4)
            for step in BREAKDOWN_STEPS
        }
        result["total_accuracy"] = round(self.total_accuracy, 4)
        result["fd_count"] = self.reference_count
        return result


def accuracy_breakdown(result: InFineResult, reference: FDSet | Iterable[FD]) -> AccuracyBreakdown:
    """Compare an InFine run against the FDs found on the fully computed view."""
    reference_set = reference if isinstance(reference, FDSet) else FDSet(reference)
    per_step: dict[str, int] = {step: 0 for step in BREAKDOWN_STEPS}
    matched = 0
    infine_fds = set()
    for triple in result.provenance:
        infine_fds.add(triple.dependency)
        if triple.dependency in reference_set:
            matched += 1
            per_step[paper_step_of(triple.fd_type)] += 1
    missing = [d for d in reference_set if d not in infine_fds]
    extra = sorted(infine_fds - set(reference_set.as_set()), key=FD.sort_key)
    return AccuracyBreakdown(
        reference_count=len(reference_set),
        matched=matched,
        per_step=per_step,
        missing=missing,
        extra=extra,
    )


def self_breakdown(result: InFineResult) -> dict[str, float]:
    """Fraction of InFine's own FDs per paper step (when no reference is available)."""
    counts = {step: 0 for step in BREAKDOWN_STEPS}
    for triple in result.provenance:
        counts[paper_step_of(triple.fd_type)] += 1
    total = sum(counts.values())
    if total == 0:
        return {step: 0.0 for step in BREAKDOWN_STEPS}
    return {step: count / total for step, count in counts.items()}
