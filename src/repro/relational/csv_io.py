"""CSV import/export for relations.

The paper's datasets are distributed as CSV dumps; this module provides the
matching load/save helpers so that users can run InFine on their own data.
Typed parsing follows the logical attribute types of the schema when one is
provided, otherwise a light-weight type inference is applied.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Iterable, Sequence

from .relation import NULL, Relation
from .schema import Attribute, RelationSchema

#: Strings interpreted as NULL when loading CSV files.
NULL_TOKENS = frozenset({"", "NULL", "null", "None", "NA", "N/A", "\\N"})


def _parse_typed(value: str, dtype: str) -> Any:
    if value in NULL_TOKENS:
        return NULL
    if dtype == "integer":
        return int(value)
    if dtype == "float":
        return float(value)
    if dtype == "boolean":
        return value.strip().lower() in ("1", "true", "t", "yes", "y")
    return value


def _infer(value: str) -> Any:
    if value in NULL_TOKENS:
        return NULL
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        pass
    return value


def load_csv(
    path: str | Path,
    name: str | None = None,
    schema: RelationSchema | Sequence[str] | None = None,
    delimiter: str = ",",
    infer_types: bool = True,
) -> Relation:
    """Load a relation from a CSV file with a header row.

    Parameters
    ----------
    path:
        Path to the CSV file.
    name:
        Relation name; defaults to the file stem.
    schema:
        Optional schema; when provided, its attribute types drive value
        parsing and its names must match the CSV header.
    delimiter:
        Field separator.
    infer_types:
        When no schema is given, whether to attempt int/float inference.
    """
    path = Path(path)
    relation_name = name or path.stem
    with path.open(newline="", encoding="utf-8") as handle:
        reader = csv.reader(handle, delimiter=delimiter)
        try:
            header = next(reader)
        except StopIteration:
            raise ValueError(f"CSV file {path} is empty (no header row)") from None
        if schema is None:
            resolved = RelationSchema(header)
            parse = _infer if infer_types else (lambda v: NULL if v in NULL_TOKENS else v)
            rows = [tuple(parse(value) for value in record) for record in reader]
        else:
            if not isinstance(schema, RelationSchema):
                resolved = RelationSchema(schema)
            else:
                resolved = schema
            if list(resolved.names) != list(header):
                raise ValueError(
                    f"CSV header {header} does not match schema {list(resolved.names)}"
                )
            dtypes = [attribute.dtype for attribute in resolved]
            rows = [
                tuple(_parse_typed(value, dtypes[i]) for i, value in enumerate(record))
                for record in reader
            ]
    return Relation(relation_name, resolved, rows)


def save_csv(relation: Relation, path: str | Path, delimiter: str = ",") -> Path:
    """Write a relation to a CSV file (NULLs serialised as empty strings)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.writer(handle, delimiter=delimiter)
        writer.writerow(relation.attribute_names)
        for row in relation.rows:
            writer.writerow(["" if value is NULL else value for value in row])
    return path


def save_catalog(catalog: dict[str, Relation], directory: str | Path) -> list[Path]:
    """Write every relation of a catalogue to ``directory`` as ``<name>.csv``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    return [save_csv(relation, directory / f"{name}.csv") for name, relation in catalog.items()]


def load_catalog(directory: str | Path, names: Iterable[str] | None = None) -> dict[str, Relation]:
    """Load every ``*.csv`` file of ``directory`` (or just ``names``) into a catalogue."""
    directory = Path(directory)
    catalog: dict[str, Relation] = {}
    if names is None:
        paths = sorted(directory.glob("*.csv"))
    else:
        paths = [directory / f"{name}.csv" for name in names]
    for path in paths:
        relation = load_csv(path)
        catalog[relation.name] = relation
    return catalog


def schema_from_types(names: Sequence[str], dtypes: Sequence[str]) -> RelationSchema:
    """Build a schema from parallel name/type lists (helper for CSV loaders)."""
    if len(names) != len(dtypes):
        raise ValueError("names and dtypes must have the same length")
    return RelationSchema([Attribute(n, t) for n, t in zip(names, dtypes)])
