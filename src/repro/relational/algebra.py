"""Relational algebra operators over :class:`~repro.relational.relation.Relation`.

The operator set covers exactly the SPJ fragment of the paper
(Definition 2): projection, selection, the four outer/inner joins and the two
semi-joins.  All joins are hash joins; the equi-join follows USING/natural
semantics, i.e. the join columns appear once in the output (under the left
side's names) and, for right-only rows of an outer join, are filled from the
right side's values.
"""

from __future__ import annotations

from collections import defaultdict
from enum import Enum
from typing import Any, Sequence

from .predicates import Predicate
from .relation import NULL, Relation, RelationError
from .schema import RelationSchema, SchemaError


class JoinKind(str, Enum):
    """The join operators supported by the SPJ view fragment."""

    INNER = "inner"
    LEFT_OUTER = "left_outer"
    RIGHT_OUTER = "right_outer"
    FULL_OUTER = "full_outer"
    LEFT_SEMI = "left_semi"
    RIGHT_SEMI = "right_semi"

    @property
    def symbol(self) -> str:
        """The algebraic symbol, used in provenance sub-query strings."""
        return {
            JoinKind.INNER: "JOIN",
            JoinKind.LEFT_OUTER: "LEFT OUTER JOIN",
            JoinKind.RIGHT_OUTER: "RIGHT OUTER JOIN",
            JoinKind.FULL_OUTER: "FULL OUTER JOIN",
            JoinKind.LEFT_SEMI: "LEFT SEMI JOIN",
            JoinKind.RIGHT_SEMI: "RIGHT SEMI JOIN",
        }[self]

    @property
    def is_semi(self) -> bool:
        """Whether the operator is one of the semi-joins."""
        return self in (JoinKind.LEFT_SEMI, JoinKind.RIGHT_SEMI)


def project(relation: Relation, attributes: Sequence[str], name: str | None = None) -> Relation:
    """Project ``relation`` on ``attributes`` (bag semantics, duplicates kept)."""
    schema = relation.schema.project(attributes)
    idxs = relation.schema.indexes_of(attributes)
    rows = [tuple(row[i] for i in idxs) for row in relation.rows]
    return Relation(name or f"project({relation.name})", schema, rows)


def select(relation: Relation, predicate: Predicate, name: str | None = None) -> Relation:
    """Select the rows of ``relation`` satisfying ``predicate``."""
    missing = predicate.attributes() - set(relation.attribute_names)
    if missing:
        raise SchemaError(
            f"selection predicate refers to unknown attributes {sorted(missing)} "
            f"of relation {relation.name!r}"
        )
    names = relation.attribute_names
    rows = [row for row in relation.rows if predicate.evaluate(dict(zip(names, row)))]
    return Relation(name or f"select({relation.name})", relation.schema, rows)


def rename(relation: Relation, mapping: dict[str, str], name: str | None = None) -> Relation:
    """Rename attributes of ``relation`` according to ``mapping``."""
    return Relation(name or relation.name, relation.schema.renamed(mapping), relation.rows)


def _validate_join_keys(
    left: Relation, right: Relation, left_on: Sequence[str], right_on: Sequence[str]
) -> None:
    if len(left_on) != len(right_on):
        raise SchemaError(
            f"join key arity mismatch: {list(left_on)} vs {list(right_on)}"
        )
    if not left_on:
        raise SchemaError("join requires at least one join attribute per side")
    for attribute in left_on:
        if not left.schema.has(attribute):
            raise SchemaError(f"left relation {left.name!r} has no join attribute {attribute!r}")
    for attribute in right_on:
        if not right.schema.has(attribute):
            raise SchemaError(f"right relation {right.name!r} has no join attribute {attribute!r}")


def _joined_schema(
    left: Relation, right: Relation, left_on: Sequence[str], right_on: Sequence[str]
) -> tuple[RelationSchema, tuple[int, ...]]:
    """Schema of the equi-join output and the kept right-column indexes.

    The output keeps every left attribute plus every right attribute except
    the join attributes whose name is identical on both sides (natural-join
    style: the shared column appears once).  Join attributes with *different*
    names are both kept, so FDs of either input keep referring to existing
    columns.  Any remaining name collision is an error: the dataset
    definitions in this repository use globally unique attribute names except
    for shared join attributes, mirroring the paper's examples.
    """
    dropped = {rgt for lft, rgt in zip(left_on, right_on) if lft == rgt}
    kept_right = [a for a in right.attribute_names if a not in dropped]
    collisions = set(kept_right) & set(left.attribute_names)
    if collisions:
        raise SchemaError(
            f"non-join attribute name collision between {left.name!r} and {right.name!r}: "
            f"{sorted(collisions)}; rename before joining"
        )
    schema = left.schema.concat(right.schema.project(kept_right))
    kept_idx = right.schema.indexes_of(kept_right)
    return schema, kept_idx


def equi_join(
    left: Relation,
    right: Relation,
    left_on: Sequence[str],
    right_on: Sequence[str] | None = None,
    kind: JoinKind = JoinKind.INNER,
    name: str | None = None,
) -> Relation:
    """Hash equi-join of two relations.

    Parameters
    ----------
    left, right:
        The relations to join.
    left_on, right_on:
        Parallel lists of join attributes.  ``right_on`` defaults to
        ``left_on`` (natural-join style on identically named attributes).
    kind:
        One of :class:`JoinKind`.
    name:
        Optional name of the output relation.

    Notes
    -----
    NULL join keys never match (SQL semantics): a row whose join attributes
    contain NULL is treated as dangling.
    """
    right_on = list(right_on) if right_on is not None else list(left_on)
    left_on = list(left_on)
    _validate_join_keys(left, right, left_on, right_on)

    if kind is JoinKind.LEFT_SEMI:
        return _semi_join(left, right, left_on, right_on, name, keep="left")
    if kind is JoinKind.RIGHT_SEMI:
        return _semi_join(left, right, left_on, right_on, name, keep="right")

    schema, kept_right_idx = _joined_schema(left, right, left_on, right_on)
    left_key_idx = left.schema.indexes_of(left_on)
    right_key_idx = right.schema.indexes_of(right_on)
    # Positions of left join columns whose right counterpart was dropped
    # (same name); only those are back-filled for unmatched right rows.
    left_on_positions = {
        left.schema.index_of(lft): i
        for i, (lft, rgt) in enumerate(zip(left_on, right_on))
        if lft == rgt
    }

    right_index: dict[tuple[Any, ...], list[int]] = defaultdict(list)
    for position, row in enumerate(right.rows):
        key = tuple(row[i] for i in right_key_idx)
        if any(value is NULL for value in key):
            continue
        right_index[key].append(position)

    rows: list[tuple[Any, ...]] = []
    matched_right: set[int] = set()
    right_pad = (NULL,) * len(kept_right_idx)

    for left_row in left.rows:
        key = tuple(left_row[i] for i in left_key_idx)
        matches = [] if any(value is NULL for value in key) else right_index.get(key, [])
        if matches:
            for position in matches:
                right_row = right.rows[position]
                rows.append(left_row + tuple(right_row[i] for i in kept_right_idx))
                matched_right.add(position)
        elif kind in (JoinKind.LEFT_OUTER, JoinKind.FULL_OUTER):
            rows.append(left_row + right_pad)

    if kind in (JoinKind.RIGHT_OUTER, JoinKind.FULL_OUTER):
        left_width = left.arity
        for position, right_row in enumerate(right.rows):
            if position in matched_right:
                continue
            # Unmatched right rows: left attributes are NULL, except the join
            # columns which take the right side's key values (USING semantics).
            padded = [NULL] * left_width
            for left_pos, key_slot in left_on_positions.items():
                padded[left_pos] = right_row[right_key_idx[key_slot]]
            rows.append(tuple(padded) + tuple(right_row[i] for i in kept_right_idx))

    if kind in (JoinKind.INNER, JoinKind.LEFT_OUTER, JoinKind.RIGHT_OUTER, JoinKind.FULL_OUTER):
        return Relation(name or f"{left.name}_{kind.value}_{right.name}", schema, rows)
    raise RelationError(f"unsupported join kind {kind!r}")  # pragma: no cover - defensive


def _semi_join(
    left: Relation,
    right: Relation,
    left_on: Sequence[str],
    right_on: Sequence[str],
    name: str | None,
    keep: str,
) -> Relation:
    """Left (``keep='left'``) or right (``keep='right'``) semi-join."""
    if keep == "left":
        probe, build, probe_on, build_on = left, right, left_on, right_on
    else:
        probe, build, probe_on, build_on = right, left, right_on, left_on
    build_keys = {
        key
        for key in (tuple(row[i] for i in build.schema.indexes_of(build_on)) for row in build.rows)
        if not any(value is NULL for value in key)
    }
    probe_idx = probe.schema.indexes_of(probe_on)
    rows = [
        row
        for row in probe.rows
        if not any(row[i] is NULL for i in probe_idx)
        and tuple(row[i] for i in probe_idx) in build_keys
    ]
    return Relation(name or f"semi({probe.name})", probe.schema, rows)


def union(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """Bag union of two relations over the same attribute names."""
    if left.attribute_names != right.attribute_names:
        raise SchemaError(
            f"union requires identical schemas: {left.attribute_names} vs {right.attribute_names}"
        )
    return Relation(name or f"union({left.name},{right.name})", left.schema, left.rows + right.rows)


def cartesian_product(left: Relation, right: Relation, name: str | None = None) -> Relation:
    """Cartesian product (used only in tests and as a reference semantics)."""
    overlap = set(left.attribute_names) & set(right.attribute_names)
    if overlap:
        raise SchemaError(f"cartesian product requires disjoint schemas, shared: {sorted(overlap)}")
    schema = left.schema.concat(right.schema)
    rows = [lrow + rrow for lrow in left.rows for rrow in right.rows]
    return Relation(name or f"product({left.name},{right.name})", schema, rows)
