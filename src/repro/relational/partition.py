"""Stripped partitions (position list indexes) over a flat-array kernel.

A *partition* of a relation with respect to an attribute set ``X`` groups the
row positions that agree on ``X``.  The *stripped* partition drops singleton
groups; it is the central data structure of partition-based FD discovery
(TANE [Huhtala et al. 1999], FUN [Novelli & Cicchetti 2001]) and of the
validation steps used by InFine.

Key facts used by the algorithms:

* an FD ``X -> a`` holds iff the error of ``X`` equals the error of
  ``X ∪ {a}`` (equivalently, refining the partition of ``X`` by ``a`` does not
  split any group);
* partitions compose: ``partition(XY) = partition(X) * partition(Y)`` where
  ``*`` is the product implemented by :meth:`StrippedPartition.intersect`.

Kernel layout
-------------
Internally a partition is two flat arrays instead of tuples-of-tuples:

* ``positions`` — the row positions of all non-singleton groups, concatenated;
* ``offsets`` — group boundaries, so group ``i`` is
  ``positions[offsets[i]:offsets[i + 1]]``.

Construction goes through the relation's cached per-column integer encodings
(:meth:`~repro.relational.relation.Relation.column_codes`) and a counting
sort, so building, intersecting and refining partitions never hash raw row
values — only dense machine integers.  ``intersect`` and ``refines`` are
single-pass probe-table algorithms over reusable ``n_rows``-sized scratch
tables (row -> group-id mark arrays, kept in a small bounded cache); the
side with the smaller ``||π||`` is probed into the marks of the larger one,
as in TANE's linear partition product.  The tuple-of-tuples view remains
available through the backward-compatible :attr:`StrippedPartition.groups`
property.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from .relation import Relation

# Bounded cache of row -> group-id mark arrays (the reusable ``n_rows``-sized
# scratch tables of the probe algorithms).  ``intersect``/``refines`` probe one
# partition against the marks of another; level-wise exploration reuses the
# same partitions as mark side over and over (TANE intersects every candidate
# with single-attribute partitions; refinement checks sweep one RHS partition
# across many LHSs), so a handful of cached mark arrays amortises the
# ``O(n_rows)`` marking pass to near zero.  Entries hold a strong reference to
# their partition, which both bounds memory (at most ``_MAX_MARK_ENTRIES``
# arrays) and guarantees the ``id()`` key stays valid.
_MARKS_CACHE: "OrderedDict[int, tuple[StrippedPartition, list[int]]]" = OrderedDict()
_MAX_MARK_ENTRIES = 8


def _row_marks(partition: "StrippedPartition") -> list[int]:
    """Row position -> group id (or -1 for stripped singletons) of ``partition``."""
    key = id(partition)
    entry = _MARKS_CACHE.get(key)
    if entry is not None and entry[0] is partition:
        _MARKS_CACHE.move_to_end(key)
        return entry[1]
    marks = [-1] * partition.n_rows
    positions, offsets = partition.positions, partition.offsets
    start = offsets[0]
    for group_id in range(1, len(offsets)):
        end = offsets[group_id]
        mark = group_id - 1
        for position in positions[start:end]:
            marks[position] = mark
        start = end
    _MARKS_CACHE[key] = (partition, marks)
    if len(_MARKS_CACHE) > _MAX_MARK_ENTRIES:
        _MARKS_CACHE.popitem(last=False)
    return marks


def _stripped_from_codes(
    codes: Sequence[int], counts: Sequence[int]
) -> tuple[list[int], list[int]]:
    """Counting-sort ``codes`` into flat (positions, offsets) arrays.

    ``counts`` holds the number of occurrences of each code.  Groups appear
    in first-value-appearance order; positions within a group are ascending.
    Codes occurring once are stripped.
    """
    buckets: list[list[int] | None] = [
        [] if count > 1 else None for count in counts
    ]
    positions: list[int] = []
    offsets: list[int] = [0]
    for position, code in enumerate(codes):
        bucket = buckets[code]
        if bucket is not None:
            bucket.append(position)
    for bucket in buckets:
        if bucket is not None:
            positions.extend(bucket)
            offsets.append(len(positions))
    return positions, offsets


class StrippedPartition:
    """A stripped partition over the row positions of a relation.

    Parameters
    ----------
    groups:
        Equivalence classes (lists of row positions) of size at least two.
    n_rows:
        Total number of rows of the underlying relation (needed to recover
        the number of singleton classes and compute errors).
    """

    __slots__ = ("positions", "offsets", "n_rows", "_groups_cache")

    def __init__(self, groups: Iterable[Sequence[int]], n_rows: int) -> None:
        positions: list[int] = []
        offsets: list[int] = [0]
        for group in groups:
            group = list(group)
            if len(group) > 1:
                positions.extend(group)
                offsets.append(len(positions))
        self.positions = positions
        self.offsets = offsets
        self.n_rows = n_rows
        self._groups_cache: tuple[tuple[int, ...], ...] | None = None

    @classmethod
    def _from_flat(
        cls, positions: list[int], offsets: list[int], n_rows: int
    ) -> "StrippedPartition":
        """Internal fast path: adopt already-built flat arrays (no copying)."""
        partition = object.__new__(cls)
        partition.positions = positions
        partition.offsets = offsets
        partition.n_rows = n_rows
        partition._groups_cache = None
        return partition

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_column(cls, relation: Relation, attribute: str) -> "StrippedPartition":
        """Build the stripped partition of a single attribute."""
        codes, _, counts = relation._encode_column(attribute)
        positions, offsets = _stripped_from_codes(codes, counts)
        return cls._from_flat(positions, offsets, len(relation))

    @classmethod
    def from_columns(cls, relation: Relation, attributes: Sequence[str]) -> "StrippedPartition":
        """Build the stripped partition of an attribute combination directly."""
        if not attributes:
            # The empty attribute set puts every row in one class.
            return cls([range(len(relation))], len(relation))
        if len(attributes) == 1:
            return cls.from_column(relation, attributes[0])
        codes, n_codes = relation.combined_column_codes(attributes)
        counts = [0] * n_codes
        for code in codes:
            counts[code] += 1
        positions, offsets = _stripped_from_codes(codes, counts)
        return cls._from_flat(positions, offsets, len(relation))

    # -- views ----------------------------------------------------------------
    @property
    def groups(self) -> tuple[tuple[int, ...], ...]:
        """The non-singleton classes as tuples (materialised lazily)."""
        cached = self._groups_cache
        if cached is None:
            positions, offsets = self.positions, self.offsets
            cached = tuple(
                tuple(positions[offsets[i] : offsets[i + 1]])
                for i in range(len(offsets) - 1)
            )
            self._groups_cache = cached
        return cached

    def iter_groups(self) -> Iterator[list[int]]:
        """Iterate over the classes as fresh lists, without caching tuples."""
        positions, offsets = self.positions, self.offsets
        start = offsets[0]
        for i in range(1, len(offsets)):
            end = offsets[i]
            yield positions[start:end]
            start = end

    # -- measures -------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        """Number of non-singleton equivalence classes."""
        return len(self.offsets) - 1

    @property
    def stripped_size(self) -> int:
        """Total number of positions kept in non-singleton classes (``||π||``)."""
        return len(self.positions)

    @property
    def error(self) -> int:
        """The TANE error ``e(X) = ||π|| - |π|``.

        ``X -> a`` holds exactly iff ``error(X) == error(X ∪ {a})``.
        """
        return len(self.positions) - (len(self.offsets) - 1)

    @property
    def distinct_count(self) -> int:
        """Number of distinct values (classes including singletons)."""
        return self.n_rows - len(self.positions) + (len(self.offsets) - 1)

    def is_key(self) -> bool:
        """Whether the attribute set is a (super)key: every class is a singleton."""
        return not self.positions

    def g3_error(self) -> float:
        """The g3 measure used for approximate FDs when this partition refines RHS.

        Here this returns the *fraction of rows that must be removed* for the
        partition to become a key, which is the standard normalisation of the
        TANE error used for AFD thresholds.
        """
        if self.n_rows == 0:
            return 0.0
        return self.error / self.n_rows

    # -- operations -----------------------------------------------------------
    def intersect(self, other: "StrippedPartition") -> "StrippedPartition":
        """Partition product ``π(X) * π(Y) = π(XY)`` (linear-time algorithm).

        The side with the smaller ``||π||`` is probed, group by group, against
        the row -> group-id mark table of the larger side — TANE's linear
        product, with the mark tables amortised across calls by a small
        bounded cache.
        """
        if self.n_rows != other.n_rows:
            raise ValueError("cannot intersect partitions over different relations")
        if not self.positions or not other.positions:
            # A key on either side leaves only singletons in the product.
            return StrippedPartition._from_flat([], [0], self.n_rows)
        if len(self.positions) <= len(other.positions):
            probe, build = self, other
        else:
            probe, build = other, self
        marks = _row_marks(build)
        out_positions: list[int] = []
        out_offsets: list[int] = [0]
        extend = out_positions.extend
        close_group = out_offsets.append
        positions, offsets = probe.positions, probe.offsets
        start = offsets[0]
        for group_id in range(1, len(offsets)):
            end = offsets[group_id]
            buckets: dict[int, list[int]] = {}
            get_bucket = buckets.get
            for position in positions[start:end]:
                mark = marks[position]
                if mark >= 0:
                    bucket = get_bucket(mark)
                    if bucket is None:
                        buckets[mark] = [position]
                    else:
                        bucket.append(position)
            start = end
            for bucket in buckets.values():
                if len(bucket) > 1:
                    extend(bucket)
                    close_group(len(out_positions))
        return StrippedPartition._from_flat(out_positions, out_offsets, self.n_rows)

    def refines(self, other: "StrippedPartition") -> bool:
        """Whether every class of ``self`` is contained in a class of ``other``.

        ``π(X) refines π(A)`` is exactly the condition for ``X -> A``.
        """
        if self.n_rows != other.n_rows:
            raise ValueError("cannot compare partitions over different relations")
        if not self.positions:
            return True
        marks = _row_marks(other)
        positions, offsets = self.positions, self.offsets
        start = offsets[0]
        for group_id in range(1, len(offsets)):
            end = offsets[group_id]
            first = marks[positions[start]]
            if first < 0:
                # The leading position is a singleton of `other`, yet its
                # class here has at least two members: the class splits.
                return False
            for position in positions[start + 1 : end]:
                if marks[position] != first:
                    return False
            start = end
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StrippedPartition):
            return NotImplemented
        mine = {frozenset(group) for group in self.iter_groups()}
        theirs = {frozenset(group) for group in other.iter_groups()}
        return self.n_rows == other.n_rows and mine == theirs

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash((self.n_rows, frozenset(frozenset(g) for g in self.iter_groups())))

    def __repr__(self) -> str:
        return f"StrippedPartition(groups={self.n_groups}, rows={self.n_rows}, error={self.error})"


@dataclass
class PartitionCacheStats:
    """Hit/miss/eviction counters of one :class:`PartitionCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    evicted_positions: int = 0

    @property
    def requests(self) -> int:
        """Total number of :meth:`PartitionCache.get` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests answered from the cache (0.0 when unused)."""
        requests = self.hits + self.misses
        return self.hits / requests if requests else 0.0


class PartitionCache:
    """Memoising, memory-bounded cache of stripped partitions for one relation.

    Attribute combinations are cached by frozenset of attribute names.
    Combinations are built either directly from the column encodings (for
    small sets) or by intersecting cached sub-partitions; when several
    one-smaller subsets are cached, the one with the fewest groups is chosen
    as the composition base (fewest groups ⇒ cheapest product).

    Single-attribute partitions (and the empty set) are *pinned*: they are
    the composition basis, cost ``O(n_rows)`` each, and are never evicted.
    Multi-attribute partitions live in an LRU keyed on their
    ``stripped_size``; when ``max_positions`` is set, least-recently-used
    entries are evicted once the held position total exceeds the budget.
    Eviction never changes results — evicted partitions are recomputed on
    demand — and :attr:`stats` reports hits, misses and evictions.
    """

    def __init__(self, relation: Relation, max_positions: int | None = None) -> None:
        self.relation = relation
        #: Budget on the summed ``stripped_size`` of evictable entries
        #: (``None`` = unbounded).
        self.max_positions = max_positions
        self.stats = PartitionCacheStats()
        self._pinned: dict[frozenset[str], StrippedPartition] = {}
        self._lru: "OrderedDict[frozenset[str], StrippedPartition]" = OrderedDict()
        self._held_positions = 0

    def get(self, attributes: Iterable[str]) -> StrippedPartition:
        """Return (computing and caching if needed) the partition of ``attributes``."""
        key = frozenset(attributes)
        cached = self._pinned.get(key)
        if cached is not None:
            self.stats.hits += 1
            return cached
        cached = self._lru.get(key)
        if cached is not None:
            self.stats.hits += 1
            self._lru.move_to_end(key)
            return cached
        self.stats.misses += 1
        partition = self._compute(key)
        self._store(key, partition)
        return partition

    def _compute(self, key: frozenset[str]) -> StrippedPartition:
        if len(key) <= 1:
            return StrippedPartition.from_columns(self.relation, sorted(key))
        # Compose from the cached one-smaller subset with the fewest groups
        # (typical for level-wise exploration, where all subsets were
        # requested earlier).
        best_subset: frozenset[str] | None = None
        best: StrippedPartition | None = None
        for attribute in sorted(key):
            subset = key - {attribute}
            partition = self._pinned.get(subset)
            if partition is None:
                partition = self._lru.get(subset)
            if partition is None:
                continue
            if best is None or (partition.n_groups, partition.stripped_size) < (
                best.n_groups,
                best.stripped_size,
            ):
                best_subset, best = subset, partition
        if best is not None and best_subset is not None:
            if best_subset in self._lru:
                self._lru.move_to_end(best_subset)
            missing = next(iter(key - best_subset))
            return best.intersect(self.get([missing]))
        # Otherwise build recursively so every prefix ends up cached and can
        # be reused by sibling candidates.
        first = sorted(key)[0]
        return self.get(key - {first}).intersect(self.get([first]))

    def _store(self, key: frozenset[str], partition: StrippedPartition) -> None:
        if len(key) <= 1:
            self._pinned[key] = partition
            return
        self._lru[key] = partition
        self._held_positions += partition.stripped_size
        if self.max_positions is None:
            return
        while self._held_positions > self.max_positions and len(self._lru) > 1:
            _, evicted = self._lru.popitem(last=False)
            self._held_positions -= evicted.stripped_size
            self.stats.evictions += 1
            self.stats.evicted_positions += evicted.stripped_size

    @property
    def held_positions(self) -> int:
        """Summed ``stripped_size`` of the evictable (multi-attribute) entries."""
        return self._held_positions

    def __len__(self) -> int:
        return len(self._pinned) + len(self._lru)


def fd_holds(relation: Relation, lhs: Iterable[str], rhs: str,
             cache: PartitionCache | None = None) -> bool:
    """Check whether the FD ``lhs -> rhs`` holds on ``relation``.

    Uses partition errors; a :class:`PartitionCache` can be supplied to share
    work across many checks on the same relation.
    """
    lhs = sorted(set(lhs))
    if rhs in lhs:
        return True
    if cache is None:
        cache = PartitionCache(relation)
    lhs_partition = cache.get(lhs)
    full_partition = cache.get(list(lhs) + [rhs])
    return lhs_partition.error == full_partition.error


def fd_holds_fast(
    relation: Relation,
    lhs_partition: StrippedPartition,
    rhs: str,
) -> bool:
    """Check ``lhs -> rhs`` given the LHS partition, with early exit on violation.

    Scans each non-singleton LHS equivalence class and verifies that the RHS
    *code* (from the relation's cached column encoding) is constant within
    the class.  This avoids materialising the ``lhs ∪ {rhs}`` partition,
    which makes the (frequent) *failing* checks of selective mining almost
    free: the first class with two distinct RHS values aborts the scan.
    """
    codes, _ = relation.column_codes(rhs)
    positions, offsets = lhs_partition.positions, lhs_partition.offsets
    start = offsets[0]
    for group_id in range(1, len(offsets)):
        end = offsets[group_id]
        first = codes[positions[start]]
        for position in positions[start + 1 : end]:
            if codes[position] != first:
                return False
        start = end
    return True


def fd_violation_fraction_from_partition(
    relation: Relation,
    lhs_partition: StrippedPartition,
    rhs: str,
) -> float:
    """The g3 error of ``lhs -> rhs`` given an already-built LHS partition.

    For every equivalence class of the LHS partition, all rows except those
    carrying the most frequent RHS value must be removed; g3 is the total
    number of such removals divided by the relation size.  RHS values are
    compared through the relation's cached integer codes.
    """
    n_rows = len(relation)
    if not n_rows:
        return 0.0
    codes, _ = relation.column_codes(rhs)
    positions, offsets = lhs_partition.positions, lhs_partition.offsets
    removals = 0
    start = offsets[0]
    for group_id in range(1, len(offsets)):
        end = offsets[group_id]
        counts: dict[int, int] = {}
        get_count = counts.get
        most_frequent = 0
        for position in positions[start:end]:
            code = codes[position]
            tally = (get_count(code) or 0) + 1
            counts[code] = tally
            if tally > most_frequent:
                most_frequent = tally
        removals += (end - start) - most_frequent
        start = end
    return removals / n_rows


def fd_violation_fraction(relation: Relation, lhs: Iterable[str], rhs: str,
                          cache: PartitionCache | None = None) -> float:
    """The g3 error of ``lhs -> rhs``: fraction of rows to drop for it to hold."""
    lhs = sorted(set(lhs))
    if not len(relation):
        return 0.0
    if rhs in lhs:
        return 0.0
    if cache is None:
        cache = PartitionCache(relation)
    return fd_violation_fraction_from_partition(relation, cache.get(lhs), rhs)
