"""Stripped partitions (position list indexes) over a flat-array kernel.

A *partition* of a relation with respect to an attribute set ``X`` groups the
row positions that agree on ``X``.  The *stripped* partition drops singleton
groups; it is the central data structure of partition-based FD discovery
(TANE [Huhtala et al. 1999], FUN [Novelli & Cicchetti 2001]) and of the
validation steps used by InFine.

Key facts used by the algorithms:

* an FD ``X -> a`` holds iff the error of ``X`` equals the error of
  ``X ∪ {a}`` (equivalently, refining the partition of ``X`` by ``a`` does not
  split any group);
* partitions compose: ``partition(XY) = partition(X) * partition(Y)`` where
  ``*`` is the product implemented by :meth:`StrippedPartition.intersect`.

Kernel layout
-------------
Internally a partition is two flat arrays instead of tuples-of-tuples:

* ``positions`` — the row positions of all non-singleton groups, concatenated;
* ``offsets`` — group boundaries, so group ``i`` is
  ``positions[offsets[i]:offsets[i + 1]]``.

Construction goes through the relation's cached per-column integer encodings
(:meth:`~repro.relational.relation.Relation.column_codes`) and a counting
sort, so building, intersecting and refining partitions never hash raw row
values — only dense machine integers.  All probe loops live behind the
pluggable :mod:`~repro.relational.backend` (pure-python ``array('q')`` loops
or the vectorized numpy fast path, selected via ``REPRO_PARTITION_BACKEND``);
``intersect`` and ``refines`` are single-pass probe-table algorithms over
reusable ``n_rows``-sized scratch tables (row -> group-id mark arrays, held
in the relation-scoped byte-budgeted
:class:`~repro.relational.backend.MarkTableCache`); the side with the smaller
``||π||`` is probed into the marks of the larger one, as in TANE's linear
partition product.  :func:`validate_level` hands a whole lattice level's
candidates to the backend in one call (cross-LHS stacked on numpy, early-exit
scans on python).  The tuple-of-tuples view remains available through the
backward-compatible :attr:`StrippedPartition.groups` property.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from .backend import (
    DEFAULT_MARK_CACHE,
    MarkTableCache,
    active_state,
    get_backend,
    kernel_counters,
)
from .relation import Relation


def _marks_of(partition: "StrippedPartition") -> Sequence[int]:
    """Row position -> group id (or -1 for stripped singletons) of ``partition``.

    Served from the partition's relation-scoped mark cache (falling back to
    the process-wide default for partitions built without a relation, or
    whose weakly-bound cache died with its session).
    """
    cache = partition._mark_cache
    if cache is None:
        cache = DEFAULT_MARK_CACHE
    return cache.get(partition)


class StrippedPartition:
    """A stripped partition over the row positions of a relation.

    Parameters
    ----------
    groups:
        Equivalence classes (lists of row positions) of size at least two.
    n_rows:
        Total number of rows of the underlying relation (needed to recover
        the number of singleton classes and compute errors).
    """

    __slots__ = ("positions", "offsets", "n_rows", "_groups_cache", "_mark_cache_ref")

    def __init__(self, groups: Iterable[Sequence[int]], n_rows: int) -> None:
        positions: list[int] = []
        offsets: list[int] = [0]
        for group in groups:
            group = list(group)
            if len(group) > 1:
                positions.extend(group)
                offsets.append(len(positions))
        self.positions, self.offsets = get_backend(n_rows).adopt_flat(positions, offsets)
        self.n_rows = n_rows
        self._groups_cache: tuple[tuple[int, ...], ...] | None = None
        self._mark_cache_ref: "weakref.ref[MarkTableCache] | None" = None

    @property
    def _mark_cache(self) -> MarkTableCache | None:
        """The weakly-bound mark cache this partition was built under.

        The bound cache belongs to an engine state (one session's caches for
        one relation); holding it weakly means a partition that outlives its
        session never pins the dead session's tables in memory — once the
        owning state is collected, probes fall back to
        :data:`~repro.relational.backend.DEFAULT_MARK_CACHE`.
        """
        ref = self._mark_cache_ref
        if ref is None:
            return None
        return ref()

    @_mark_cache.setter
    def _mark_cache(self, cache: MarkTableCache | None) -> None:
        self._mark_cache_ref = None if cache is None else weakref.ref(cache)

    @classmethod
    def _from_flat(
        cls,
        positions: Sequence[int],
        offsets: Sequence[int],
        n_rows: int,
        mark_cache: MarkTableCache | None = None,
    ) -> "StrippedPartition":
        """Internal fast path: adopt already-built flat arrays (no copying)."""
        partition = object.__new__(cls)
        partition.positions = positions
        partition.offsets = offsets
        partition.n_rows = n_rows
        partition._groups_cache = None
        partition._mark_cache = mark_cache  # weakly bound (see the property)
        return partition

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_column(cls, relation: Relation, attribute: str) -> "StrippedPartition":
        """Build the stripped partition of a single attribute.

        Grouping goes through the backend's ``shard_group`` entry point:
        large inputs may be grouped shard-parallel under the active engine
        configuration (``shard_count``/``shard_min_rows``), with bytes
        identical to the sequential path either way.
        """
        codes, n_codes, counts = relation._encode_column(attribute)
        positions, offsets = get_backend(len(relation)).shard_group(codes, n_codes, counts)
        return cls._from_flat(positions, offsets, len(relation), relation.mark_cache)

    @classmethod
    def from_columns(cls, relation: Relation, attributes: Sequence[str]) -> "StrippedPartition":
        """Build the stripped partition of an attribute combination directly."""
        if not attributes:
            # The empty attribute set puts every row in one class.
            partition = cls([range(len(relation))], len(relation))
            partition._mark_cache = relation.mark_cache
            return partition
        if len(attributes) == 1:
            return cls.from_column(relation, attributes[0])
        backend = get_backend(len(relation))
        codes, n_codes = backend.encode_columns(relation, attributes)
        positions, offsets = backend.shard_group(codes, n_codes)
        return cls._from_flat(positions, offsets, len(relation), relation.mark_cache)

    # -- views ----------------------------------------------------------------
    @property
    def groups(self) -> tuple[tuple[int, ...], ...]:
        """The non-singleton classes as tuples (materialised lazily)."""
        cached = self._groups_cache
        if cached is None:
            positions, offsets = self.flat_lists()
            cached = tuple(
                tuple(positions[offsets[i] : offsets[i + 1]])
                for i in range(len(offsets) - 1)
            )
            self._groups_cache = cached
        return cached

    def flat_lists(self) -> tuple[list[int], list[int]]:
        """The flat ``(positions, offsets)`` arrays as plain python lists.

        Copy-free on the python backend; a single bulk ``tolist()`` on
        numpy.  This is the accessor pure-python consumers (FastFDs' pair
        enumeration, HyFD's focused sampling) iterate instead of
        materialising per-group lists: group ``i`` spans
        ``positions[offsets[i]:offsets[i + 1]]``.
        """
        positions, offsets = self.positions, self.offsets
        if not isinstance(positions, list):
            positions = positions.tolist()
        if not isinstance(offsets, list):
            offsets = offsets.tolist()
        return positions, offsets

    def iter_groups(self) -> Iterator[list[int]]:
        """Iterate over the classes as fresh lists, without caching tuples."""
        positions, offsets = self.flat_lists()
        start = offsets[0]
        for i in range(1, len(offsets)):
            end = offsets[i]
            yield positions[start:end]
            start = end

    # -- measures -------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        """Number of non-singleton equivalence classes."""
        return len(self.offsets) - 1

    @property
    def stripped_size(self) -> int:
        """Total number of positions kept in non-singleton classes (``||π||``)."""
        return len(self.positions)

    @property
    def error(self) -> int:
        """The TANE error ``e(X) = ||π|| - |π|``.

        ``X -> a`` holds exactly iff ``error(X) == error(X ∪ {a})``.
        """
        return len(self.positions) - (len(self.offsets) - 1)

    @property
    def distinct_count(self) -> int:
        """Number of distinct values (classes including singletons)."""
        return self.n_rows - len(self.positions) + (len(self.offsets) - 1)

    def is_key(self) -> bool:
        """Whether the attribute set is a (super)key: every class is a singleton."""
        return len(self.positions) == 0

    def g3_error(self) -> float:
        """The g3 measure used for approximate FDs when this partition refines RHS.

        Here this returns the *fraction of rows that must be removed* for the
        partition to become a key, which is the standard normalisation of the
        TANE error used for AFD thresholds.
        """
        if self.n_rows == 0:
            return 0.0
        return self.error / self.n_rows

    # -- operations -----------------------------------------------------------
    def intersect(self, other: "StrippedPartition") -> "StrippedPartition":
        """Partition product ``π(X) * π(Y) = π(XY)`` (linear-time algorithm).

        The side with the smaller ``||π||`` is probed, group by group, against
        the row -> group-id mark table of the larger side — TANE's linear
        product, with the mark tables amortised across calls by the
        relation-scoped byte-budgeted cache.  The probe itself runs on the
        active :mod:`~repro.relational.backend`.
        """
        if self.n_rows != other.n_rows:
            raise ValueError("cannot intersect partitions over different relations")
        mark_cache = self._mark_cache if self._mark_cache is not None else other._mark_cache
        backend = get_backend(self.n_rows)
        if len(self.positions) == 0 or len(other.positions) == 0:
            # A key on either side leaves only singletons in the product.
            empty_positions, empty_offsets = backend.adopt_flat([], [0])
            return StrippedPartition._from_flat(
                empty_positions, empty_offsets, self.n_rows, mark_cache
            )
        if len(self.positions) <= len(other.positions):
            probe, build = self, other
        else:
            probe, build = other, self
        marks = _marks_of(build)
        positions, offsets = backend.intersect_marks(
            probe.positions, probe.offsets, marks, build.n_groups
        )
        return StrippedPartition._from_flat(positions, offsets, self.n_rows, mark_cache)

    def refines(self, other: "StrippedPartition") -> bool:
        """Whether every class of ``self`` is contained in a class of ``other``.

        ``π(X) refines π(A)`` is exactly the condition for ``X -> A``.
        """
        if self.n_rows != other.n_rows:
            raise ValueError("cannot compare partitions over different relations")
        if len(self.positions) == 0:
            return True
        marks = _marks_of(other)
        return get_backend(self.n_rows).refines_marks(self.positions, self.offsets, marks)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StrippedPartition):
            return NotImplemented
        mine = {frozenset(group) for group in self.iter_groups()}
        theirs = {frozenset(group) for group in other.iter_groups()}
        return self.n_rows == other.n_rows and mine == theirs

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash((self.n_rows, frozenset(frozenset(g) for g in self.iter_groups())))

    def __repr__(self) -> str:
        return f"StrippedPartition(groups={self.n_groups}, rows={self.n_rows}, error={self.error})"


@dataclass
class PartitionCacheStats:
    """Hit/miss/eviction counters of one :class:`PartitionCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    evicted_positions: int = 0

    @property
    def requests(self) -> int:
        """Total number of :meth:`PartitionCache.get` calls."""
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of requests answered from the cache (0.0 when unused)."""
        requests = self.hits + self.misses
        return self.hits / requests if requests else 0.0

    def as_dict(self) -> dict[str, int | float]:
        """Plain-dict view for ``DiscoveryStats.extra`` reporting."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "evicted_positions": self.evicted_positions,
            "hit_rate": round(self.hit_rate, 4),
        }


class PartitionCache:
    """Memoising, memory-bounded cache of stripped partitions for one relation.

    Attribute combinations are cached by frozenset of attribute names.
    Combinations are built either directly from the column encodings (for
    small sets) or by intersecting cached sub-partitions; when several
    one-smaller subsets are cached, the one with the fewest groups is chosen
    as the composition base (fewest groups ⇒ cheapest product).

    Single-attribute partitions (and the empty set) are *pinned*: they are
    the composition basis, cost ``O(n_rows)`` each, and are never evicted.
    Multi-attribute partitions live in an LRU keyed on their
    ``stripped_size``; when ``max_positions`` is set, least-recently-used
    entries are evicted once the held position total exceeds the budget.
    Eviction never changes results — evicted partitions are recomputed on
    demand — and :attr:`stats` reports hits, misses and evictions (also
    mirrored into the process-wide kernel counters).
    """

    def __init__(self, relation: Relation, max_positions: int | None = None) -> None:
        self.relation = relation
        #: Budget on the summed ``stripped_size`` of evictable entries
        #: (``None`` = unbounded).
        self.max_positions = max_positions
        self.stats = PartitionCacheStats()
        self._pinned: dict[frozenset[str], StrippedPartition] = {}
        self._lru: "OrderedDict[frozenset[str], StrippedPartition]" = OrderedDict()
        self._held_positions = 0

    def get(self, attributes: Iterable[str]) -> StrippedPartition:
        """Return (computing and caching if needed) the partition of ``attributes``."""
        counters = kernel_counters()
        key = frozenset(attributes)
        cached = self._pinned.get(key)
        if cached is not None:
            self.stats.hits += 1
            counters.partition_hits += 1
            return cached
        cached = self._lru.get(key)
        if cached is not None:
            self.stats.hits += 1
            counters.partition_hits += 1
            self._lru.move_to_end(key)
            return cached
        self.stats.misses += 1
        counters.partition_misses += 1
        partition = self._compute(key)
        self._store(key, partition)
        return partition

    def _compute(self, key: frozenset[str]) -> StrippedPartition:
        if len(key) <= 1:
            return StrippedPartition.from_columns(self.relation, sorted(key))
        # Compose from the cached one-smaller subset with the fewest groups
        # (typical for level-wise exploration, where all subsets were
        # requested earlier).
        best_subset: frozenset[str] | None = None
        best: StrippedPartition | None = None
        for attribute in sorted(key):
            subset = key - {attribute}
            partition = self._pinned.get(subset)
            if partition is None:
                partition = self._lru.get(subset)
            if partition is None:
                continue
            if best is None or (partition.n_groups, partition.stripped_size) < (
                best.n_groups,
                best.stripped_size,
            ):
                best_subset, best = subset, partition
        if best is not None and best_subset is not None:
            if best_subset in self._lru:
                self._lru.move_to_end(best_subset)
            missing = next(iter(key - best_subset))
            return best.intersect(self.get([missing]))
        # Otherwise build recursively so every prefix ends up cached and can
        # be reused by sibling candidates.
        first = sorted(key)[0]
        return self.get(key - {first}).intersect(self.get([first]))

    def _store(self, key: frozenset[str], partition: StrippedPartition) -> None:
        if len(key) <= 1:
            self._pinned[key] = partition
            return
        self._lru[key] = partition
        self._held_positions += partition.stripped_size
        if self.max_positions is None:
            return
        counters = kernel_counters()
        while self._held_positions > self.max_positions and len(self._lru) > 1:
            _, evicted = self._lru.popitem(last=False)
            self._held_positions -= evicted.stripped_size
            self.stats.evictions += 1
            self.stats.evicted_positions += evicted.stripped_size
            counters.partition_evictions += 1
            counters.partition_evicted_positions += evicted.stripped_size

    @property
    def held_positions(self) -> int:
        """Summed ``stripped_size`` of the evictable (multi-attribute) entries."""
        return self._held_positions

    def __len__(self) -> int:
        return len(self._pinned) + len(self._lru)


def make_partition_cache(
    relation: Relation, max_positions: int | None = None
) -> PartitionCache:
    """A :class:`PartitionCache` configured from the active engine state.

    ``max_positions`` defaults to the active
    :class:`~repro.config.EngineConfig`'s
    ``partition_cache_max_positions`` (``None`` = unbounded); an explicit
    argument always wins.  Algorithm-owned caches go through this helper so
    a :class:`~repro.session.Session` can bound their memory in one place.
    """
    if max_positions is None:
        max_positions = active_state().config.partition_cache_max_positions
    return PartitionCache(relation, max_positions=max_positions)


def fd_holds(
    relation: Relation, lhs: Iterable[str], rhs: str, cache: PartitionCache | None = None
) -> bool:
    """Check whether the FD ``lhs -> rhs`` holds on ``relation``.

    Uses partition errors; a :class:`PartitionCache` can be supplied to share
    work across many checks on the same relation.
    """
    lhs = sorted(set(lhs))
    if rhs in lhs:
        return True
    if cache is None:
        cache = make_partition_cache(relation)
    lhs_partition = cache.get(lhs)
    full_partition = cache.get(list(lhs) + [rhs])
    return lhs_partition.error == full_partition.error


def fd_holds_fast(
    relation: Relation,
    lhs_partition: StrippedPartition,
    rhs: str,
) -> bool:
    """Check ``lhs -> rhs`` given the LHS partition, without building ``lhs ∪ {rhs}``.

    Verifies that the RHS *code* (from the relation's cached column encoding)
    is constant within every non-singleton LHS equivalence class.  On the
    python backend the scan aborts at the first class with two distinct RHS
    values, which makes the (frequent) *failing* checks of selective mining
    almost free; the numpy backend answers with one boolean-mask pass.
    """
    codes, _ = relation.column_codes(rhs)
    return get_backend(len(relation)).constant_within_groups(
        lhs_partition.positions, lhs_partition.offsets, codes
    )


def fd_violation_fraction_from_partition(
    relation: Relation,
    lhs_partition: StrippedPartition,
    rhs: str,
) -> float:
    """The g3 error of ``lhs -> rhs`` given an already-built LHS partition.

    For every equivalence class of the LHS partition, all rows except those
    carrying the most frequent RHS value must be removed; g3 is the total
    number of such removals divided by the relation size.  RHS values are
    compared through the relation's cached integer codes.
    """
    n_rows = len(relation)
    if not n_rows:
        return 0.0
    codes, _ = relation.column_codes(rhs)
    removals = get_backend(n_rows).g3_removals(
        lhs_partition.positions, lhs_partition.offsets, codes
    )
    return removals / n_rows


def fd_violation_fraction(
    relation: Relation, lhs: Iterable[str], rhs: str, cache: PartitionCache | None = None
) -> float:
    """The g3 error of ``lhs -> rhs``: fraction of rows to drop for it to hold."""
    lhs = sorted(set(lhs))
    if not len(relation):
        return 0.0
    if rhs in lhs:
        return 0.0
    if cache is None:
        cache = make_partition_cache(relation)
    return fd_violation_fraction_from_partition(relation, cache.get(lhs), rhs)


# ---------------------------------------------------------------------------
# Batched candidate validation (one lattice level at a time).
# ---------------------------------------------------------------------------


def validate_level(
    relation: Relation,
    candidates: Sequence[tuple[StrippedPartition, str]],
) -> list[bool]:
    """Exact validity of a batch of ``(lhs_partition, rhs)`` candidates.

    ``X -> a`` holds iff the codes of ``a`` are constant within every
    non-singleton class of ``π(X)``.  The whole level is handed to the
    backend as **one call** (``validate_level_groups``): candidates are
    grouped by identical LHS partition, and the numpy backend additionally
    stacks candidates of *different* LHS partitions that check the same RHS
    column into shared gathers, so TANE/FUN/ApproximateTANE pay dispatch
    overhead per level rather than per candidate or per LHS.  The python
    backend keeps its early-exit scan per candidate.  Verdicts come back in
    input order and are bit-identical across backends — and identical again
    when batching is disabled through the active engine configuration
    (``EngineConfig.batch_validation`` / ``batch_min_candidates``), which
    replays the scalar per-candidate loop.
    """
    if not candidates:
        return []
    results = [True] * len(candidates)
    if not len(relation):
        # Every FD holds vacuously on an empty instance.
        return results
    state = active_state()
    backend = get_backend(len(relation))
    if not _should_batch(state, len(candidates)):
        for index, (partition, rhs) in enumerate(candidates):
            if len(partition.positions) == 0:
                continue  # a superkey LHS validates every RHS
            codes, _ = relation.column_codes(rhs)
            results[index] = backend.constant_within_groups(
                partition.positions, partition.offsets, codes
            )
        return results
    state.counters.batched_levels += 1
    state.counters.batched_candidates += len(candidates)
    level_groups, slots = _level_groups(relation, candidates)
    for indices, verdicts in zip(slots, backend.validate_level_groups(level_groups)):
        for index, verdict in zip(indices, verdicts):
            results[index] = verdict
    return results


def validate_level_errors(
    relation: Relation,
    candidates: Sequence[tuple[StrippedPartition, str]],
) -> list[float]:
    """Batched g3 errors of ``(lhs_partition, rhs)`` candidates (input order).

    The batched counterpart of :func:`fd_violation_fraction_from_partition`,
    used by approximate discovery to grade a whole lattice level in one
    backend call (``validate_level_error_groups``).
    """
    if not candidates:
        return []
    n_rows = len(relation)
    errors = [0.0] * len(candidates)
    if not n_rows:
        return errors
    state = active_state()
    backend = get_backend(n_rows)
    if not _should_batch(state, len(candidates)):
        for index, (partition, rhs) in enumerate(candidates):
            if len(partition.positions) == 0:
                continue  # a superkey LHS violates nothing
            codes, _ = relation.column_codes(rhs)
            removed = backend.g3_removals(partition.positions, partition.offsets, codes)
            errors[index] = removed / n_rows
        return errors
    state.counters.batched_levels += 1
    state.counters.batched_candidates += len(candidates)
    level_groups, slots = _level_groups(relation, candidates)
    for indices, removals in zip(slots, backend.validate_level_error_groups(level_groups)):
        for index, removed in zip(indices, removals):
            errors[index] = removed / n_rows
    return errors


def _should_batch(state, n_candidates: int) -> bool:
    """Whether the active configuration admits batching this candidate set."""
    config = state.config
    return config.batch_validation and n_candidates >= config.batch_min_candidates


def _group_by_partition(
    candidates: Sequence[tuple[StrippedPartition, str]],
) -> Iterator[tuple[StrippedPartition, list[int]]]:
    """Group candidate indices by (identical) LHS partition, input order kept."""
    grouped: "OrderedDict[int, tuple[StrippedPartition, list[int]]]" = OrderedDict()
    for index, (partition, _) in enumerate(candidates):
        entry = grouped.get(id(partition))
        if entry is None:
            grouped[id(partition)] = (partition, [index])
        else:
            entry[1].append(index)
    return iter(grouped.values())


def _level_groups(
    relation: Relation,
    candidates: Sequence[tuple[StrippedPartition, str]],
) -> tuple[list[tuple], list[list[int]]]:
    """The level's ``(positions, offsets, codes_list)`` triples + index slots.

    One triple per distinct non-superkey LHS partition (superkey LHSs are
    dropped — they validate every RHS with zero violations, matching the
    defaults of the callers' result arrays); ``slots[i]`` holds the original
    candidate indices answered by the backend's ``i``-th verdict list.  RHS
    code columns come from the relation's per-attribute cache, so candidates
    sharing an attribute hand the backend the *same* object — the hook the
    numpy backend keys its cross-LHS column stacking on.
    """
    level_groups: list[tuple] = []
    slots: list[list[int]] = []
    for partition, indices in _group_by_partition(candidates):
        if len(partition.positions) == 0:
            continue
        codes_list = [relation.column_codes(candidates[i][1])[0] for i in indices]
        level_groups.append((partition.positions, partition.offsets, codes_list))
        slots.append(indices)
    return level_groups, slots
