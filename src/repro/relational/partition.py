"""Stripped partitions (position list indexes).

A *partition* of a relation with respect to an attribute set ``X`` groups the
row positions that agree on ``X``.  The *stripped* partition drops singleton
groups; it is the central data structure of partition-based FD discovery
(TANE [Huhtala et al. 1999], FUN [Novelli & Cicchetti 2001]) and of the
validation steps used by InFine.

Key facts used by the algorithms:

* an FD ``X -> a`` holds iff the error of ``X`` equals the error of
  ``X ∪ {a}`` (equivalently, refining the partition of ``X`` by ``a`` does not
  split any group);
* partitions compose: ``partition(XY) = partition(X) * partition(Y)`` where
  ``*`` is the product implemented by :meth:`StrippedPartition.intersect`.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Sequence

from .relation import Relation


class StrippedPartition:
    """A stripped partition over the row positions of a relation.

    Parameters
    ----------
    groups:
        Equivalence classes (lists of row positions) of size at least two.
    n_rows:
        Total number of rows of the underlying relation (needed to recover
        the number of singleton classes and compute errors).
    """

    __slots__ = ("groups", "n_rows")

    def __init__(self, groups: Iterable[Sequence[int]], n_rows: int) -> None:
        self.groups: tuple[tuple[int, ...], ...] = tuple(
            tuple(group) for group in groups if len(group) > 1
        )
        self.n_rows = n_rows

    # -- construction ---------------------------------------------------------
    @classmethod
    def from_column(cls, relation: Relation, attribute: str) -> "StrippedPartition":
        """Build the stripped partition of a single attribute."""
        index: dict[object, list[int]] = defaultdict(list)
        column_idx = relation.schema.index_of(attribute)
        for position, row in enumerate(relation.rows):
            index[row[column_idx]].append(position)
        return cls(index.values(), len(relation))

    @classmethod
    def from_columns(cls, relation: Relation, attributes: Sequence[str]) -> "StrippedPartition":
        """Build the stripped partition of an attribute combination directly."""
        if not attributes:
            # The empty attribute set puts every row in one class.
            return cls([list(range(len(relation)))], len(relation))
        idxs = relation.schema.indexes_of(attributes)
        index: dict[tuple, list[int]] = defaultdict(list)
        for position, row in enumerate(relation.rows):
            index[tuple(row[i] for i in idxs)].append(position)
        return cls(index.values(), len(relation))

    # -- measures -------------------------------------------------------------
    @property
    def n_groups(self) -> int:
        """Number of non-singleton equivalence classes."""
        return len(self.groups)

    @property
    def stripped_size(self) -> int:
        """Total number of positions kept in non-singleton classes (``||π||``)."""
        return sum(len(group) for group in self.groups)

    @property
    def error(self) -> int:
        """The TANE error ``e(X) = ||π|| - |π|``.

        ``X -> a`` holds exactly iff ``error(X) == error(X ∪ {a})``.
        """
        return self.stripped_size - self.n_groups

    @property
    def distinct_count(self) -> int:
        """Number of distinct values (classes including singletons)."""
        return self.n_rows - self.stripped_size + self.n_groups

    def is_key(self) -> bool:
        """Whether the attribute set is a (super)key: every class is a singleton."""
        return not self.groups

    def g3_error(self) -> float:
        """The g3 measure used for approximate FDs when this partition refines RHS.

        Here this returns the *fraction of rows that must be removed* for the
        partition to become a key, which is the standard normalisation of the
        TANE error used for AFD thresholds.
        """
        if self.n_rows == 0:
            return 0.0
        return self.error / self.n_rows

    # -- operations -----------------------------------------------------------
    def intersect(self, other: "StrippedPartition") -> "StrippedPartition":
        """Partition product ``π(X) * π(Y) = π(XY)`` (linear-time algorithm)."""
        if self.n_rows != other.n_rows:
            raise ValueError("cannot intersect partitions over different relations")
        # Map each position covered by `self` to its group id.
        group_of: dict[int, int] = {}
        for group_id, group in enumerate(self.groups):
            for position in group:
                group_of[position] = group_id
        # Probe with `other`; positions not covered by `self` are singletons there.
        buckets: dict[tuple[int, int], list[int]] = defaultdict(list)
        for other_id, group in enumerate(other.groups):
            for position in group:
                own_id = group_of.get(position)
                if own_id is not None:
                    buckets[(own_id, other_id)].append(position)
        return StrippedPartition(buckets.values(), self.n_rows)

    def refines(self, other: "StrippedPartition") -> bool:
        """Whether every class of ``self`` is contained in a class of ``other``.

        ``π(X) refines π(A)`` is exactly the condition for ``X -> A``.
        """
        if self.n_rows != other.n_rows:
            raise ValueError("cannot compare partitions over different relations")
        class_of: dict[int, int] = {}
        for group_id, group in enumerate(other.groups):
            for position in group:
                class_of[position] = group_id
        for group in self.groups:
            first = class_of.get(group[0], -1 - group[0])
            for position in group[1:]:
                if class_of.get(position, -1 - position) != first:
                    return False
        return True

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, StrippedPartition):
            return NotImplemented
        mine = {frozenset(group) for group in self.groups}
        theirs = {frozenset(group) for group in other.groups}
        return self.n_rows == other.n_rows and mine == theirs

    def __hash__(self) -> int:  # pragma: no cover - not used as dict key
        return hash((self.n_rows, frozenset(frozenset(g) for g in self.groups)))

    def __repr__(self) -> str:
        return f"StrippedPartition(groups={self.n_groups}, rows={self.n_rows}, error={self.error})"


class PartitionCache:
    """Memoising cache of stripped partitions for one relation.

    Attribute combinations are cached by frozenset of attribute names.
    Combinations are built either directly from the columns (for small sets)
    or by intersecting cached sub-partitions, whichever is available.
    """

    def __init__(self, relation: Relation) -> None:
        self.relation = relation
        self._cache: dict[frozenset[str], StrippedPartition] = {}

    def get(self, attributes: Iterable[str]) -> StrippedPartition:
        """Return (computing and caching if needed) the partition of ``attributes``."""
        key = frozenset(attributes)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        partition = self._compute(key)
        self._cache[key] = partition
        return partition

    def _compute(self, key: frozenset[str]) -> StrippedPartition:
        if len(key) <= 1:
            return StrippedPartition.from_columns(self.relation, sorted(key))
        # Prefer composing from a cached subset of size |key| - 1 (typical for
        # level-wise exploration, where all subsets were requested earlier).
        for attribute in sorted(key):
            subset = key - {attribute}
            if subset in self._cache:
                return self._cache[subset].intersect(self.get([attribute]))
        # Otherwise build recursively so every prefix ends up cached and can
        # be reused by sibling candidates.
        first = sorted(key)[0]
        return self.get(key - {first}).intersect(self.get([first]))

    def __len__(self) -> int:
        return len(self._cache)


def fd_holds(relation: Relation, lhs: Iterable[str], rhs: str,
             cache: PartitionCache | None = None) -> bool:
    """Check whether the FD ``lhs -> rhs`` holds on ``relation``.

    Uses partition errors; a :class:`PartitionCache` can be supplied to share
    work across many checks on the same relation.
    """
    lhs = sorted(set(lhs))
    if rhs in lhs:
        return True
    if cache is None:
        cache = PartitionCache(relation)
    lhs_partition = cache.get(lhs)
    full_partition = cache.get(list(lhs) + [rhs])
    return lhs_partition.error == full_partition.error


def fd_holds_fast(
    relation: Relation,
    lhs_partition: StrippedPartition,
    rhs: str,
) -> bool:
    """Check ``lhs -> rhs`` given the LHS partition, with early exit on violation.

    Scans each non-singleton LHS equivalence class and verifies that the RHS
    value is constant within the class.  This avoids materialising the
    ``lhs ∪ {rhs}`` partition, which makes the (frequent) *failing* checks of
    selective mining almost free: the first class with two distinct RHS
    values aborts the scan.
    """
    rhs_idx = relation.schema.index_of(rhs)
    rows = relation.rows
    for group in lhs_partition.groups:
        first_value = rows[group[0]][rhs_idx]
        for position in group[1:]:
            if rows[position][rhs_idx] != first_value:
                return False
    return True


def fd_violation_fraction(relation: Relation, lhs: Iterable[str], rhs: str,
                          cache: PartitionCache | None = None) -> float:
    """The g3 error of ``lhs -> rhs``: fraction of rows to drop for it to hold.

    For every equivalence class of the LHS partition, all rows except those
    carrying the most frequent RHS value must be removed; g3 is the total
    number of such removals divided by the relation size.
    """
    lhs = sorted(set(lhs))
    if not len(relation):
        return 0.0
    if rhs in lhs:
        return 0.0
    if cache is None:
        cache = PartitionCache(relation)
    lhs_partition = cache.get(lhs)
    rhs_idx = relation.schema.index_of(rhs)
    rows = relation.rows
    removals = 0
    for group in lhs_partition.groups:
        counts: dict[object, int] = defaultdict(int)
        for position in group:
            counts[rows[position][rhs_idx]] += 1
        removals += len(group) - max(counts.values())
    return removals / len(relation)
