"""Selection predicates for SPJ view specifications.

Predicates form a small expression AST evaluated against row dictionaries.
They cover the fragment needed by the paper's SPJ views (comparisons against
constants, attribute-to-attribute comparisons, conjunction, disjunction,
negation, set membership and NULL tests).
"""

from __future__ import annotations

import operator
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Any, Callable, Iterable, Mapping

_COMPARATORS: dict[str, Callable[[Any, Any], bool]] = {
    "==": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


class PredicateError(ValueError):
    """Raised when a predicate is malformed or references unknown attributes."""


class Predicate(ABC):
    """Base class of the selection-predicate AST."""

    @abstractmethod
    def evaluate(self, row: Mapping[str, Any]) -> bool:
        """Evaluate the predicate on a row mapping attribute name -> value."""

    @abstractmethod
    def attributes(self) -> frozenset[str]:
        """The attributes the predicate refers to."""

    @abstractmethod
    def describe(self) -> str:
        """A SQL-flavoured rendering used in provenance sub-query strings."""

    # Convenient composition operators.
    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)

    def __str__(self) -> str:  # pragma: no cover - delegation
        return self.describe()


@dataclass(frozen=True)
class Comparison(Predicate):
    """``attribute <op> constant`` comparison.

    Comparisons against NULL rows are false (three-valued logic collapsed to
    boolean), except for explicit equality with ``None``.
    """

    attribute: str
    op: str
    value: Any

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise PredicateError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        if self.attribute not in row:
            raise PredicateError(f"row has no attribute {self.attribute!r}")
        actual = row[self.attribute]
        if actual is None or self.value is None:
            if self.op == "==":
                return actual is None and self.value is None
            if self.op == "!=":
                return (actual is None) != (self.value is None)
            return False
        try:
            return _COMPARATORS[self.op](actual, self.value)
        except TypeError:
            # Incomparable types (e.g. str vs int) never satisfy an ordering.
            return False

    def attributes(self) -> frozenset[str]:
        return frozenset({self.attribute})

    def describe(self) -> str:
        return f"{self.attribute} {self.op} {self.value!r}"


@dataclass(frozen=True)
class AttributeComparison(Predicate):
    """``left_attribute <op> right_attribute`` comparison within one row."""

    left: str
    op: str
    right: str

    def __post_init__(self) -> None:
        if self.op not in _COMPARATORS:
            raise PredicateError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        lhs, rhs = row.get(self.left), row.get(self.right)
        if lhs is None or rhs is None:
            return self.op == "==" and lhs is None and rhs is None
        try:
            return _COMPARATORS[self.op](lhs, rhs)
        except TypeError:
            return False

    def attributes(self) -> frozenset[str]:
        return frozenset({self.left, self.right})

    def describe(self) -> str:
        return f"{self.left} {self.op} {self.right}"


@dataclass(frozen=True)
class InSet(Predicate):
    """``attribute IN (v1, v2, ...)`` membership test."""

    attribute: str
    values: frozenset

    def __init__(self, attribute: str, values: Iterable[Any]) -> None:
        object.__setattr__(self, "attribute", attribute)
        object.__setattr__(self, "values", frozenset(values))

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return row.get(self.attribute) in self.values

    def attributes(self) -> frozenset[str]:
        return frozenset({self.attribute})

    def describe(self) -> str:
        rendered = ", ".join(sorted(repr(v) for v in self.values))
        return f"{self.attribute} IN ({rendered})"


@dataclass(frozen=True)
class IsNull(Predicate):
    """``attribute IS [NOT] NULL`` test."""

    attribute: str
    negated: bool = False

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        is_null = row.get(self.attribute) is None
        return not is_null if self.negated else is_null

    def attributes(self) -> frozenset[str]:
        return frozenset({self.attribute})

    def describe(self) -> str:
        return f"{self.attribute} IS {'NOT ' if self.negated else ''}NULL"


@dataclass(frozen=True)
class And(Predicate):
    """Logical conjunction of two predicates."""

    left: Predicate
    right: Predicate

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return self.left.evaluate(row) and self.right.evaluate(row)

    def attributes(self) -> frozenset[str]:
        return self.left.attributes() | self.right.attributes()

    def describe(self) -> str:
        return f"({self.left.describe()} AND {self.right.describe()})"


@dataclass(frozen=True)
class Or(Predicate):
    """Logical disjunction of two predicates."""

    left: Predicate
    right: Predicate

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return self.left.evaluate(row) or self.right.evaluate(row)

    def attributes(self) -> frozenset[str]:
        return self.left.attributes() | self.right.attributes()

    def describe(self) -> str:
        return f"({self.left.describe()} OR {self.right.describe()})"


@dataclass(frozen=True)
class Not(Predicate):
    """Logical negation of a predicate."""

    child: Predicate

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return not self.child.evaluate(row)

    def attributes(self) -> frozenset[str]:
        return self.child.attributes()

    def describe(self) -> str:
        return f"(NOT {self.child.describe()})"


@dataclass(frozen=True)
class TruePredicate(Predicate):
    """A predicate that accepts every row (useful as a neutral element)."""

    def evaluate(self, row: Mapping[str, Any]) -> bool:
        return True

    def attributes(self) -> frozenset[str]:
        return frozenset()

    def describe(self) -> str:
        return "TRUE"


def conjunction(predicates: Iterable[Predicate]) -> Predicate:
    """Combine several predicates with AND; returns TRUE if none are given."""
    result: Predicate | None = None
    for predicate in predicates:
        result = predicate if result is None else And(result, predicate)
    return result if result is not None else TruePredicate()


# Short constructor aliases used by the dataset/view definitions.
def eq(attribute: str, value: Any) -> Comparison:
    """``attribute == value``."""
    return Comparison(attribute, "==", value)


def ne(attribute: str, value: Any) -> Comparison:
    """``attribute != value``."""
    return Comparison(attribute, "!=", value)


def lt(attribute: str, value: Any) -> Comparison:
    """``attribute < value``."""
    return Comparison(attribute, "<", value)


def le(attribute: str, value: Any) -> Comparison:
    """``attribute <= value``."""
    return Comparison(attribute, "<=", value)


def gt(attribute: str, value: Any) -> Comparison:
    """``attribute > value``."""
    return Comparison(attribute, ">", value)


def ge(attribute: str, value: Any) -> Comparison:
    """``attribute >= value``."""
    return Comparison(attribute, ">=", value)
