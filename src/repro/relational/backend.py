"""Pluggable vectorized backends for the partition kernel.

The probe loops of the stripped-partition kernel (grouping, partition
product, refinement, g3 counting) bottom out in a handful of primitives over
flat integer arrays.  This module isolates those primitives behind a
:class:`PartitionBackend` interface with two interchangeable
implementations:

* :class:`PythonBackend` — the pure-python ``list``/``array('q')`` loops of
  the columnar kernel (always available, no dependencies);
* :class:`NumpyBackend` — a vectorized fast path built on ``np.argsort`` /
  factorize-style grouping and boolean-mask probes, auto-selected whenever
  numpy is importable.

Both backends are **bit-compatible**: group order (first-value-appearance),
position order inside groups (ascending probe order) and dense-code
assignment (first-appearance factorisation) are identical, so every
downstream artefact — discovered FD sets, CLI tables, provenance triples —
is byte-identical regardless of the active backend.

Selection
---------
Backend choice, cache budgets and counters all live on an *engine state*
(:class:`EngineState`): the resolved runtime of one
:class:`~repro.config.EngineConfig`.  ``get_backend(n_rows=None)`` resolves
against the *active* state (a context variable installed by
:meth:`repro.session.Session.activate`; when no session is active, a lazy
module-level default built from the environment — the pre-session
behaviour):

* ``EngineConfig.backend`` (defaulting to the ``REPRO_PARTITION_BACKEND``
  environment variable) forces ``python`` or ``numpy`` explicitly; ``auto``
  selects numpy whenever importable (install the ``fast`` extra —
  ``pip install .[fast]`` — to guarantee the vectorized path);
* under ``auto``, relations smaller than
  ``EngineConfig.backend_min_numpy_rows`` resolve to the pure-python loops
  (their lower constant factors beat numpy's fixed per-call cost on micro
  inputs); pass ``n_rows`` to opt a call site into the heuristic.

``use_backend()``/``set_backend()`` remain as *process-wide test/benchmark
pins* that take precedence over any session configuration.

The module also hosts the relation-scoped, byte-budgeted
:class:`MarkTableCache` (the reusable row -> group-id scratch tables of the
probe algorithms) and the :class:`KernelCounters` incremented by every
kernel-level cache.  Counters are **state-scoped**: each
:class:`~repro.session.Session` owns its own instance, so concurrent
sessions never double-count each other's work; the module-level
:data:`KERNEL_COUNTERS` is the default state's instance.
"""

from __future__ import annotations

import os
import threading
import time
import weakref
from array import array
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, Iterator, Sequence

from ..config import (
    DEFAULT_MARKS_CACHE_BYTES,
    ENV_BACKEND,
    ENV_COMBINED_CACHE_ENTRIES,
    ENV_MARKS_CACHE_BYTES,
    EngineConfig,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids import cycles
    from .relation import Relation

try:  # pragma: no cover - exercised via the fallback tests
    import numpy as _np
except ImportError:  # pragma: no cover - the container always ships numpy
    _np = None

#: Environment variable forcing the backend (``python`` / ``numpy`` / ``auto``).
BACKEND_ENV_VAR = ENV_BACKEND

#: Environment variable overriding the mark-table cache budget in bytes.
MARKS_BUDGET_ENV_VAR = ENV_MARKS_CACHE_BYTES

#: Default mark-table budget: sixteen ~1M-row tables at 8 bytes per row.
DEFAULT_MARKS_BUDGET_BYTES = DEFAULT_MARKS_CACHE_BYTES

#: Environment variable overriding the combined-codes prefix cache size.
COMBINED_CACHE_ENV_VAR = ENV_COMBINED_CACHE_ENTRIES


# ---------------------------------------------------------------------------
# State-scoped kernel counters (snapshotted into DiscoveryStats.extra).
# ---------------------------------------------------------------------------


@dataclass
class KernelCounters:
    """Aggregate hit/miss/eviction counters of every kernel-level cache.

    Each :class:`EngineState` (and therefore each
    :class:`~repro.session.Session`) owns one instance, incremented by all
    :class:`MarkTableCache` and ``PartitionCache`` instances and by the
    per-relation combined-codes prefix caches running under that state, so a
    snapshot/delta pair brackets exactly the kernel work of one discovery
    run and two concurrent sessions never pollute each other's numbers.
    :data:`KERNEL_COUNTERS` is the default state's instance.
    """

    mark_hits: int = 0
    mark_misses: int = 0
    mark_evictions: int = 0
    mark_evicted_bytes: int = 0
    partition_hits: int = 0
    partition_misses: int = 0
    partition_evictions: int = 0
    partition_evicted_positions: int = 0
    combined_prefix_hits: int = 0
    combined_prefix_misses: int = 0
    combined_prefix_evictions: int = 0
    batched_levels: int = 0
    batched_candidates: int = 0
    counting_sorts: int = 0
    introsorts: int = 0
    sharded_groupings: int = 0

    def __post_init__(self) -> None:
        #: Per-shard sort seconds of the most recent sharded grouping (not a
        #: counter field: a volatile trace, excluded from snapshot()/delta()
        #: and surfaced explicitly by ``kernel_stats()``).
        self.last_shard_timings: list[float] = []

    def snapshot(self) -> dict[str, int]:
        """The current counter values as a plain dictionary."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def delta(self, before: dict[str, int]) -> dict[str, int]:
        """Counter increments since ``before`` (a previous :meth:`snapshot`)."""
        return {key: value - before.get(key, 0) for key, value in self.snapshot().items()}


#: The default engine state's kernel counters (module-level, for code and
#: tests running outside any explicit session).
KERNEL_COUNTERS = KernelCounters()


# ---------------------------------------------------------------------------
# Backend implementations.
# ---------------------------------------------------------------------------


class PartitionBackend:
    """Interface of the flat-array probe primitives.

    ``positions``/``offsets`` use the flat stripped-partition layout: group
    ``i`` is ``positions[offsets[i]:offsets[i + 1]]``.  ``codes`` are dense
    per-row integer encodings (``array('q')``, ``list`` or ``np.ndarray``);
    ``marks`` map row position -> group id (``-1`` for stripped singletons).
    Each backend stores arrays in its native representation but accepts the
    other's as input, so partitions built under different backends compose.
    """

    name = "abstract"

    # -- construction ---------------------------------------------------------
    def adopt_flat(self, positions: Sequence[int], offsets: Sequence[int]):
        """Convert externally built flat lists into the native representation."""
        raise NotImplementedError

    def encode_columns(self, relation: "Relation", attributes: Sequence[str]):
        """``(codes, n_codes)`` of the value combinations over ``attributes``.

        Delegates to the relation's cached per-column encodings and the
        backend's :meth:`combine_codes` fold (via
        :meth:`Relation.combined_column_codes`, which also caches hot
        prefixes).
        """
        if len(attributes) == 1:
            codes, n_codes = relation.column_codes(attributes[0])
            return self.as_codes(codes), n_codes
        codes, n_codes = relation.combined_column_codes(attributes)
        return self.as_codes(codes), n_codes

    def initial_codes(self, codes):
        """A mutable/foldable copy of one column's cached codes."""
        raise NotImplementedError

    def as_codes(self, codes):
        """View ``codes`` (``array('q')``/``list``/ndarray) in native form."""
        raise NotImplementedError

    def combine_codes(self, combined, width: int, nxt, radix: int):
        """One densifying mixed-radix fold step.

        Returns ``(codes, width)`` where equal ``(combined, nxt)`` pairs
        receive equal dense codes assigned in first-appearance order (the
        invariant that keeps both backends bit-compatible).  Never mutates
        ``combined`` (results are shared through the prefix cache).
        """
        raise NotImplementedError

    def group_by_codes(self, codes, n_codes: int, counts: Sequence[int] | None = None):
        """Counting-sort ``codes`` into flat ``(positions, offsets)``.

        Groups appear in ascending code order (== first-appearance order of
        the encodings); positions within a group ascend; singleton codes are
        stripped.  ``counts`` (per-code occurrence counts) is an optional
        precomputed hint.
        """
        raise NotImplementedError

    def shard_group(self, codes, n_codes: int, counts: Sequence[int] | None = None):
        """Row-sharded :meth:`group_by_codes` (same contract, same bytes).

        Partition construction goes through this entry point so backends may
        split the code array into row ranges, group each shard concurrently
        and merge the shard-local groups back into global first-appearance
        order.  The base implementation is the sequential fallback — one
        straight :meth:`group_by_codes` call — which is also what sharded
        implementations must be byte-identical to.  The active engine
        state's ``shard_count``/``shard_min_rows`` knobs steer whether a
        backend actually shards; the knobs never change artefacts.
        """
        return self.group_by_codes(codes, n_codes, counts)

    def build_marks(self, positions, offsets, n_rows: int):
        """Row position -> group id (or ``-1``) mark table of a partition."""
        raise NotImplementedError

    # -- probes ---------------------------------------------------------------
    def intersect_marks(self, positions, offsets, marks, n_marks: int):
        """Probe one partition's groups against ``marks`` (partition product).

        Output groups appear probe-group by probe-group, sub-buckets in
        first-appearance-of-mark order, positions in probe order — the exact
        emission order of the pure-python dict-bucket product.
        """
        raise NotImplementedError

    def refines_marks(self, positions, offsets, marks) -> bool:
        """Whether every group maps into a single non-singleton mark class."""
        raise NotImplementedError

    def constant_within_groups(self, positions, offsets, codes) -> bool:
        """Whether ``codes`` is constant inside every group (FD validity)."""
        raise NotImplementedError

    def g3_removals(self, positions, offsets, codes) -> int:
        """Rows to delete so ``codes`` becomes constant within every group."""
        raise NotImplementedError

    # -- batched probes (one LHS partition, many RHS columns) -----------------
    def batch_constant_within_groups(self, positions, offsets, codes_list) -> list[bool]:
        """Vectorizable batch of :meth:`constant_within_groups` checks."""
        return [
            self.constant_within_groups(positions, offsets, codes)
            for codes in codes_list
        ]

    def batch_g3_removals(self, positions, offsets, codes_list) -> list[int]:
        """Vectorizable batch of :meth:`g3_removals` counts."""
        return [self.g3_removals(positions, offsets, codes) for codes in codes_list]

    # -- level-batched probes (many LHS partitions, many RHS columns) ---------
    def validate_level_groups(self, groups) -> list[list[bool]]:
        """Validate one whole lattice level in a single backend call.

        ``groups`` is a sequence of ``(positions, offsets, codes_list)``
        triples — one per *distinct* LHS partition of the level, each paired
        with the RHS code columns checked against it.  Returns one verdict
        list per triple, in order.  The base implementation loops per
        partition (the python backend's early-exit scans dominate anyway);
        the numpy backend overrides this to stack the whole level into a
        handful of vectorized passes, so callers pay per *level* rather than
        per LHS partition.
        """
        return [
            self.batch_constant_within_groups(positions, offsets, codes_list)
            for positions, offsets, codes_list in groups
        ]

    def validate_level_error_groups(self, groups) -> list[list[int]]:
        """g3 removal counts of one whole lattice level (single backend call).

        The error-grading counterpart of :meth:`validate_level_groups`, with
        the same ``groups`` layout; returns one removal-count list per
        triple, in order.
        """
        return [
            self.batch_g3_removals(positions, offsets, codes_list)
            for positions, offsets, codes_list in groups
        ]


class PythonBackend(PartitionBackend):
    """The pure-python columnar kernel (reference semantics, no dependencies)."""

    name = "python"

    def adopt_flat(self, positions, offsets):
        return list(positions), list(offsets)

    def initial_codes(self, codes):
        return list(codes)

    def as_codes(self, codes):
        return codes

    def combine_codes(self, combined, width, nxt, radix):
        remap: dict[int, int] = {}
        assign = remap.setdefault
        out = [0] * len(combined)
        for i, code in enumerate(combined):
            out[i] = assign(code * radix + nxt[i], len(remap))
        return out, len(remap)

    def group_by_codes(self, codes, n_codes, counts=None):
        if counts is None:
            counts = [0] * n_codes
            for code in codes:
                counts[code] += 1
        buckets: list[list[int] | None] = [
            [] if count > 1 else None for count in counts
        ]
        positions: list[int] = []
        offsets: list[int] = [0]
        for position, code in enumerate(codes):
            bucket = buckets[code]
            if bucket is not None:
                bucket.append(position)
        for bucket in buckets:
            if bucket is not None:
                positions.extend(bucket)
                offsets.append(len(positions))
        return positions, offsets

    def build_marks(self, positions, offsets, n_rows):
        marks = [-1] * n_rows
        start = offsets[0]
        for group_id in range(1, len(offsets)):
            end = offsets[group_id]
            mark = group_id - 1
            for position in positions[start:end]:
                marks[position] = mark
            start = end
        return marks

    def intersect_marks(self, positions, offsets, marks, n_marks):
        out_positions: list[int] = []
        out_offsets: list[int] = [0]
        extend = out_positions.extend
        close_group = out_offsets.append
        start = offsets[0]
        for group_id in range(1, len(offsets)):
            end = offsets[group_id]
            buckets: dict[int, list[int]] = {}
            get_bucket = buckets.get
            for position in positions[start:end]:
                mark = marks[position]
                if mark >= 0:
                    bucket = get_bucket(mark)
                    if bucket is None:
                        buckets[mark] = [position]
                    else:
                        bucket.append(position)
            start = end
            for bucket in buckets.values():
                if len(bucket) > 1:
                    extend(bucket)
                    close_group(len(out_positions))
        return out_positions, out_offsets

    def refines_marks(self, positions, offsets, marks):
        start = offsets[0]
        for group_id in range(1, len(offsets)):
            end = offsets[group_id]
            first = marks[positions[start]]
            if first < 0:
                # The leading position is a singleton of the mark side, yet
                # its class here has at least two members: the class splits.
                return False
            for position in positions[start + 1 : end]:
                if marks[position] != first:
                    return False
            start = end
        return True

    def constant_within_groups(self, positions, offsets, codes):
        start = offsets[0]
        for group_id in range(1, len(offsets)):
            end = offsets[group_id]
            first = codes[positions[start]]
            for position in positions[start + 1 : end]:
                if codes[position] != first:
                    return False
            start = end
        return True

    def g3_removals(self, positions, offsets, codes):
        removals = 0
        start = offsets[0]
        for group_id in range(1, len(offsets)):
            end = offsets[group_id]
            counts: dict[int, int] = {}
            get_count = counts.get
            most_frequent = 0
            for position in positions[start:end]:
                code = codes[position]
                tally = (get_count(code) or 0) + 1
                counts[code] = tally
                if tally > most_frequent:
                    most_frequent = tally
            removals += (end - start) - most_frequent
            start = end
        return removals


#: Exclusive upper bound of the key space the counting-sort grouping path can
#: represent: the path narrows keys to ``uint16`` before sorting, so any
#: configured ``counting_sort_max_codes`` above this is clamped back to it.
COUNTING_SORT_SPACE = 1 << 16

#: Shared worker pool of the sharded grouping path (numpy releases the GIL
#: inside its sort/bincount kernels, so threads scale across cores).  One
#: process-wide pool sized to the host: shard tasks are short and pure, so
#: sessions sharing workers only queue behind each other, never interleave
#: state.  Built lazily — a process that never shards never spawns threads.
_SHARD_POOL: ThreadPoolExecutor | None = None

_SHARD_POOL_LOCK = threading.Lock()


def _shard_pool() -> ThreadPoolExecutor:
    global _SHARD_POOL
    pool = _SHARD_POOL
    if pool is None:
        with _SHARD_POOL_LOCK:
            pool = _SHARD_POOL
            if pool is None:
                pool = _SHARD_POOL = ThreadPoolExecutor(
                    max_workers=os.cpu_count() or 1,
                    thread_name_prefix="repro-shard",
                )
    return pool


class NumpyBackend(PartitionBackend):
    """Vectorized probe primitives over ``np.int64`` arrays.

    Every primitive reproduces the python backend's ordering exactly:
    grouping keeps first-appearance group order via a stable
    first-occurrence factorisation, and the partition product emits buckets
    in (probe group, first appearance of mark) order.
    """

    name = "numpy"

    def __init__(self) -> None:
        if _np is None:  # pragma: no cover - guarded by the resolver
            raise RuntimeError("numpy is not importable; use the python backend")

    @staticmethod
    def _sort_params() -> tuple[int, "KernelCounters"]:
        """The active state's ``(counting-sort bound, counters)`` pair.

        Resolved once per public backend call (backends are stateless
        module singletons, so per-session knobs live on the engine state):
        key spaces up to the bound take the counting-sort path, larger ones
        the composite introsort.  Both orders are identical, so the knob
        only moves time around.
        """
        state = active_state()
        return min(state.config.counting_sort_max_codes, COUNTING_SORT_SPACE), state.counters

    # -- representation helpers ----------------------------------------------
    @staticmethod
    def _as_array(values):
        if isinstance(values, _np.ndarray):
            return values if values.dtype == _np.int64 else values.astype(_np.int64)
        if isinstance(values, array) and values.typecode == "q":
            # array('q') shares int64 layout: zero-copy (read-only) view.
            return _np.frombuffer(values, dtype=_np.int64)
        return _np.asarray(values, dtype=_np.int64)

    @staticmethod
    def _stable_order(keys, bound: int, counting_limit: int = 0, counters=None):
        """Indices sorting the non-negative ``keys`` stably (ties by position).

        ``bound`` is an exclusive upper bound on the key values; the stable
        order of a key array is unique, so every path below returns the
        identical permutation — selection only moves time around:

        * ``bound <= counting_limit`` (≤ 65536): narrow the keys to
          ``uint16`` and take numpy's stable argsort, which for 16-bit keys
          *is* a C-level counting sort (per-byte ``bincount`` counts +
          prefix-sum offsets + scatter) — ``O(n + k)`` and measured 2–4×
          faster than the introsort below across all benchmarked sizes;
        * otherwise compose ``key * n + index``: every key becomes unique,
          so the (much faster than a 64-bit radix pass) default introsort
          yields the stable order — ``bound`` proves the composition cannot
          overflow ``int64``;
        * pathological key spaces fall back to the 64-bit stable sort.
        """
        n = keys.shape[0]
        if n == 0:
            return _np.empty(0, dtype=_np.int64)
        if 0 < bound <= counting_limit:
            if counters is not None:
                counters.counting_sorts += 1
            return keys.astype(_np.uint16).argsort(kind="stable")
        if counters is not None:
            counters.introsorts += 1
        if bound < (2**62) // (n + 1):
            composite = keys * _np.int64(n) + _np.arange(n, dtype=_np.int64)
            return composite.argsort()
        return keys.argsort(kind="stable")

    @classmethod
    def _run_starts(cls, sorted_keys):
        """Start indices of the equal-key runs of an already sorted array."""
        n = sorted_keys.shape[0]
        boundary = _np.empty(n, dtype=bool)
        boundary[0] = True
        _np.not_equal(sorted_keys[1:], sorted_keys[:-1], out=boundary[1:])
        return _np.flatnonzero(boundary)

    @classmethod
    def _factorize_first_appearance(cls, keys, bound: int, counting_limit: int = 0, counters=None):
        """Dense codes of ``keys`` assigned in first-appearance order.

        Matches the python dict-``setdefault`` fold bit for bit: the first
        occurrence of a key (scanning left to right) fixes its code.
        """
        n = keys.shape[0]
        if n == 0:
            return keys.copy(), 0
        perm = cls._stable_order(keys, bound, counting_limit, counters)
        starts = cls._run_starts(keys[perm])
        # Stable order ⇒ the first element of each run carries the smallest
        # original index, i.e. the key's first appearance.  First-occurrence
        # indices are distinct, so a plain introsort ranks them.
        order = perm[starts].argsort()
        rank = _np.empty(starts.shape[0], dtype=_np.int64)
        rank[order] = _np.arange(starts.shape[0], dtype=_np.int64)
        run_of_element = _np.zeros(n, dtype=_np.int64)
        run_of_element[starts[1:]] = 1
        run_of_element = _np.cumsum(run_of_element)
        codes = _np.empty(n, dtype=_np.int64)
        codes[perm] = rank[run_of_element]
        return codes, int(starts.shape[0])

    # -- construction ---------------------------------------------------------
    def adopt_flat(self, positions, offsets):
        return (
            _np.asarray(positions, dtype=_np.int64),
            _np.asarray(offsets, dtype=_np.int64),
        )

    def initial_codes(self, codes):
        return self._as_array(codes)

    def as_codes(self, codes):
        return self._as_array(codes)

    def combine_codes(self, combined, width, nxt, radix):
        keys = self._as_array(combined) * _np.int64(radix) + self._as_array(nxt)
        counting_limit, counters = self._sort_params()
        return self._factorize_first_appearance(
            keys, max(width, 1) * max(radix, 1), counting_limit, counters
        )

    def group_by_codes(self, codes, n_codes, counts=None):
        codes = self._as_array(codes)
        if counts is not None:
            # Adopting the relation's precomputed per-code counts is
            # O(n_codes) versus the O(n_rows) counting pass below.
            counts = self._as_array(counts)
        elif codes.size:
            counts = _np.bincount(codes, minlength=n_codes)
        else:
            counts = _np.zeros(n_codes, dtype=_np.int64)
        counting_limit, counters = self._sort_params()
        order = self._stable_order(codes, max(n_codes, 1), counting_limit, counters)
        keep_group = counts > 1
        positions = order[keep_group[codes[order]]]
        sizes = counts[keep_group]
        offsets = _np.concatenate(
            (_np.zeros(1, dtype=_np.int64), _np.cumsum(sizes, dtype=_np.int64))
        )
        return positions, offsets

    def shard_group(self, codes, n_codes, counts=None):
        """Row-sharded grouping: split, sort shards in parallel, merge.

        Engages only when the active configuration admits it
        (``shard_count`` resolves above one and the input reaches
        ``shard_min_rows``); everything else falls through to the sequential
        :meth:`group_by_codes`.  The sharded result is byte-identical by
        construction — see :meth:`_sharded_group`.
        """
        codes = self._as_array(codes)
        config = active_state().config
        n_shards = config.shard_count if config.shard_count > 0 else (os.cpu_count() or 1)
        if n_shards <= 1 or codes.shape[0] == 0 or codes.shape[0] < config.shard_min_rows:
            return self.group_by_codes(codes, n_codes, counts)
        return self._sharded_group(codes, n_codes, counts, n_shards)

    def _sharded_group(self, codes, n_codes, counts, n_shards):
        """Parallel grouping over ``n_shards`` contiguous row ranges.

        Byte-identity argument: ``codes`` are globally dense
        first-appearance encodings, so the sequential grouping emits groups
        in ascending code order with positions ascending inside each group.
        Each shard covers a contiguous, increasing row range; stably sorting
        a shard orders its rows of code ``c`` ascending, and laying shard
        0's rows of ``c`` before shard 1's (the ``shard_base`` offsets)
        therefore reproduces the globally ascending position order.  Group
        membership (the singleton strip) uses the **global** per-code counts
        — two cross-shard singletons still form a real group — and the
        offsets come from the same counts, so both output arrays match the
        sequential path element for element.
        """
        n = codes.shape[0]
        bound = max(n_codes, 1)
        counting_limit, counters = self._sort_params()
        base, extra = divmod(n, n_shards)
        edges = [0]
        for shard in range(n_shards):
            edges.append(edges[-1] + base + (1 if shard < extra else 0))

        def shard_task(lo, hi):
            # Runs on the pool: no counter writes, no engine-state reads.
            started = time.perf_counter()
            chunk = codes[lo:hi]
            if chunk.size:
                local_counts = _np.bincount(chunk, minlength=n_codes)
            else:
                local_counts = _np.zeros(n_codes, dtype=_np.int64)
            order = self._stable_order(chunk, bound, counting_limit, None)
            return chunk, local_counts, order, time.perf_counter() - started

        pool = _shard_pool()
        shards = [
            future.result()
            for future in [
                pool.submit(shard_task, edges[s], edges[s + 1]) for s in range(n_shards)
            ]
        ]
        counts_matrix = _np.stack([local_counts for _, local_counts, _, _ in shards])
        if counts is not None:
            global_counts = self._as_array(counts)
        else:
            global_counts = counts_matrix.sum(axis=0)
        keep = global_counts > 1
        out_offsets = _np.concatenate(
            (
                _np.zeros(1, dtype=_np.int64),
                _np.cumsum(global_counts[keep], dtype=_np.int64),
            )
        )
        # The shard threads sorted with counters=None (counters are not
        # thread-safe); account their sorts once here — every non-empty
        # shard ran one stable sort on the path the bound selects.
        sorted_shards = sum(1 for chunk, _, _, _ in shards if chunk.size)
        if 0 < bound <= counting_limit:
            counters.counting_sorts += sorted_shards
        else:
            counters.introsorts += sorted_shards
        counters.sharded_groupings += 1
        counters.last_shard_timings = [seconds for _, _, _, seconds in shards]
        total = int(out_offsets[-1])
        out_positions = _np.empty(total, dtype=_np.int64)
        if total:
            # Scatter geometry: code c's output run starts at run_start[c];
            # within the run, shard s's block starts after the rows the
            # earlier shards contribute to c (exclusive cumsum over shards).
            run_start = _np.zeros(bound, dtype=_np.int64)
            run_start[keep] = out_offsets[:-1]
            shard_base = _np.cumsum(counts_matrix, axis=0) - counts_matrix

            def scatter_task(s, lo):
                chunk, _, order, _ = shards[s]
                if chunk.size == 0:
                    return
                kept_local = order[keep[chunk[order]]]
                if kept_local.size == 0:
                    return
                kept_codes = chunk[kept_local]
                starts = self._run_starts(kept_codes)
                run_sizes = _np.diff(_np.append(starts, kept_codes.size))
                within = _np.arange(kept_codes.size, dtype=_np.int64) - _np.repeat(
                    starts, run_sizes
                )
                dest = run_start[kept_codes] + shard_base[s][kept_codes] + within
                # Shards write disjoint destination blocks: thread-safe.
                out_positions[dest] = kept_local + lo

            for future in [
                pool.submit(scatter_task, s, edges[s]) for s in range(n_shards)
            ]:
                future.result()
        return out_positions, out_offsets

    def build_marks(self, positions, offsets, n_rows):
        positions = self._as_array(positions)
        offsets = self._as_array(offsets)
        marks = _np.full(n_rows, -1, dtype=_np.int64)
        sizes = _np.diff(offsets)
        marks[positions] = _np.repeat(
            _np.arange(sizes.shape[0], dtype=_np.int64), sizes
        )
        return marks

    # -- probes ---------------------------------------------------------------
    def intersect_marks(self, positions, offsets, marks, n_marks):
        positions = self._as_array(positions)
        offsets = self._as_array(offsets)
        marks = self._as_array(marks)
        probe_marks = marks[positions]
        sizes = offsets[1:] - offsets[:-1]
        group_ids = _np.repeat(_np.arange(sizes.shape[0], dtype=_np.int64), sizes)
        valid = probe_marks >= 0
        radix = _np.int64(max(n_marks, 1))
        # (probe group, mark) buckets; the flat probe array is ordered group
        # by group, so ordering buckets by first appearance yields exactly
        # the python emission order: probe groups ascending, marks by first
        # appearance inside each group, positions in probe (ascending) order.
        if bool(valid.all()):
            keys = group_ids * radix + probe_marks
            survivors = positions
        else:
            keys = group_ids[valid] * radix + probe_marks[valid]
            survivors = positions[valid]
        empty = (_np.empty(0, dtype=_np.int64), _np.zeros(1, dtype=_np.int64))
        if keys.size == 0:
            return empty
        counting_limit, counters = self._sort_params()
        perm = self._stable_order(
            keys, int(sizes.shape[0]) * int(radix), counting_limit, counters
        )
        starts = self._run_starts(keys[perm])
        counts = _np.empty(starts.shape[0], dtype=_np.int64)
        counts[:-1] = starts[1:] - starts[:-1]
        counts[-1] = keys.size - starts[-1]
        # Singleton buckets are stripped from the product, so only the kept
        # buckets need the first-appearance ordering (their relative order is
        # unchanged by dropping singletons); first-occurrence indices are
        # distinct, so a plain introsort over the few survivors orders them.
        keep = _np.flatnonzero(counts > 1)
        if keep.size == 0:
            return empty
        kept = keep[perm[starts[keep]].argsort()]
        out_sizes = counts[kept]
        out_offsets = _np.concatenate(
            (_np.zeros(1, dtype=_np.int64), _np.cumsum(out_sizes, dtype=_np.int64))
        )
        # Gather each kept bucket's (contiguous) slice of the sorted order.
        flat = _np.repeat(starts[kept] - out_offsets[:-1], out_sizes) + _np.arange(
            out_offsets[-1], dtype=_np.int64
        )
        out_positions = survivors[perm[flat]]
        return out_positions, out_offsets

    def refines_marks(self, positions, offsets, marks):
        positions = self._as_array(positions)
        offsets = self._as_array(offsets)
        group_marks = self._as_array(marks)[positions]
        firsts = group_marks[offsets[:-1]]
        if firsts.size and bool((firsts < 0).any()):
            return False
        sizes = _np.diff(offsets)
        return bool((group_marks == _np.repeat(firsts, sizes)).all())

    def constant_within_groups(self, positions, offsets, codes):
        positions = self._as_array(positions)
        offsets = self._as_array(offsets)
        codes = self._as_array(codes)
        starts = offsets[:-1]
        return self._constant_prepared(
            positions, offsets, codes,
            positions[starts], positions[starts + 1],
        )

    @staticmethod
    def _constant_prepared(positions, offsets, codes, first_rows, second_rows):
        """Constancy check with a cheap vectorized early reject.

        A violated candidate almost always differs already between the first
        two members of some group, so an ``O(n_groups)`` comparison rejects
        it without touching the full ``O(||π||)`` expansion — the vectorized
        analogue of the python backend's early-exit scan.
        """
        firsts = codes[first_rows]
        if bool((firsts != codes[second_rows]).any()):
            return False
        sizes = offsets[1:] - offsets[:-1]
        return bool((codes[positions] == _np.repeat(firsts, sizes)).all())

    def g3_removals(self, positions, offsets, codes):
        positions = self._as_array(positions)
        offsets = self._as_array(offsets)
        return self._g3_removals_prepared(
            positions, offsets, self._as_array(codes), self._group_ids(offsets)
        )

    @staticmethod
    def _group_ids(offsets):
        sizes = _np.diff(offsets)
        return _np.repeat(_np.arange(sizes.shape[0], dtype=_np.int64), sizes)

    @staticmethod
    def _g3_removals_prepared(positions, offsets, codes, group_ids):
        if positions.size == 0:
            return 0
        group_codes = codes[positions]
        radix = _np.int64(int(group_codes.max()) + 1) if group_codes.size else _np.int64(1)
        keys = group_ids * radix + group_codes
        unique_keys, counts = _np.unique(keys, return_counts=True)
        owner = unique_keys // radix
        starts = _np.flatnonzero(
            _np.concatenate((_np.ones(1, dtype=bool), owner[1:] != owner[:-1]))
        )
        best = _np.maximum.reduceat(counts, starts)
        return int(positions.size - best.sum())

    # -- batched probes -------------------------------------------------------
    def batch_constant_within_groups(self, positions, offsets, codes_list):
        if not codes_list:
            return []
        positions = self._as_array(positions)
        offsets = self._as_array(offsets)
        if positions.size == 0:
            return [True] * len(codes_list)
        # The per-group gather indices are shared by every RHS of the batch:
        # compute them once, then each candidate pays only its own (cheap)
        # prescreen plus — for the surviving candidates — one full compare.
        starts = offsets[:-1]
        first_rows = positions[starts]
        second_rows = positions[starts + 1]
        return [
            self._constant_prepared(
                positions, offsets, self._as_array(codes), first_rows, second_rows
            )
            for codes in codes_list
        ]

    def batch_g3_removals(self, positions, offsets, codes_list):
        if not codes_list:
            return []
        positions = self._as_array(positions)
        offsets = self._as_array(offsets)
        group_ids = self._group_ids(offsets)
        return [
            self._g3_removals_prepared(
                positions, offsets, self._as_array(codes), group_ids
            )
            for codes in codes_list
        ]

    # -- level-batched probes -------------------------------------------------

    #: Stacked-prescreen budget: the cross-LHS pass gathers every distinct
    #: RHS column at *every* group's first/second rows, so its volume is
    #: ``n_columns * total_groups`` regardless of how many (column, group)
    #: pairs the level actually asks about.  Stacking wins while that volume
    #: stays dispatch-bound (measured crossover ≈ 500 gathered elements per
    #: candidate); sparser levels keep the per-LHS loop, whose volume is
    #: exactly the asked-for pairs.
    LEVEL_STACK_MAX_ELEMENTS_PER_CANDIDATE = 512

    def validate_level_groups(self, groups):
        """Cross-LHS stacked validation of one whole lattice level.

        The level arrives as one backend call; when its shape is
        dispatch-bound (many candidates over small groups — the expensive
        regime of per-candidate numpy calls), the whole level is answered by
        two stacked passes:

        1. **prescreen** — the first/second member rows of *all* LHS groups
           are concatenated once; each distinct RHS column is gathered at
           them in a single fancy-index, and a segmented ``add.reduceat``
           yields every candidate's "any first-vs-second mismatch" verdict.
           A violated candidate almost always differs already here.
        2. **full verify** — the rare prescreen survivors get the exact
           per-group expansion of :meth:`constant_within_groups`.

        Levels whose groups are large (volume-bound, where the stacked
        pass's column × group waste outweighs the saved dispatches) fall
        back to the shared-prep per-LHS loop.  Both strategies produce
        bit-identical verdicts; the switch only moves time around.
        """
        prepped = []
        results: list[list[bool]] = []
        n_candidates = 0
        total_groups = 0
        distinct_columns: dict[int, int] = {}
        for positions, offsets, codes_list in groups:
            results.append([True] * len(codes_list))
            positions = self._as_array(positions)
            offsets = self._as_array(offsets)
            prepped.append((positions, offsets, codes_list))
            if positions.size == 0 or not codes_list:
                continue  # a superkey LHS validates every RHS
            n_candidates += len(codes_list)
            total_groups += offsets.shape[0] - 1
            for codes in codes_list:
                distinct_columns.setdefault(id(codes), len(distinct_columns))
        if n_candidates == 0:
            return results
        stacked_volume = len(distinct_columns) * total_groups
        if stacked_volume > self.LEVEL_STACK_MAX_ELEMENTS_PER_CANDIDATE * n_candidates:
            for (positions, offsets, codes_list), verdicts in zip(prepped, results):
                if positions.size == 0 or not codes_list:
                    continue
                verdicts[:] = self.batch_constant_within_groups(positions, offsets, codes_list)
            return results
        # Stacked prescreen: one concatenated first/second gather per
        # distinct RHS column, shared by every LHS partition of the level.
        first_parts, second_parts, segment_group = [], [], []
        for gi, (positions, offsets, codes_list) in enumerate(prepped):
            if positions.size == 0 or not codes_list:
                continue
            starts = offsets[:-1]
            first_parts.append(positions[starts])
            second_parts.append(positions[starts + 1])
            segment_group.append(gi)
        lengths = _np.asarray([part.shape[0] for part in first_parts], dtype=_np.int64)
        bounds = _np.zeros(lengths.shape[0] + 1, dtype=_np.int64)
        _np.cumsum(lengths, out=bounds[1:])
        first_rows = _np.concatenate(first_parts)
        second_rows = _np.concatenate(second_parts)
        columns: list = [None] * len(distinct_columns)
        candidates: list[tuple[int, int, int, int]] = []
        for segment, gi in enumerate(segment_group):
            _, _, codes_list = prepped[gi]
            for ci, codes in enumerate(codes_list):
                key = distinct_columns[id(codes)]
                if columns[key] is None:
                    columns[key] = self._as_array(codes)
                candidates.append((gi, ci, key, segment))
        firsts_by_column = []
        violation_rows = []
        for column in columns:
            firsts = column[first_rows]
            firsts_by_column.append(firsts)
            violation_rows.append(_np.add.reduceat(firsts != column[second_rows], bounds[:-1]))
        violated = _np.stack(violation_rows) > 0  # (n_columns, n_segments)
        column_index = _np.fromiter((c[2] for c in candidates), _np.int64, len(candidates))
        segment_index = _np.fromiter((c[3] for c in candidates), _np.int64, len(candidates))
        prescreen = violated[column_index, segment_index].tolist()
        for (gi, ci, key, segment), bad in zip(candidates, prescreen):
            if bad:
                results[gi][ci] = False
                continue
            # Prescreen survivor: the exact full comparison (rare — a valid
            # candidate, or a violation past the first two group members).
            positions, offsets, _ = prepped[gi]
            column = columns[key]
            firsts = firsts_by_column[key][bounds[segment] : bounds[segment + 1]]
            expected = _np.repeat(firsts, offsets[1:] - offsets[:-1])
            results[gi][ci] = bool((column[positions] == expected).all())
        return results

    def validate_level_error_groups(self, groups):
        """g3 grading of one whole lattice level in a single dispatch.

        Each partition's row -> group-id expansion is computed once and
        shared by all of its RHS columns (as in :meth:`batch_g3_removals`);
        the per-candidate ``unique`` tallies dominate, so further stacking
        across partitions would not pay for its bookkeeping.
        """
        out: list[list[int]] = []
        for positions, offsets, codes_list in groups:
            positions = self._as_array(positions)
            offsets = self._as_array(offsets)
            group_ids = self._group_ids(offsets)
            out.append(
                [
                    self._g3_removals_prepared(
                        positions, offsets, self._as_array(codes), group_ids
                    )
                    for codes in codes_list
                ]
            )
        return out


# ---------------------------------------------------------------------------
# Backend resolution and engine state.
# ---------------------------------------------------------------------------

#: Backend instances are stateless, so each is a module-level singleton (the
#: identity also matters: ``use_backend`` guarantees ``get_backend() is
#: before`` after restoring).
_PYTHON_BACKEND = PythonBackend()
_NUMPY_BACKEND: NumpyBackend | None = None

#: Process-wide backend pin installed by ``set_backend``/``use_backend``.
#: Takes precedence over every engine state (it exists for tests and
#: benchmarks that must force a backend regardless of configuration).
_FORCED_BACKEND: PartitionBackend | None = None


def _numpy_backend() -> NumpyBackend:
    global _NUMPY_BACKEND
    if _NUMPY_BACKEND is None:
        _NUMPY_BACKEND = NumpyBackend()
    return _NUMPY_BACKEND


def _resolve_backend(choice: str) -> PartitionBackend:
    choice = (choice or "auto").strip().lower()
    if choice in ("auto", ""):
        return _numpy_backend() if _np is not None else _PYTHON_BACKEND
    if choice == "python":
        return _PYTHON_BACKEND
    if choice == "numpy":
        if _np is None:
            raise RuntimeError(
                "partition backend 'numpy' requested but numpy is not importable; "
                "install the 'fast' extra (pip install .[fast]) or use auto/python"
            )
        return _numpy_backend()
    raise ValueError(
        f"unknown partition backend {choice!r}: expected auto, python or numpy"
    )


class _RelationKernelCaches:
    """The kernel caches one engine state holds for one relation.

    Owned by the state (not the relation), so two concurrent sessions
    working on the same relation never share mark tables, prefix folds or
    cache counters.  Entries are dropped automatically when the relation is
    garbage collected.
    """

    __slots__ = ("relation_ref", "marks", "combined", "partitions", "__weakref__")

    def __init__(self, relation: "Relation", config: EngineConfig) -> None:
        self.relation_ref = weakref.ref(relation)
        #: Byte-budgeted row -> group-id mark tables of the relation.
        self.marks = MarkTableCache(config.marks_cache_bytes)
        #: Bounded LRU of hot combined-codes prefixes (tagged by backend name).
        self.combined: "OrderedDict[tuple[str, ...], tuple[object, int, str]]" = (
            OrderedDict()
        )
        #: Lazily attached ``PartitionCache`` (set by ``Session.partition_cache``;
        #: lives here so its lifecycle matches the other relation caches).
        self.partitions = None


class EngineState:
    """The resolved runtime of one :class:`~repro.config.EngineConfig`.

    Owns everything that used to be process-wide: backend resolution policy,
    kernel counters, and the per-relation kernel caches.  One state is
    *active* at any point (installed by ``Session.activate()``); a lazy
    default state built from the environment serves code running outside any
    session, which is exactly the pre-session behaviour.
    """

    __slots__ = ("config", "counters", "_relation_caches", "__weakref__")

    def __init__(
        self,
        config: EngineConfig | None = None,
        counters: KernelCounters | None = None,
    ) -> None:
        self.config = EngineConfig.from_env() if config is None else config
        self.counters = KernelCounters() if counters is None else counters
        self._relation_caches: dict[int, _RelationKernelCaches] = {}

    def backend_for(self, n_rows: int | None = None) -> PartitionBackend:
        """The backend resolved for a relation of ``n_rows`` rows.

        A process-wide ``use_backend``/``set_backend`` pin wins over the
        configuration; otherwise the configured backend is honoured, with
        ``auto`` applying the ``backend_min_numpy_rows`` heuristic whenever
        the call site supplies ``n_rows``.  Both backends are
        bit-compatible, so per-relation switching never changes artefacts.
        """
        forced = _FORCED_BACKEND
        if forced is not None:
            return forced
        choice = self.config.backend
        if choice == "numpy":
            return _resolve_backend("numpy")
        if choice == "python" or _np is None:
            return _PYTHON_BACKEND
        if (
            n_rows is not None
            and n_rows < self.config.backend_min_numpy_rows
        ):
            return _PYTHON_BACKEND
        return _numpy_backend()

    def caches_for(self, relation: "Relation") -> _RelationKernelCaches:
        """This state's kernel caches for ``relation`` (created on first use).

        Entries die with the relation *or* with the state, whichever goes
        first: the relation-side finalizer only holds a weak reference to
        the state, so a collected session releases its caches even while
        the relation lives on.
        """
        key = id(relation)
        entry = self._relation_caches.get(key)
        if entry is not None and entry.relation_ref() is relation:
            return entry
        entry = _RelationKernelCaches(relation, self.config)
        self._relation_caches[key] = entry
        state_ref = weakref.ref(self)

        def _drop_entry(state_ref=state_ref, key=key):
            state = state_ref()
            if state is not None:
                state._relation_caches.pop(key, None)

        weakref.finalize(relation, _drop_entry)
        return entry

    def reset_counters(self) -> None:
        """Zero the state's kernel counters."""
        counters = self.counters
        for field in fields(counters):
            setattr(counters, field.name, 0)
        counters.last_shard_timings = []

    def drop_caches(self) -> None:
        """Release every relation-scoped cache held by the state."""
        self._relation_caches.clear()


#: The active engine state of the current execution context (``None`` means
#: "use the lazy default state").  Context-variable semantics give each
#: thread/async task its own activation stack, so concurrent sessions work.
_ACTIVE_STATE: "ContextVar[EngineState | None]" = ContextVar(
    "repro_engine_state", default=None
)

_DEFAULT_STATE: EngineState | None = None

#: Guards the lazy construction of the default state: concurrent first
#: resolutions (e.g. several serving workers probing outside any session)
#: must all observe the same state instance.
_DEFAULT_STATE_LOCK = threading.Lock()


def get_default_state() -> EngineState:
    """The lazy module-level engine state (configured from the environment)."""
    global _DEFAULT_STATE
    state = _DEFAULT_STATE
    if state is None:
        with _DEFAULT_STATE_LOCK:
            state = _DEFAULT_STATE
            if state is None:
                state = _DEFAULT_STATE = EngineState(
                    EngineConfig.from_env(), counters=KERNEL_COUNTERS
                )
    return state


def active_state() -> EngineState:
    """The engine state of the current context (default state when no session)."""
    state = _ACTIVE_STATE.get()
    return state if state is not None else get_default_state()


@contextmanager
def activate_state(state: EngineState) -> Iterator[EngineState]:
    """Install ``state`` as the active engine state for the dynamic extent."""
    token = _ACTIVE_STATE.set(state)
    try:
        yield state
    finally:
        _ACTIVE_STATE.reset(token)


def kernel_counters() -> KernelCounters:
    """The kernel counters of the active engine state."""
    return active_state().counters


def get_backend(n_rows: int | None = None) -> PartitionBackend:
    """The partition backend of the active engine state.

    ``n_rows`` (the size of the relation being probed) opts the call site
    into the per-relation ``backend_min_numpy_rows`` heuristic; without it
    the nominal backend choice is returned.
    """
    forced = _FORCED_BACKEND
    if forced is not None:
        return forced
    return active_state().backend_for(n_rows)


def set_backend(backend: PartitionBackend | str | None) -> PartitionBackend | None:
    """Install a process-wide backend pin; returns the previous pin.

    The pin takes precedence over every session configuration (it is the
    test/benchmark escape hatch).  Passing ``None`` clears the pin *and*
    discards the default engine state, so the next resolution re-reads the
    environment.
    """
    global _FORCED_BACKEND, _DEFAULT_STATE
    previous = _FORCED_BACKEND
    if backend is None:
        _FORCED_BACKEND = None
        _DEFAULT_STATE = None
    elif isinstance(backend, str):
        _FORCED_BACKEND = _resolve_backend(backend)
    else:
        _FORCED_BACKEND = backend
    return previous


@contextmanager
def use_backend(backend: PartitionBackend | str) -> Iterator[PartitionBackend]:
    """Temporarily pin the backend process-wide (tests / benchmarks)."""
    global _FORCED_BACKEND
    previous = _FORCED_BACKEND
    _FORCED_BACKEND = (
        _resolve_backend(backend) if isinstance(backend, str) else backend
    )
    try:
        yield _FORCED_BACKEND
    finally:
        _FORCED_BACKEND = previous


def numpy_available() -> bool:
    """Whether the numpy fast path can be selected in this process."""
    return _np is not None


# ---------------------------------------------------------------------------
# Relation-scoped, byte-budgeted mark-table cache.
# ---------------------------------------------------------------------------


@dataclass
class MarkCacheStats:
    """Hit/miss/eviction counters of one :class:`MarkTableCache`."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    evicted_bytes: int = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        requests = self.hits + self.misses
        return self.hits / requests if requests else 0.0

    def as_dict(self) -> dict[str, int | float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "evicted_bytes": self.evicted_bytes,
            "hit_rate": round(self.hit_rate, 4),
        }


def _default_marks_budget() -> int:
    raw = os.environ.get(MARKS_BUDGET_ENV_VAR)
    if raw:
        try:
            return max(0, int(raw))
        except ValueError:
            pass
    return DEFAULT_MARKS_BUDGET_BYTES


class MarkTableCache:
    """LRU cache of row -> group-id mark tables, bounded by a byte budget.

    ``intersect``/``refines`` probe one partition against the marks of
    another; level-wise exploration reuses the same partitions as the mark
    side over and over (TANE intersects every candidate with
    single-attribute partitions; refinement checks sweep one RHS partition
    across many LHSs), so cached mark tables amortise the ``O(n_rows)``
    marking pass to near zero.

    Each relation owns one instance (see ``Relation.mark_cache``), so caches
    are *relation-scoped*: a large relation cannot thrash the tables of
    another, and the cache dies with the relation.  A mark table is
    accounted at ``8 * n_rows`` bytes (one machine word per row — exact for
    the numpy backend, a close proxy for python lists); least-recently-used
    tables are evicted once the held total exceeds ``budget_bytes``
    (default ``REPRO_MARKS_CACHE_BYTES`` or 128 MiB ≈ sixteen 1M-row
    relations).  The most recent table is never evicted, so a single
    over-budget relation still amortises its own probes.  Entries hold a
    strong reference to their partition, which keeps the ``id()`` key valid.
    """

    __slots__ = ("budget_bytes", "stats", "_entries", "_held_bytes", "__weakref__")

    def __init__(self, budget_bytes: int | None = None) -> None:
        #: Byte budget of the held mark tables (``None`` -> env / default).
        self.budget_bytes = (
            _default_marks_budget() if budget_bytes is None else budget_bytes
        )
        self.stats = MarkCacheStats()
        self._entries: "OrderedDict[int, tuple[object, object, int]]" = OrderedDict()
        self._held_bytes = 0

    @staticmethod
    def _table_bytes(n_rows: int) -> int:
        return 8 * n_rows

    def get(self, partition) -> Sequence[int]:
        """The mark table of ``partition`` (built on miss, LRU-refreshed on hit)."""
        counters = kernel_counters()
        key = id(partition)
        entry = self._entries.get(key)
        if entry is not None and entry[0] is partition:
            self.stats.hits += 1
            counters.mark_hits += 1
            self._entries.move_to_end(key)
            return entry[1]
        self.stats.misses += 1
        counters.mark_misses += 1
        marks = get_backend(partition.n_rows).build_marks(
            partition.positions, partition.offsets, partition.n_rows
        )
        table_bytes = self._table_bytes(partition.n_rows)
        self._entries[key] = (partition, marks, table_bytes)
        self._held_bytes += table_bytes
        while self._held_bytes > self.budget_bytes and len(self._entries) > 1:
            _, (_, _, evicted_bytes) = self._entries.popitem(last=False)
            self._held_bytes -= evicted_bytes
            self.stats.evictions += 1
            self.stats.evicted_bytes += evicted_bytes
            counters.mark_evictions += 1
            counters.mark_evicted_bytes += evicted_bytes
        return marks

    @property
    def held_bytes(self) -> int:
        """Accounted bytes of the currently held mark tables."""
        return self._held_bytes

    def __len__(self) -> int:
        return len(self._entries)


#: Fallback cache for partitions built without a relation context
#: (direct ``StrippedPartition(groups, n_rows)`` constructions).
DEFAULT_MARK_CACHE = MarkTableCache()


def kernel_stats_summary(state: EngineState | None = None) -> dict[str, object]:
    """Kernel statistics of ``state`` (default: the active engine state).

    The counters are scoped to the state, so a fresh
    :class:`~repro.session.Session` reports exactly its own kernel work —
    runs in other sessions (or earlier CLI invocations in the same process)
    never leak into the numbers.
    """
    if state is None:
        state = active_state()
    return {
        "backend": state.backend_for().name,
        **state.counters.snapshot(),
        "shard_timings": [
            round(seconds, 6) for seconds in state.counters.last_shard_timings
        ],
    }


def render_kernel_stats(state: EngineState | None = None) -> str:
    """Human-readable one-block rendering of :func:`kernel_stats_summary`."""
    summary = kernel_stats_summary(state)
    lines = [f"[kernel] backend={summary.pop('backend')}"]
    lines.append(
        "[kernel] mark cache: "
        f"hits={summary['mark_hits']} misses={summary['mark_misses']} "
        f"evictions={summary['mark_evictions']} "
        f"evicted_bytes={summary['mark_evicted_bytes']}"
    )
    lines.append(
        "[kernel] partition cache: "
        f"hits={summary['partition_hits']} misses={summary['partition_misses']} "
        f"evictions={summary['partition_evictions']} "
        f"evicted_positions={summary['partition_evicted_positions']}"
    )
    lines.append(
        "[kernel] combined-codes prefixes: "
        f"hits={summary['combined_prefix_hits']} "
        f"misses={summary['combined_prefix_misses']} "
        f"evictions={summary['combined_prefix_evictions']}"
    )
    lines.append(
        "[kernel] batched validation: "
        f"levels={summary['batched_levels']} "
        f"candidates={summary['batched_candidates']}"
    )
    lines.append(
        "[kernel] sort paths: "
        f"counting={summary['counting_sorts']} "
        f"introsort={summary['introsorts']}"
    )
    timings = summary["shard_timings"]
    lines.append(
        "[kernel] sharded grouping: "
        f"runs={summary['sharded_groupings']} "
        f"last_shards={len(timings)} "
        f"last_shard_seconds={timings}"
    )
    return "\n".join(lines)
