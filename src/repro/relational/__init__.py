"""Minimal in-memory relational engine (the substrate of the reproduction).

Exposes relations, schemas, the SPJ algebra, stripped partitions and the SPJ
view-specification AST used throughout the library.

Performance architecture
------------------------
The discovery/validation hot path is columnar:

* **Column encodings** — every :class:`Relation` lazily dictionary-encodes
  each column into dense ``int`` codes held in an ``array('q')``
  (:meth:`Relation.column_codes`).  Encodings are cached on the (immutable)
  relation and shared by all partition and FD primitives, so equality tests
  on the hot path compare machine integers instead of hashing raw values;
  combinations fold per-column codes with a re-densified mixed-radix product
  (:meth:`Relation.combined_column_codes`).
* **Flat-array partitions** — a :class:`StrippedPartition` stores one flat
  ``positions`` array plus a group-``offsets`` array instead of
  tuples-of-tuples.  ``intersect`` and ``refines`` are single-pass probe
  algorithms: the side with the smaller ``||π||`` is probed against a
  reusable row -> group-id mark table of the other side (TANE's linear
  partition product); mark tables are amortised across calls by a small
  bounded cache.  ``fd_holds_fast`` / ``fd_violation_fraction`` scan LHS
  groups against the cached RHS column codes with early exit.
* **Partition caching** — :class:`PartitionCache` memoises partitions per
  attribute set with hit/miss/eviction statistics, pins the single-attribute
  basis, composes new combinations from the cached subset with the fewest
  groups, and (optionally) evicts multi-attribute entries LRU-first under a
  ``stripped_size`` memory budget.

TANE, FUN, FastFDs, HyFD, the naive oracle, the g3/AFD measures and InFine's
join-FD validation all inherit this kernel; ``benchmarks/
bench_partition_kernel.py`` tracks its performance trajectory.
"""

from .algebra import (
    JoinKind,
    cartesian_product,
    equi_join,
    project,
    rename,
    select,
    union,
)
from .csv_io import load_catalog, load_csv, save_catalog, save_csv
from .partition import (
    PartitionCache,
    PartitionCacheStats,
    StrippedPartition,
    fd_holds,
    fd_holds_fast,
    fd_violation_fraction,
    fd_violation_fraction_from_partition,
)
from .predicates import (
    And,
    AttributeComparison,
    Comparison,
    InSet,
    IsNull,
    Not,
    Or,
    Predicate,
    TruePredicate,
    conjunction,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
)
from .relation import NULL, Relation, RelationError
from .schema import Attribute, RelationSchema, SchemaError, make_schema
from .view import (
    BaseRelationSpec,
    JoinSpec,
    ProjectSpec,
    SelectSpec,
    ViewError,
    ViewSpec,
    base,
    join,
    proj,
    sel,
    validate_view,
)

__all__ = [
    "Attribute",
    "RelationSchema",
    "SchemaError",
    "make_schema",
    "Relation",
    "RelationError",
    "NULL",
    "JoinKind",
    "project",
    "select",
    "rename",
    "equi_join",
    "union",
    "cartesian_product",
    "Predicate",
    "Comparison",
    "AttributeComparison",
    "InSet",
    "IsNull",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "conjunction",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "StrippedPartition",
    "PartitionCache",
    "PartitionCacheStats",
    "fd_holds",
    "fd_holds_fast",
    "fd_violation_fraction",
    "fd_violation_fraction_from_partition",
    "ViewSpec",
    "BaseRelationSpec",
    "ProjectSpec",
    "SelectSpec",
    "JoinSpec",
    "ViewError",
    "base",
    "proj",
    "sel",
    "join",
    "validate_view",
    "load_csv",
    "save_csv",
    "load_catalog",
    "save_catalog",
]
