"""Minimal in-memory relational engine (the substrate of the reproduction).

Exposes relations, schemas, the SPJ algebra, stripped partitions and the SPJ
view-specification AST used throughout the library.

Performance architecture
------------------------
The discovery/validation hot path is columnar:

* **Column encodings** — every :class:`Relation` lazily dictionary-encodes
  each column into dense ``int`` codes held in an ``array('q')``
  (:meth:`Relation.column_codes`).  Encodings are cached on the (immutable)
  relation and shared by all partition and FD primitives, so equality tests
  on the hot path compare machine integers instead of hashing raw values;
  combinations fold per-column codes with a re-densified mixed-radix product
  (:meth:`Relation.combined_column_codes`).
* **Flat-array partitions** — a :class:`StrippedPartition` stores one flat
  ``positions`` array plus a group-``offsets`` array instead of
  tuples-of-tuples.  ``intersect`` and ``refines`` are single-pass probe
  algorithms: the side with the smaller ``||π||`` is probed against a
  reusable row -> group-id mark table of the other side (TANE's linear
  partition product); mark tables are amortised across calls by the
  relation-scoped byte-budgeted :class:`~repro.relational.backend.MarkTableCache`.
  ``fd_holds_fast`` / ``fd_violation_fraction`` scan LHS groups against the
  cached RHS column codes with early exit.
* **Pluggable backends** — every probe loop lives behind the
  :class:`~repro.relational.backend.PartitionBackend` interface with a
  pure-python implementation and a vectorized numpy fast path
  (auto-selected when numpy is importable, forced via
  ``REPRO_PARTITION_BACKEND``).  Both backends are bit-compatible:
  identical group orders, code assignments and verdicts.
* **Batched validation** — :func:`validate_level` /
  :func:`validate_level_errors` answer a whole lattice level's candidate
  checks with one vectorized pass per shared LHS partition; TANE, FUN,
  ApproximateTANE and the AFD profiler feed their levels through it.
* **Partition caching** — :class:`PartitionCache` memoises partitions per
  attribute set with hit/miss/eviction statistics, pins the single-attribute
  basis, composes new combinations from the cached subset with the fewest
  groups, and (optionally) evicts multi-attribute entries LRU-first under a
  ``stripped_size`` memory budget.

TANE, FUN, FastFDs, HyFD, the naive oracle, the g3/AFD measures and InFine's
join-FD validation all inherit this kernel; ``benchmarks/
bench_partition_kernel.py`` tracks its performance trajectory.
"""

from .algebra import (
    JoinKind,
    cartesian_product,
    equi_join,
    project,
    rename,
    select,
    union,
)
from .backend import (
    EngineState,
    MarkTableCache,
    NumpyBackend,
    PartitionBackend,
    PythonBackend,
    activate_state,
    active_state,
    get_backend,
    kernel_counters,
    numpy_available,
    set_backend,
    use_backend,
)
from .csv_io import load_catalog, load_csv, save_catalog, save_csv
from .partition import (
    PartitionCache,
    PartitionCacheStats,
    StrippedPartition,
    fd_holds,
    fd_holds_fast,
    fd_violation_fraction,
    fd_violation_fraction_from_partition,
    make_partition_cache,
    validate_level,
    validate_level_errors,
)
from .predicates import (
    And,
    AttributeComparison,
    Comparison,
    InSet,
    IsNull,
    Not,
    Or,
    Predicate,
    TruePredicate,
    conjunction,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
)
from .relation import NULL, Relation, RelationError
from .schema import Attribute, RelationSchema, SchemaError, make_schema
from .view import (
    BaseRelationSpec,
    JoinSpec,
    ProjectSpec,
    SelectSpec,
    ViewError,
    ViewSpec,
    base,
    join,
    proj,
    sel,
    validate_view,
)

__all__ = [
    "Attribute",
    "RelationSchema",
    "SchemaError",
    "make_schema",
    "Relation",
    "RelationError",
    "NULL",
    "JoinKind",
    "project",
    "select",
    "rename",
    "equi_join",
    "union",
    "cartesian_product",
    "Predicate",
    "Comparison",
    "AttributeComparison",
    "InSet",
    "IsNull",
    "And",
    "Or",
    "Not",
    "TruePredicate",
    "conjunction",
    "eq",
    "ne",
    "lt",
    "le",
    "gt",
    "ge",
    "StrippedPartition",
    "PartitionCache",
    "PartitionCacheStats",
    "PartitionBackend",
    "PythonBackend",
    "NumpyBackend",
    "MarkTableCache",
    "EngineState",
    "get_backend",
    "set_backend",
    "use_backend",
    "active_state",
    "activate_state",
    "kernel_counters",
    "numpy_available",
    "make_partition_cache",
    "fd_holds",
    "fd_holds_fast",
    "fd_violation_fraction",
    "fd_violation_fraction_from_partition",
    "validate_level",
    "validate_level_errors",
    "ViewSpec",
    "BaseRelationSpec",
    "ProjectSpec",
    "SelectSpec",
    "JoinSpec",
    "ViewError",
    "base",
    "proj",
    "sel",
    "join",
    "validate_view",
    "load_csv",
    "save_csv",
    "load_catalog",
    "save_catalog",
]
