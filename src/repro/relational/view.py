"""SPJ view specifications.

A view specification is an expression tree over base relations, limited to
the operator set of Definition 2 in the paper: projection, selection and the
{inner, left outer, right outer, full outer, left semi, right semi} joins.

Every node knows how to

* report its *projected attribute set* ``proj()`` (Definition 3),
* report the base relation names it references,
* evaluate itself against a catalogue of base :class:`Relation` instances,
* describe itself as a SQL-flavoured sub-query string used in provenance
  triples.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from .algebra import JoinKind, equi_join, project, select
from .predicates import Predicate
from .relation import Relation
from .schema import SchemaError


class ViewError(ValueError):
    """Raised for malformed view specifications."""


Catalog = Mapping[str, Relation]
"""A catalogue mapping base-relation names to their instances."""


class ViewSpec(ABC):
    """Base class of view-specification nodes."""

    @abstractmethod
    def projected_attributes(self, catalog: Catalog) -> tuple[str, ...]:
        """The ``proj()`` attribute set of Definition 3, in a stable order."""

    @abstractmethod
    def base_relation_names(self) -> tuple[str, ...]:
        """Names of the base relations referenced by this specification."""

    @abstractmethod
    def evaluate(self, catalog: Catalog) -> Relation:
        """Materialise the view against ``catalog``."""

    @abstractmethod
    def describe(self) -> str:
        """A sub-query string for provenance triples."""

    @abstractmethod
    def children(self) -> tuple["ViewSpec", ...]:
        """The direct sub-specifications."""

    def walk(self) -> Iterator["ViewSpec"]:
        """Depth-first iteration over the specification tree (post-order)."""
        for child in self.children():
            yield from child.walk()
        yield self

    def depth(self) -> int:
        """Height of the specification tree (a base relation has depth 1)."""
        kids = self.children()
        return 1 + (max(child.depth() for child in kids) if kids else 0)

    def join_count(self) -> int:
        """Number of join operators in the specification."""
        return sum(1 for node in self.walk() if isinstance(node, JoinSpec))

    def __str__(self) -> str:  # pragma: no cover - delegation
        return self.describe()


@dataclass(frozen=True)
class BaseRelationSpec(ViewSpec):
    """A leaf node referencing a base relation by name."""

    relation_name: str

    def projected_attributes(self, catalog: Catalog) -> tuple[str, ...]:
        return self._resolve(catalog).attribute_names

    def base_relation_names(self) -> tuple[str, ...]:
        return (self.relation_name,)

    def evaluate(self, catalog: Catalog) -> Relation:
        return self._resolve(catalog)

    def describe(self) -> str:
        return self.relation_name

    def children(self) -> tuple[ViewSpec, ...]:
        return ()

    def _resolve(self, catalog: Catalog) -> Relation:
        try:
            return catalog[self.relation_name]
        except KeyError:
            raise ViewError(
                f"catalogue has no relation named {self.relation_name!r}; "
                f"known relations: {sorted(catalog)}"
            ) from None


@dataclass(frozen=True)
class ProjectSpec(ViewSpec):
    """``π_attributes(child)``."""

    child: ViewSpec
    attributes: tuple[str, ...]

    def __init__(self, child: ViewSpec, attributes: Sequence[str]) -> None:
        if not attributes:
            raise ViewError("projection requires at least one attribute")
        object.__setattr__(self, "child", child)
        object.__setattr__(self, "attributes", tuple(attributes))

    def projected_attributes(self, catalog: Catalog) -> tuple[str, ...]:
        available = set(self.child.projected_attributes(catalog))
        missing = set(self.attributes) - available
        if missing:
            raise ViewError(
                f"projection references attributes {sorted(missing)} not produced by its input"
            )
        return self.attributes

    def base_relation_names(self) -> tuple[str, ...]:
        return self.child.base_relation_names()

    def evaluate(self, catalog: Catalog) -> Relation:
        return project(self.child.evaluate(catalog), self.attributes, name=self.describe())

    def describe(self) -> str:
        return f"PROJECT[{', '.join(self.attributes)}]({self.child.describe()})"

    def children(self) -> tuple[ViewSpec, ...]:
        return (self.child,)


@dataclass(frozen=True)
class SelectSpec(ViewSpec):
    """``σ_predicate(child)``."""

    child: ViewSpec
    predicate: Predicate

    def projected_attributes(self, catalog: Catalog) -> tuple[str, ...]:
        return self.child.projected_attributes(catalog)

    def base_relation_names(self) -> tuple[str, ...]:
        return self.child.base_relation_names()

    def evaluate(self, catalog: Catalog) -> Relation:
        return select(self.child.evaluate(catalog), self.predicate, name=self.describe())

    def describe(self) -> str:
        return f"SELECT[{self.predicate.describe()}]({self.child.describe()})"

    def children(self) -> tuple[ViewSpec, ...]:
        return (self.child,)


@dataclass(frozen=True)
class JoinSpec(ViewSpec):
    """``left ⋈_{left_on = right_on} right`` with a configurable join kind."""

    left: ViewSpec
    right: ViewSpec
    left_on: tuple[str, ...]
    right_on: tuple[str, ...]
    kind: JoinKind = field(default=JoinKind.INNER)

    def __init__(
        self,
        left: ViewSpec,
        right: ViewSpec,
        left_on: Sequence[str],
        right_on: Sequence[str] | None = None,
        kind: JoinKind = JoinKind.INNER,
    ) -> None:
        right_on = tuple(right_on) if right_on is not None else tuple(left_on)
        if len(tuple(left_on)) != len(right_on):
            raise ViewError("join attribute lists must have the same length")
        if not left_on:
            raise ViewError("join requires at least one join attribute")
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)
        object.__setattr__(self, "left_on", tuple(left_on))
        object.__setattr__(self, "right_on", right_on)
        object.__setattr__(self, "kind", kind)

    def projected_attributes(self, catalog: Catalog) -> tuple[str, ...]:
        left_attrs = self.left.projected_attributes(catalog)
        right_attrs = self.right.projected_attributes(catalog)
        if self.kind is JoinKind.LEFT_SEMI:
            return left_attrs
        if self.kind is JoinKind.RIGHT_SEMI:
            return right_attrs
        dropped = {rgt for lft, rgt in zip(self.left_on, self.right_on) if lft == rgt}
        return left_attrs + tuple(a for a in right_attrs if a not in dropped)

    def base_relation_names(self) -> tuple[str, ...]:
        return self.left.base_relation_names() + self.right.base_relation_names()

    def evaluate(self, catalog: Catalog) -> Relation:
        return equi_join(
            self.left.evaluate(catalog),
            self.right.evaluate(catalog),
            self.left_on,
            self.right_on,
            kind=self.kind,
            name=self.describe(),
        )

    def describe(self) -> str:
        condition = " AND ".join(
            f"{lft} = {rgt}" for lft, rgt in zip(self.left_on, self.right_on)
        )
        return (
            f"({self.left.describe()} {self.kind.symbol} {self.right.describe()}"
            f" ON {condition})"
        )

    def children(self) -> tuple[ViewSpec, ...]:
        return (self.left, self.right)


# -- convenience constructors -----------------------------------------------------
def base(relation_name: str) -> BaseRelationSpec:
    """Shorthand for :class:`BaseRelationSpec`."""
    return BaseRelationSpec(relation_name)


def proj(child: ViewSpec, attributes: Sequence[str]) -> ProjectSpec:
    """Shorthand for :class:`ProjectSpec`."""
    return ProjectSpec(child, attributes)


def sel(child: ViewSpec, predicate: Predicate) -> SelectSpec:
    """Shorthand for :class:`SelectSpec`."""
    return SelectSpec(child, predicate)


def join(
    left: ViewSpec,
    right: ViewSpec,
    on: Sequence[str] | str,
    right_on: Sequence[str] | str | None = None,
    kind: JoinKind = JoinKind.INNER,
) -> JoinSpec:
    """Shorthand for :class:`JoinSpec`; ``on`` may be a single attribute name."""
    left_on = (on,) if isinstance(on, str) else tuple(on)
    if right_on is None:
        resolved_right = None
    else:
        resolved_right = (right_on,) if isinstance(right_on, str) else tuple(right_on)
    return JoinSpec(left, right, left_on, resolved_right, kind)


def validate_view(spec: ViewSpec, catalog: Catalog) -> tuple[str, ...]:
    """Validate a view against a catalogue and return its projected attributes.

    Raises
    ------
    ViewError
        If the view references unknown relations or attributes.
    SchemaError
        If a join or projection is inconsistent with the schemas.
    """
    for name in spec.base_relation_names():
        if name not in catalog:
            raise ViewError(f"view references unknown base relation {name!r}")
    try:
        return spec.projected_attributes(catalog)
    except SchemaError as exc:  # normalise error type for callers
        raise ViewError(str(exc)) from exc
