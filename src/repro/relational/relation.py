"""In-memory relational instances.

A :class:`Relation` is an immutable, named bag of row tuples over a
:class:`~repro.relational.schema.RelationSchema`.  It is the substrate on
which both the baseline FD-discovery algorithms and InFine operate.

The class deliberately stays close to the formal model used in the paper:
rows are plain Python tuples, ``NULL`` is represented by :data:`NULL`
(``None``), and duplicate rows are allowed (bag semantics) because SPJ views
can produce them.
"""

from __future__ import annotations

from array import array
from collections import Counter, defaultdict
from typing import Any, Callable, Hashable, Iterable, Iterator, Mapping, Sequence

from .backend import MarkTableCache, active_state, get_backend
from .schema import Attribute, RelationSchema, SchemaError

#: The NULL marker used throughout the substrate.
NULL = None


def _combined_cache_entries() -> int:
    """Per-relation combined-codes prefix cache size of the active engine state.

    Kept as a module-level helper for backward compatibility; the bound now
    comes from the active :class:`~repro.config.EngineConfig` (whose default
    is parsed from ``REPRO_COMBINED_CODES_CACHE_ENTRIES``).
    """
    return active_state().config.combined_codes_cache_entries


class RelationError(ValueError):
    """Raised for malformed relations or invalid row shapes."""


class Relation:
    """An immutable relational instance (bag of tuples).

    Parameters
    ----------
    name:
        A human-readable relation name, used in provenance sub-query strings.
    schema:
        The relation schema, or an iterable of attribute names.
    rows:
        An iterable of row tuples/sequences; each must have exactly one value
        per schema attribute.
    """

    __slots__ = (
        "_name",
        "_schema",
        "_rows",
        "_column_index_cache",
        "_column_codes_cache",
        "_content_hash_cache",
        "_mark_cache",
        "__weakref__",
    )

    def __init__(
        self,
        name: str,
        schema: RelationSchema | Sequence[Attribute | str],
        rows: Iterable[Sequence[Any]] = (),
    ) -> None:
        if not isinstance(schema, RelationSchema):
            schema = RelationSchema(schema)
        width = len(schema)
        materialised: list[tuple[Any, ...]] = []
        for i, row in enumerate(rows):
            row = tuple(row)
            if len(row) != width:
                raise RelationError(
                    f"row {i} of relation {name!r} has {len(row)} values, "
                    f"schema expects {width}"
                )
            materialised.append(row)
        self._name = name
        self._schema = schema
        self._rows: tuple[tuple[Any, ...], ...] = tuple(materialised)
        self._column_index_cache: dict[str, dict[Hashable, list[int]]] = {}
        self._column_codes_cache: dict[str, tuple[array, int, list[int]]] = {}
        self._content_hash_cache: str | None = None
        # Explicit mark-cache override (tests / embedders); ``None`` means
        # "use the active engine state's relation-scoped cache".
        self._mark_cache: MarkTableCache | None = None

    # -- basic protocol -------------------------------------------------------
    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self._rows)

    def __eq__(self, other: object) -> bool:
        """Bag equality: same schema names and same multiset of rows."""
        if not isinstance(other, Relation):
            return NotImplemented
        return (
            self.schema.names == other.schema.names
            and Counter(self._rows) == Counter(other._rows)
        )

    def __hash__(self) -> int:  # pragma: no cover - rarely used
        return hash((self._schema.names, frozenset(Counter(self._rows).items())))

    def __repr__(self) -> str:
        return f"Relation({self._name!r}, attrs={list(self.attribute_names)}, rows={len(self)})"

    # -- accessors ------------------------------------------------------------
    @property
    def name(self) -> str:
        """The relation name."""
        return self._name

    @property
    def schema(self) -> RelationSchema:
        """The relation schema."""
        return self._schema

    @property
    def attribute_names(self) -> tuple[str, ...]:
        """Attribute names in schema order."""
        return self._schema.names

    @property
    def rows(self) -> tuple[tuple[Any, ...], ...]:
        """The raw row tuples."""
        return self._rows

    @property
    def arity(self) -> int:
        """Number of attributes."""
        return len(self._schema)

    def is_empty(self) -> bool:
        """Whether the relation holds no rows."""
        return not self._rows

    def column(self, attribute: str) -> list[Any]:
        """Return the values of ``attribute`` for every row, in row order."""
        idx = self._schema.index_of(attribute)
        return [row[idx] for row in self._rows]

    def columns(self, attributes: Sequence[str]) -> list[tuple[Any, ...]]:
        """Return, per row, the tuple of values for ``attributes``."""
        idxs = self._schema.indexes_of(attributes)
        return [tuple(row[i] for i in idxs) for row in self._rows]

    def row_dicts(self) -> Iterator[dict[str, Any]]:
        """Iterate over rows as ``{attribute: value}`` dictionaries."""
        names = self.attribute_names
        for row in self._rows:
            yield dict(zip(names, row))

    def distinct_count(self, attributes: Sequence[str] | str) -> int:
        """Number of distinct value combinations over ``attributes``.

        NULLs participate as ordinary values, which matches the paper's
        null-semantics-agnostic FD definition (Definition 1).
        """
        if isinstance(attributes, str):
            attributes = (attributes,)
        if not attributes:
            return 1 if self._rows else 0
        return len(set(self.columns(attributes)))

    def value_index(self, attribute: str) -> Mapping[Hashable, list[int]]:
        """Return (and cache) a value -> row-position index for ``attribute``."""
        cached = self._column_index_cache.get(attribute)
        if cached is not None:
            return cached
        idx = self._schema.index_of(attribute)
        index: dict[Hashable, list[int]] = defaultdict(list)
        for position, row in enumerate(self._rows):
            index[row[idx]].append(position)
        index = dict(index)
        self._column_index_cache[attribute] = index
        return index

    def multi_value_index(self, attributes: Sequence[str]) -> dict[tuple[Any, ...], list[int]]:
        """Return a (value tuple) -> row-position index over several attributes."""
        idxs = self._schema.indexes_of(attributes)
        index: dict[tuple[Any, ...], list[int]] = defaultdict(list)
        for position, row in enumerate(self._rows):
            index[tuple(row[i] for i in idxs)].append(position)
        return dict(index)

    # -- columnar integer encoding --------------------------------------------
    def column_codes(self, attribute: str) -> tuple[array, int]:
        """Return ``(codes, n_codes)``: the dense integer encoding of a column.

        ``codes`` is an ``array('q')`` with one entry per row; equal raw
        values receive equal codes, codes are dense in ``0..n_codes-1`` and
        assigned in first-appearance order.  The encoding is computed lazily,
        cached for the lifetime of the (immutable) relation, and shared by
        every partition/FD primitive so that the hot paths compare machine
        integers instead of hashing arbitrary Python objects.  ``NULL``
        participates as an ordinary value (the paper's null-agnostic FD
        semantics).
        """
        return self._encode_column(attribute)[:2]

    def _encode_column(self, attribute: str) -> tuple[array, int, list[int]]:
        """``(codes, n_codes, counts)`` with per-code occurrence counts.

        Internal variant of :meth:`column_codes` whose counts let the
        partition kernel skip its counting pass; both share one cache entry.
        """
        cached = self._column_codes_cache.get(attribute)
        if cached is not None:
            return cached
        idx = self._schema.index_of(attribute)
        code_of: dict[Hashable, int] = {}
        lookup = code_of.get
        counts: list[int] = []
        raw: list[int] = []
        append = raw.append
        for row in self._rows:
            value = row[idx]
            code = lookup(value)
            if code is None:
                code = len(code_of)
                code_of[value] = code
                counts.append(1)
            else:
                counts[code] += 1
            append(code)
        encoded = (array("q", raw), len(code_of), counts)
        self._column_codes_cache[attribute] = encoded
        return encoded

    def column_dictionary(self, attribute: str) -> list[Any]:
        """The distinct raw values of ``attribute`` in first-appearance order.

        The decode table of :meth:`column_codes`: ``dictionary[code]`` is the
        raw value that ``code`` stands for, so ``(codes, dictionary)`` round-
        trips the column exactly (``NULL`` included).  Together with
        :meth:`from_codes` this is the export/import surface the
        shared-memory data plane ships relations through.
        """
        idx = self._schema.index_of(attribute)
        seen: set[Hashable] = set()
        dictionary: list[Any] = []
        for row in self._rows:
            value = row[idx]
            if value not in seen:
                seen.add(value)
                dictionary.append(value)
        return dictionary

    def content_hash(self) -> str:
        """The canonical content address of this relation (sha256 hexdigest).

        A merkle fold of per-column sha256 leaves over the dictionary
        encoding of :meth:`column_codes` plus the schema — backend- and
        process-independent (see :mod:`repro.registry.hashing`).  Computed
        lazily and cached for the lifetime of the (immutable) relation.
        """
        cached = self._content_hash_cache
        if cached is None:
            # Imported lazily: the registry package depends on this module.
            from ..registry.hashing import relation_content_hash

            cached = self._content_hash_cache = relation_content_hash(self)
        return cached

    def column_code_count(self, attribute: str) -> int:
        """Number of distinct values of ``attribute`` (via the cached encoding)."""
        return self.column_codes(attribute)[1]

    def combined_column_codes(self, attributes: Sequence[str]) -> tuple[Sequence[int], int]:
        """Dense integer codes of the value *combinations* over ``attributes``.

        Folds the per-column encodings with a mixed-radix product through the
        active partition backend, re-densifying after every column (in
        first-appearance order, identically on every backend) so
        intermediate keys stay bounded by ``n_rows * n_codes``.  Returns
        ``(codes, n_codes)`` like :meth:`column_codes`.

        Hot prefixes (``attributes[:k]`` for ``k >= 2``) are memoised in a
        small per-relation LRU owned by the active engine state
        (``EngineConfig.combined_codes_cache_entries``, default 16 or
        ``REPRO_COMBINED_CODES_CACHE_ENTRIES``), so repeated partition builds
        over overlapping attribute sequences stop recomputing the shared
        fold steps.  The returned sequence may be such a cached object:
        treat it as read-only.
        """
        if not attributes:
            raise RelationError("combined_column_codes needs at least one attribute")
        state = active_state()
        backend = get_backend(len(self._rows))
        if len(attributes) == 1:
            codes, width = self.column_codes(attributes[0])
            return backend.initial_codes(codes), width

        counters = state.counters
        key = tuple(attributes)
        cache = state.caches_for(self).combined
        entry = cache.get(key)
        if entry is not None and entry[2] == backend.name:
            cache.move_to_end(key)
            counters.combined_prefix_hits += 1
            return entry[0], entry[1]
        counters.combined_prefix_misses += 1

        # Resume from the longest cached prefix folded under the same backend.
        combined = None
        width = 0
        start = 1
        for length in range(len(key) - 1, 1, -1):
            prefix = cache.get(key[:length])
            if prefix is not None and prefix[2] == backend.name:
                cache.move_to_end(key[:length])
                counters.combined_prefix_hits += 1
                combined, width = prefix[0], prefix[1]
                start = length
                break
        if combined is None:
            first_codes, width = self.column_codes(key[0])
            combined = backend.initial_codes(first_codes)
        max_entries = state.config.combined_codes_cache_entries
        for index in range(start, len(key)):
            nxt, radix = self.column_codes(key[index])
            combined, width = backend.combine_codes(combined, width, nxt, radix)
            cache[key[: index + 1]] = (combined, width, backend.name)
            cache.move_to_end(key[: index + 1])
            while len(cache) > max_entries:
                cache.popitem(last=False)
                counters.combined_prefix_evictions += 1
        return combined, width

    @property
    def _combined_codes_cache(self):
        """The active engine state's combined-codes prefix LRU for this relation.

        Kept as a (read-mostly) property for backward compatibility with code
        and tests that introspected the old per-relation attribute; storage
        is session-scoped now.
        """
        return active_state().caches_for(self).combined

    @property
    def mark_cache(self) -> MarkTableCache:
        """The relation-scoped byte-budgeted mark-table cache.

        Owned by the active engine state (each session has its own budgeted
        instance per relation); an explicitly assigned cache
        (``relation._mark_cache = MarkTableCache(...)``) overrides it.
        """
        cache = self._mark_cache
        if cache is None:
            return active_state().caches_for(self).marks
        return cache

    # -- derivations ----------------------------------------------------------
    def with_name(self, name: str) -> "Relation":
        """Return the same instance under a different relation name."""
        return Relation(name, self._schema, self._rows)

    def with_rows(self, rows: Iterable[Sequence[Any]], name: str | None = None) -> "Relation":
        """Return a relation with the same schema but different rows."""
        return Relation(name or self._name, self._schema, rows)

    def take(self, positions: Sequence[int], name: str | None = None) -> "Relation":
        """Return a relation containing the rows at the given positions."""
        rows = [self._rows[p] for p in positions]
        return Relation(name or self._name, self._schema, rows)

    def head(self, n: int) -> "Relation":
        """Return the first ``n`` rows (useful for debugging and examples)."""
        return Relation(self._name, self._schema, self._rows[:n])

    def distinct(self, name: str | None = None) -> "Relation":
        """Return the relation with duplicate rows removed (set semantics)."""
        seen: set[tuple[Any, ...]] = set()
        rows: list[tuple[Any, ...]] = []
        for row in self._rows:
            if row not in seen:
                seen.add(row)
                rows.append(row)
        return Relation(name or self._name, self._schema, rows)

    def sorted_rows(self) -> list[tuple[Any, ...]]:
        """Rows sorted with a NULL-safe key, for deterministic display."""
        return sorted(self._rows, key=lambda row: tuple((v is None, str(v)) for v in row))

    def map_column(self, attribute: str, fn: Callable[[Any], Any]) -> "Relation":
        """Return a relation with ``fn`` applied to every value of ``attribute``."""
        idx = self._schema.index_of(attribute)
        rows = [row[:idx] + (fn(row[idx]),) + row[idx + 1 :] for row in self._rows]
        return Relation(self._name, self._schema, rows)

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_dicts(
        cls,
        name: str,
        records: Sequence[Mapping[str, Any]],
        schema: RelationSchema | Sequence[str] | None = None,
    ) -> "Relation":
        """Build a relation from a list of dictionaries.

        If ``schema`` is omitted the attribute order of the first record is
        used; every record must then provide exactly the same keys.
        """
        if schema is None:
            if not records:
                raise RelationError("cannot infer a schema from an empty record list")
            schema = RelationSchema(list(records[0].keys()))
        elif not isinstance(schema, RelationSchema):
            schema = RelationSchema(schema)
        names = schema.names
        rows = []
        for i, record in enumerate(records):
            missing = set(names) - set(record)
            if missing:
                raise RelationError(f"record {i} is missing attributes {sorted(missing)}")
            rows.append(tuple(record[n] for n in names))
        return cls(name, schema, rows)

    @classmethod
    def from_columns(cls, name: str, columns: Mapping[str, Sequence[Any]]) -> "Relation":
        """Build a relation from a column-name -> values mapping."""
        if not columns:
            raise RelationError("cannot build a relation from an empty column mapping")
        lengths = {len(values) for values in columns.values()}
        if len(lengths) != 1:
            raise RelationError(f"columns have inconsistent lengths: {sorted(lengths)}")
        schema = RelationSchema(list(columns.keys()))
        rows = list(zip(*columns.values()))
        return cls(name, schema, rows)

    @classmethod
    def from_codes(
        cls,
        name: str,
        schema: RelationSchema | Sequence[Attribute | str],
        columns: Sequence[tuple[Sequence[int], Sequence[Any]]],
    ) -> "Relation":
        """Build a relation from per-column ``(codes, dictionary)`` pairs.

        The inverse of (:meth:`column_codes`, :meth:`column_dictionary`):
        ``columns`` holds one pair per schema attribute, where ``codes`` are
        dense integers assigned in first-appearance order and ``dictionary``
        decodes them.  Codes are validated to *be* first-appearance dense —
        that invariant is what lets the encoding cache be pre-seeded with the
        given codes, so a round-tripped relation re-encodes bit-identically
        (same :meth:`content_hash`) without a second encoding pass.
        """
        if not isinstance(schema, RelationSchema):
            schema = RelationSchema(schema)
        if len(columns) != len(schema):
            raise RelationError(
                f"relation {name!r} got {len(columns)} code columns, "
                f"schema expects {len(schema)}"
            )
        lengths = {len(codes) for codes, _ in columns}
        if len(lengths) > 1:
            raise RelationError(f"code columns have inconsistent lengths: {sorted(lengths)}")
        decoded: list[list[Any]] = []
        for attribute, (codes, dictionary) in zip(schema.names, columns):
            next_code = 0
            for code in codes:
                if code == next_code:
                    next_code += 1
                elif not 0 <= code < next_code:
                    raise RelationError(
                        f"column {attribute!r} of relation {name!r} is not a "
                        f"first-appearance dense encoding (code {code} after "
                        f"{next_code} distinct values)"
                    )
            if next_code != len(dictionary):
                raise RelationError(
                    f"column {attribute!r} of relation {name!r} uses {next_code} "
                    f"codes but its dictionary holds {len(dictionary)} values"
                )
            decoded.append([dictionary[code] for code in codes])
        relation = cls(name, schema, list(zip(*decoded)) if decoded else [])
        for attribute, (codes, dictionary) in zip(schema.names, columns):
            counts = [0] * len(dictionary)
            for code in codes:
                counts[code] += 1
            relation._column_codes_cache[attribute] = (
                array("q", codes),
                len(dictionary),
                counts,
            )
        return relation

    @classmethod
    def empty(cls, name: str, schema: RelationSchema | Sequence[str]) -> "Relation":
        """An empty relation over ``schema``."""
        return cls(name, schema, [])

    # -- pretty printing ------------------------------------------------------
    def to_text(self, limit: int = 20) -> str:
        """Render the relation as an ASCII table (truncated to ``limit`` rows)."""
        names = self.attribute_names
        shown = [tuple("NULL" if v is None else str(v) for v in row) for row in self._rows[:limit]]
        widths = [len(n) for n in names]
        for row in shown:
            for i, value in enumerate(row):
                widths[i] = max(widths[i], len(value))
        header = " | ".join(n.ljust(widths[i]) for i, n in enumerate(names))
        separator = "-+-".join("-" * w for w in widths)
        lines = [header, separator]
        for row in shown:
            lines.append(" | ".join(v.ljust(widths[i]) for i, v in enumerate(row)))
        if len(self._rows) > limit:
            lines.append(f"... ({len(self._rows) - limit} more rows)")
        return "\n".join(lines)


def validate_same_schema(left: Relation, right: Relation) -> None:
    """Raise :class:`SchemaError` unless both relations share attribute names."""
    if left.schema.names != right.schema.names:
        raise SchemaError(
            f"relations {left.name!r} and {right.name!r} have different schemas: "
            f"{left.schema.names} vs {right.schema.names}"
        )
