"""Relation schemas and attributes.

The relational substrate of this reproduction is intentionally small and
self-contained: a :class:`RelationSchema` is an ordered collection of
:class:`Attribute` objects, each carrying a name and an optional logical
type.  Schemas are immutable; all algebra operators derive new schemas
rather than mutating existing ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence


class SchemaError(ValueError):
    """Raised when a schema is malformed or an attribute lookup fails."""


#: Logical types recognised by the substrate.  They are informational only:
#: the engine never coerces values, but generators and CSV I/O use them to
#: parse columns consistently.
ATTRIBUTE_TYPES = ("string", "integer", "float", "boolean", "date")


@dataclass(frozen=True, order=True)
class Attribute:
    """A single named attribute (column) of a relation.

    Parameters
    ----------
    name:
        The attribute name.  Names must be non-empty and unique within a
        schema.
    dtype:
        Logical type; one of :data:`ATTRIBUTE_TYPES`.  Defaults to
        ``"string"``.
    """

    name: str
    dtype: str = field(default="string", compare=False)

    def __post_init__(self) -> None:
        if not self.name or not isinstance(self.name, str):
            raise SchemaError(f"attribute name must be a non-empty string, got {self.name!r}")
        if self.dtype not in ATTRIBUTE_TYPES:
            raise SchemaError(
                f"unknown attribute type {self.dtype!r}; expected one of {ATTRIBUTE_TYPES}"
            )

    def renamed(self, new_name: str) -> "Attribute":
        """Return a copy of this attribute with a different name."""
        return Attribute(new_name, self.dtype)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


class RelationSchema:
    """An ordered, immutable collection of uniquely named attributes."""

    __slots__ = ("_attributes", "_index")

    def __init__(self, attributes: Iterable[Attribute | str]) -> None:
        attrs: list[Attribute] = []
        for attribute in attributes:
            if isinstance(attribute, str):
                attribute = Attribute(attribute)
            elif not isinstance(attribute, Attribute):
                raise SchemaError(f"expected Attribute or str, got {type(attribute).__name__}")
            attrs.append(attribute)
        names = [a.name for a in attrs]
        duplicates = {n for n in names if names.count(n) > 1}
        if duplicates:
            raise SchemaError(f"duplicate attribute names in schema: {sorted(duplicates)}")
        self._attributes: tuple[Attribute, ...] = tuple(attrs)
        self._index: dict[str, int] = {a.name: i for i, a in enumerate(attrs)}

    # -- basic container protocol -------------------------------------------------
    def __len__(self) -> int:
        return len(self._attributes)

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __contains__(self, item: object) -> bool:
        if isinstance(item, Attribute):
            return item.name in self._index
        return item in self._index

    def __getitem__(self, key: int | str) -> Attribute:
        if isinstance(key, int):
            return self._attributes[key]
        try:
            return self._attributes[self._index[key]]
        except KeyError:
            raise SchemaError(f"unknown attribute {key!r}; schema has {self.names}") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, RelationSchema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return hash(self._attributes)

    def __repr__(self) -> str:
        return f"RelationSchema({list(self.names)})"

    # -- queries -------------------------------------------------------------------
    @property
    def attributes(self) -> tuple[Attribute, ...]:
        """The attributes, in schema order."""
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        """The attribute names, in schema order."""
        return tuple(a.name for a in self._attributes)

    def index_of(self, name: str) -> int:
        """Return the positional index of attribute ``name``."""
        try:
            return self._index[name]
        except KeyError:
            raise SchemaError(f"unknown attribute {name!r}; schema has {self.names}") from None

    def indexes_of(self, names: Sequence[str]) -> tuple[int, ...]:
        """Return positional indexes for several attribute names."""
        return tuple(self.index_of(name) for name in names)

    def has(self, name: str) -> bool:
        """Whether this schema contains an attribute called ``name``."""
        return name in self._index

    # -- derivations ---------------------------------------------------------------
    def project(self, names: Sequence[str]) -> "RelationSchema":
        """Return a schema restricted to ``names`` (in the given order)."""
        return RelationSchema([self[name] for name in names])

    def drop(self, names: Iterable[str]) -> "RelationSchema":
        """Return a schema without the attributes in ``names``."""
        dropped = set(names)
        missing = dropped - set(self.names)
        if missing:
            raise SchemaError(f"cannot drop unknown attributes {sorted(missing)}")
        return RelationSchema([a for a in self._attributes if a.name not in dropped])

    def concat(self, other: "RelationSchema") -> "RelationSchema":
        """Concatenate two schemas; attribute names must not collide."""
        overlap = set(self.names) & set(other.names)
        if overlap:
            raise SchemaError(f"schema concatenation would duplicate attributes {sorted(overlap)}")
        return RelationSchema(self._attributes + other._attributes)

    def renamed(self, mapping: dict[str, str]) -> "RelationSchema":
        """Return a schema with attributes renamed according to ``mapping``."""
        unknown = set(mapping) - set(self.names)
        if unknown:
            raise SchemaError(f"cannot rename unknown attributes {sorted(unknown)}")
        return RelationSchema(
            [a.renamed(mapping.get(a.name, a.name)) for a in self._attributes]
        )


def make_schema(*names: str, dtypes: dict[str, str] | None = None) -> RelationSchema:
    """Convenience constructor: ``make_schema("a", "b", dtypes={"a": "integer"})``."""
    dtypes = dtypes or {}
    return RelationSchema([Attribute(name, dtypes.get(name, "string")) for name in names])
