"""Common helpers for the synthetic dataset generators.

The paper evaluates InFine on MIMIC-III, PTE, PTC and TPC-H.  None of those
datasets can be redistributed here (MIMIC-III requires credentialed access,
PTE/PTC are served by an external relational repository, TPC-H at scale
factor 1 is far too large for a pure-Python benchmark substrate), so each is
replaced by a generator that reproduces the *structural* properties the
algorithms react to:

* primary keys and unique surrogate identifiers,
* foreign-key columns with configurable partial coverage (dangling tuples on
  both sides, so joins drop tuples and upstage approximate FDs),
* functionally dependent attribute groups (planted FDs),
* approximate FDs whose violating tuples are concentrated in the dangling
  part of a table (so that they become exact on the join, as in the paper's
  ``expire_flag ⇁ dod`` example),
* low-cardinality categorical columns that give rise to incidental join FDs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Sequence

from ..relational.relation import NULL, Relation


@dataclass(frozen=True)
class DatasetProfile:
    """Scaling profile of a synthetic database.

    ``scale`` multiplies every base-table row count; the defaults are chosen
    so that the full benchmark suite (including the slowest baselines) runs
    on a laptop in minutes while preserving the relative characteristics of
    Table I of the paper (which tables are large, which joins repeat tuples,
    which have dangling rows).
    """

    name: str
    scale: float = 1.0
    seed: int = 7

    def rows(self, base: int, minimum: int = 3) -> int:
        """Scaled row count, never below ``minimum``."""
        return max(minimum, int(round(base * self.scale)))


class SyntheticTableBuilder:
    """Incremental builder for one synthetic relation.

    Columns are added as callables receiving the row index and the random
    generator; this keeps the individual dataset generators declarative and
    compact while allowing planted FDs (a column derived from another) and
    planted AFDs (a derived column with targeted violations).
    """

    def __init__(self, name: str, rng: random.Random) -> None:
        self.name = name
        self.rng = rng
        self._columns: list[tuple[str, Callable[[int, random.Random], object]]] = []

    def column(
        self, name: str, make: Callable[[int, random.Random], object]
    ) -> "SyntheticTableBuilder":
        """Add a column computed by ``make(row_index, rng)``."""
        self._columns.append((name, make))
        return self

    def constant(self, name: str, value: object) -> "SyntheticTableBuilder":
        """Add a constant column."""
        return self.column(name, lambda i, rng: value)

    def sequence(self, name: str, prefix: str = "", start: int = 1) -> "SyntheticTableBuilder":
        """Add a unique surrogate-key column (``prefix`` + running integer)."""
        if prefix:
            return self.column(name, lambda i, rng: f"{prefix}{start + i}")
        return self.column(name, lambda i, rng: start + i)

    def categorical(self, name: str, values: Sequence[object],
                    weights: Sequence[float] | None = None) -> "SyntheticTableBuilder":
        """Add a categorical column drawn from ``values``."""
        values = list(values)
        weights = list(weights) if weights is not None else None
        return self.column(name, lambda i, rng: rng.choices(values, weights=weights, k=1)[0])

    def integer(self, name: str, low: int, high: int) -> "SyntheticTableBuilder":
        """Add a uniform integer column in ``[low, high]``."""
        return self.column(name, lambda i, rng: rng.randint(low, high))

    def derived(self, name: str, source: str,
                mapping: Callable[[object], object]) -> "SyntheticTableBuilder":
        """Add a column functionally determined by a previously added column.

        This plants the exact FD ``source -> name``.
        """
        source_index = self._index_of(source)

        def make(i: int, rng: random.Random, _cache: dict = {}) -> object:  # noqa: B006
            return mapping(self._current_row[source_index])

        return self.column(name, make)

    def _index_of(self, column_name: str) -> int:
        for index, (name, _maker) in enumerate(self._columns):
            if name == column_name:
                return index
        raise KeyError(f"column {column_name!r} has not been defined yet on table {self.name!r}")

    def build(self, n_rows: int) -> Relation:
        """Materialise ``n_rows`` rows."""
        names = [name for name, _maker in self._columns]
        rows: list[tuple] = []
        for i in range(n_rows):
            self._current_row: list[object] = []
            for _name, maker in self._columns:
                self._current_row.append(maker(i, self.rng))
            rows.append(tuple(self._current_row))
        return Relation(self.name, names, rows)


def pick_foreign_keys(
    rng: random.Random,
    parent_keys: Sequence[object],
    n_rows: int,
    coverage: float = 0.9,
    dangling_pool: Sequence[object] = (),
    zipf: float = 1.3,
) -> list[object]:
    """Draw ``n_rows`` foreign-key values referencing ``parent_keys``.

    Parameters
    ----------
    rng:
        Random generator.
    parent_keys:
        The referenced key values.
    n_rows:
        Number of FK values to draw.
    coverage:
        Fraction of rows that reference an existing parent; the rest use
        values from ``dangling_pool`` (dangling tuples that any inner join
        will drop).
    dangling_pool:
        Values guaranteed to be absent from ``parent_keys``.
    zipf:
        Skew of the parent-key popularity (``1.0`` = uniform); a skewed
        distribution makes some parents repeat many times through the join,
        mirroring the high-coverage views of the paper.
    """
    parent_keys = list(parent_keys)
    weights = [1.0 / (rank ** zipf) for rank in range(1, len(parent_keys) + 1)]
    values: list[object] = []
    dangling_pool = list(dangling_pool)
    for _ in range(n_rows):
        if dangling_pool and rng.random() > coverage:
            values.append(rng.choice(dangling_pool))
        else:
            values.append(rng.choices(parent_keys, weights=weights, k=1)[0])
    return values


def null_or(value: object, is_null: bool) -> object:
    """Return ``NULL`` when ``is_null`` else ``value`` (readability helper)."""
    return NULL if is_null else value
