"""Synthetic MIMIC-III-like clinical database.

The real MIMIC-III requires credentialed access, so this module generates a
catalogue with the same four tables used by the paper (``patients``,
``admissions``, ``diagnoses_icd``, ``d_icd_diagnoses``), the same attribute
shapes and the structural properties the running example of the paper relies
on:

* ``subject_id`` and ``dob`` are keys of ``patients``; ``dod`` determines
  ``expire_flag``;
* ``expire_flag -> dod`` is an *approximate* FD on ``patients`` whose
  violations are concentrated in patients that never appear in
  ``admissions`` — joining the two tables drops them and upstages the FD,
  exactly as in Fig. 1 of the paper;
* ``admissions`` has multiple rows per patient (coverage > 1 for the join on
  ``subject_id``) plus a few rows referencing unknown patients (dangling on
  the other side);
* patient-level attributes repeated in ``admissions`` (``insurance``,
  ``h_expire_flag``) create the cross-table join FDs of the running example.
"""

from __future__ import annotations

import random

from ..relational.relation import NULL, Relation
from .generator import DatasetProfile, pick_foreign_keys

#: Default (unscaled) row counts; the paper's table sizes divided by ~50 so
#: that the slowest baselines stay tractable on the pure-Python substrate.
DEFAULT_ROWS = {
    "patients": 900,
    "admissions": 1200,
    "diagnoses_icd": 2600,
    "d_icd_diagnoses": 300,
}

_ADMISSION_LOCATIONS = (
    "EMERGENCY ROOM ADMIT",
    "PHYS REFERRAL/NORMAL DELI",
    "CLINIC REFERRAL/PREMATURE",
    "TRANSFER FROM HOSP/EXTRAM",
)
_INSURANCES = ("Medicare", "Medicaid", "Private", "Self Pay", "Government")
_DIAGNOSIS_STEMS = (
    "CHEST PAIN", "PNEUMONIA", "SEPSIS", "GI BLEEDING", "STROKE", "FRACTURE",
    "UNSTABLE ANGINA", "HEART FAILURE", "RENAL FAILURE", "ASTHMA",
)


def generate_mimic(profile: DatasetProfile | None = None) -> dict[str, Relation]:
    """Generate the synthetic MIMIC-III-like catalogue."""
    profile = profile or DatasetProfile("mimic3")
    rng = random.Random(profile.seed)

    n_patients = profile.rows(DEFAULT_ROWS["patients"])
    n_admissions = profile.rows(DEFAULT_ROWS["admissions"])
    n_diagnoses = profile.rows(DEFAULT_ROWS["diagnoses_icd"])
    n_codes = profile.rows(DEFAULT_ROWS["d_icd_diagnoses"], minimum=10)

    patients, admitted_ids, dangling_ids = _patients(rng, n_patients)
    admissions = _admissions(rng, admitted_ids, dangling_ids, n_admissions)
    codes = _icd_codes(rng, n_codes)
    diagnoses = _diagnoses_icd(rng, admitted_ids, dangling_ids, codes, n_diagnoses)

    return {
        "patients": patients,
        "admissions": admissions,
        "diagnoses_icd": diagnoses,
        "d_icd_diagnoses": codes,
    }


def _patients(
    rng: random.Random, n_patients: int
) -> tuple[Relation, list[int], list[int]]:
    """``patients(subject_id, gender, dob, dod, expire_flag)``."""
    rows = []
    admitted: list[int] = []
    dangling: list[int] = []
    # Roughly 6 % of the patients never show up in admissions; their rows
    # carry the violations of the planted approximate FDs.
    n_dangling = max(2, n_patients // 16)
    deceased_dod_for_admitted = "2145-08-12"  # single value -> expire_flag -> dod upstages
    for i in range(n_patients):
        subject_id = 10_000 + i
        gender = rng.choice(("F", "M"))
        dob = f"{1910 + (i * 7) % 95:04d}-{1 + (i * 3) % 12:02d}-{1 + (i * 11) % 28:02d}"
        is_dangling = i >= n_patients - n_dangling
        expire_flag = 1 if rng.random() < 0.22 else 0
        if expire_flag:
            if is_dangling:
                # Distinct death dates: these rows violate expire_flag -> dod.
                dod = f"{2100 + i % 40:04d}-{1 + i % 12:02d}-{1 + i % 28:02d}"
            else:
                dod = deceased_dod_for_admitted
        else:
            dod = NULL
        rows.append((subject_id, gender, dob, dod, expire_flag))
        (dangling if is_dangling else admitted).append(subject_id)
    relation = Relation(
        "patients", ("subject_id", "gender", "dob", "dod", "expire_flag"), rows
    )
    return relation, admitted, dangling


def _admissions(
    rng: random.Random,
    admitted_ids: list[int],
    dangling_ids: list[int],
    n_admissions: int,
) -> Relation:
    """``admissions(subject_id, admittime, admission_location, insurance,
    diagnosis, h_expire_flag)``."""
    # A few admissions reference patients that are not in the patients table
    # (simulating the partial extract of the paper), so the join also drops
    # admission rows and can upstage admission-side AFDs.
    missing_pool = [99_000 + i for i in range(8)]
    subject_ids = pick_foreign_keys(
        rng, admitted_ids, n_admissions, coverage=0.97, dangling_pool=missing_pool, zipf=0.9
    )
    insurance_of = {sid: rng.choice(_INSURANCES) for sid in set(subject_ids)}
    h_expire_of = {sid: 1 if rng.random() < 0.15 else 0 for sid in set(subject_ids)}
    rows = []
    for i, subject_id in enumerate(subject_ids):
        admittime = (
            f"{2100 + i % 50:04d}-{1 + i % 12:02d}-{1 + i % 28:02d} "
            f"{i % 24:02d}:{(i * 7) % 60:02d}"
        )
        location = rng.choice(_ADMISSION_LOCATIONS)
        insurance = insurance_of[subject_id]
        stem = rng.choice(_DIAGNOSIS_STEMS)
        diagnosis = f"{stem} #{rng.randint(1, 40)}"
        h_expire_flag = h_expire_of[subject_id]
        rows.append((subject_id, admittime, location, insurance, diagnosis, h_expire_flag))
    return Relation(
        "admissions",
        ("subject_id", "admittime", "admission_location", "insurance", "diagnosis",
         "h_expire_flag"),
        rows,
    )


def _icd_codes(rng: random.Random, n_codes: int) -> Relation:
    """``d_icd_diagnoses(icd9_code, short_title, long_title)``."""
    rows = []
    for i in range(n_codes):
        code = f"{400 + i}.{i % 10}"
        stem = _DIAGNOSIS_STEMS[i % len(_DIAGNOSIS_STEMS)]
        short_title = f"{stem[:12]} {i}"
        long_title = f"{stem} (detailed description {i})"
        rows.append((code, short_title, long_title))
    return Relation("d_icd_diagnoses", ("icd9_code", "short_title", "long_title"), rows)


def _diagnoses_icd(
    rng: random.Random,
    admitted_ids: list[int],
    dangling_ids: list[int],
    codes: Relation,
    n_diagnoses: int,
) -> Relation:
    """``diagnoses_icd(subject_id, seq_num, icd9_code, severity)``."""
    code_values = codes.column("icd9_code")
    # Some diagnosis rows reference patients missing from the patients table
    # and some ICD codes missing from the dictionary (coverage < 1).
    missing_codes = [f"999.{i}" for i in range(5)]
    subject_ids = pick_foreign_keys(
        rng, admitted_ids, n_diagnoses, coverage=0.96,
        dangling_pool=[99_100 + i for i in range(6)], zipf=0.8,
    )
    severity_of_code = {code: rng.choice(("LOW", "MEDIUM", "HIGH")) for code in code_values}
    for code in missing_codes:
        severity_of_code[code] = "HIGH"
    rows = []
    per_subject_counter: dict[int, int] = {}
    for subject_id in subject_ids:
        seq = per_subject_counter.get(subject_id, 0) + 1
        per_subject_counter[subject_id] = seq
        if rng.random() < 0.03:
            code = rng.choice(missing_codes)
        else:
            code = rng.choice(code_values)
        rows.append((subject_id, seq, code, severity_of_code[code]))
    return Relation(
        "diagnoses_icd", ("subject_id", "seq_num", "icd9_code", "severity"), rows
    )
