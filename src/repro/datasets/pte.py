"""Synthetic PTE-like (predictive toxicology evaluation) database.

The original PTE dataset is served by the ``relational.fit.cvut.cz``
repository which is not reachable offline; the generator reproduces its
schema and join graph: ``drug`` is the hub table, ``atm`` (atoms), ``bond``
(bonds) and ``active`` (carcinogenicity labels) all reference it through
``drug_id``.

Structural properties mirrored from the paper's Table I/II:

* ``drug`` is a single-column key table (340 rows, 0 FDs);
* ``active`` covers only a subset of the drugs (so ``active ⋈ drug`` has
  coverage < 1 and drops tuples);
* ``atm`` and ``bond`` have thousands of rows with several atoms/bonds per
  drug (coverage ≫ 1);
* element/charge/bond-type attributes are functionally related so the joins
  exhibit base, upstaged and inferred FDs.
"""

from __future__ import annotations

import random

from ..relational.algebra import rename
from ..relational.relation import Relation
from .generator import DatasetProfile, pick_foreign_keys

#: Default (unscaled) row counts (paper sizes reduced ~8x).
DEFAULT_ROWS = {
    "drug": 340,
    "active": 290,
    "atm": 1150,
    "bond": 1160,
}

_ELEMENTS = ("c", "h", "o", "n", "s", "cl", "br", "f", "p")
_BOND_TYPES = (1, 2, 3, 7)


def generate_pte(profile: DatasetProfile | None = None) -> dict[str, Relation]:
    """Generate the synthetic PTE-like catalogue."""
    profile = profile or DatasetProfile("pte")
    rng = random.Random(profile.seed + 1)

    n_drugs = profile.rows(DEFAULT_ROWS["drug"], minimum=20)
    n_active = min(profile.rows(DEFAULT_ROWS["active"], minimum=15), n_drugs)
    n_atoms = profile.rows(DEFAULT_ROWS["atm"], minimum=60)
    n_bonds = profile.rows(DEFAULT_ROWS["bond"], minimum=60)

    drug_ids = [f"d{i + 1}" for i in range(n_drugs)]
    drug = Relation("drug", ("drug_id",), [(d,) for d in drug_ids])

    # `active` labels a strict subset of the drugs; the join with `drug`
    # therefore keeps coverage below 1 on the drug side.
    labelled = rng.sample(drug_ids, n_active)
    active = Relation(
        "active",
        ("drug_id", "activity"),
        [(d, rng.choice(("active", "inactive"))) for d in labelled],
    )

    # Atoms: element determines charge band and atom_type (planted FDs);
    # a handful of atoms reference unknown drugs (dangling).
    atom_rows = []
    element_charge = {e: round(-0.4 + 0.1 * i, 1) for i, e in enumerate(_ELEMENTS)}
    element_type = {e: 20 + i for i, e in enumerate(_ELEMENTS)}
    atom_drug = pick_foreign_keys(
        rng, drug_ids, n_atoms, coverage=0.985,
        dangling_pool=[f"dx{i}" for i in range(4)], zipf=0.6,
    )
    for i, drug_id in enumerate(atom_drug):
        atom_id = f"{drug_id}_a{i}"
        element = rng.choice(_ELEMENTS)
        atom_rows.append(
            (atom_id, drug_id, element, element_charge[element], element_type[element])
        )
    atm = Relation("atm", ("atom_id", "drug_id", "element", "charge", "atom_type"), atom_rows)

    # Bonds connect two atoms of the same drug; bond_type determines a
    # derived bond_energy attribute (planted FD), and a few bonds reference
    # drugs without atoms or outside the drug table.
    atoms_by_drug: dict[str, list[str]] = {}
    for atom_id, drug_id, *_rest in atom_rows:
        atoms_by_drug.setdefault(drug_id, []).append(atom_id)
    eligible = [d for d, atoms in atoms_by_drug.items() if len(atoms) >= 2]
    bond_rows = []
    bond_energy = {bond_type: 90 + 25 * bond_type for bond_type in _BOND_TYPES}
    bond_drug = pick_foreign_keys(
        rng, eligible, n_bonds, coverage=0.99,
        dangling_pool=[f"dy{i}" for i in range(3)], zipf=0.6,
    )
    for i, drug_id in enumerate(bond_drug):
        atoms = atoms_by_drug.get(drug_id)
        if atoms and len(atoms) >= 2:
            atom1_id, atom2_id = rng.sample(atoms, 2)
        else:
            atom1_id, atom2_id = f"{drug_id}_a0", f"{drug_id}_a1"
        bond_type = rng.choice(_BOND_TYPES)
        bond_rows.append((drug_id, atom1_id, atom2_id, bond_type, bond_energy[bond_type]))
    # The bond table carries its own foreign-key name (bond_drug_id) so that
    # views joining both atm and bond do not collide on a non-join attribute.
    bond = Relation(
        "bond", ("bond_drug_id", "atom1_id", "atom2_id", "bond_type", "bond_energy"), bond_rows
    )

    # A renamed copy of `atm` used by the self-join view
    # [atm ⋈ bond ⋈ atm] ⋈ drug of Table II (the second occurrence of `atm`
    # must carry distinct attribute names to stay within SPJ algebra).
    atm2 = rename(
        atm,
        {
            "atom_id": "atom2_ref",
            "element": "element2",
            "charge": "charge2",
            "atom_type": "atom_type2",
            "drug_id": "drug_id2",
        },
        name="atm2",
    )

    return {"drug": drug, "active": active, "atm": atm, "bond": bond, "atm2": atm2}
