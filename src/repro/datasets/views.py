"""The 16 SPJ views of Table II of the paper, over the synthetic catalogues.

Every view is registered as a :class:`ViewCase` describing which database it
belongs to, the view specification, and the paper's label, so the experiment
harness, the benchmarks and the CLI can iterate over exactly the workload of
the paper's evaluation section.

Attribute counts of the TPC-H views are kept close to the paper's Table II by
adding the projections the adapted TPC-H queries imply (the paper removed the
group-by/order-by clauses but kept each query's column list).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..relational.view import ViewSpec, base, join, proj

#: The four databases of the evaluation.
DATABASES: tuple[str, ...] = ("pte", "ptc", "mimic3", "tpch")


@dataclass(frozen=True)
class ViewCase:
    """One SPJ view of the evaluation workload."""

    #: Stable identifier used by benchmarks and the CLI (e.g. ``"mimic3/patients_admissions"``).
    key: str
    #: Database the view is defined on (``pte``/``ptc``/``mimic3``/``tpch``).
    database: str
    #: The label used in the paper's tables and figures.
    paper_label: str
    #: The SPJ view specification.
    spec: ViewSpec
    #: Short human-readable description.
    description: str = ""


def _mimic_views() -> list[ViewCase]:
    patients_admissions = join(base("patients"), base("admissions"), on="subject_id")
    diagnoses_patients = join(base("diagnoses_icd"), base("patients"), on="subject_id")
    dicd_diagnoses = join(base("d_icd_diagnoses"), base("diagnoses_icd"), on="icd9_code")
    nested = join(
        join(base("diagnoses_icd"), base("patients"), on="subject_id"),
        base("d_icd_diagnoses"),
        on="icd9_code",
    )
    return [
        ViewCase(
            "mimic3/patients_admissions", "mimic3", "Q(patients ⋈ admissions)",
            patients_admissions,
            "The running example of the paper: clinical join of patients and admissions.",
        ),
        ViewCase(
            "mimic3/diagnoses_patients", "mimic3", "diagnosesicd ⋈ patients",
            diagnoses_patients,
            "Diagnosis rows enriched with patient demographics.",
        ),
        ViewCase(
            "mimic3/dicd_diagnoses", "mimic3", "dicddiagnoses ⋈ diagnosesicd",
            dicd_diagnoses,
            "ICD dictionary joined with the diagnosis fact table.",
        ),
        ViewCase(
            "mimic3/diagnoses_patients_dicd", "mimic3",
            "[diagnosesicd ⋈ patients] ⋈ dicddiagnoses",
            nested,
            "Three-table nested join over the clinical schema.",
        ),
    ]


def _ptc_views() -> list[ViewCase]:
    atom_molecule = join(base("atom"), base("molecule"), on="molecule_id")
    connected_bond = join(base("connected"), base("bond"), on="connected_bond_id",
                          right_on="bond_id")
    connected_bond_molecule = join(
        connected_bond, base("molecule"), on="bond_molecule_id", right_on="molecule_id"
    )
    connected_atom_molecule = join(
        base("connected"),
        join(base("atom"), base("molecule"), on="molecule_id"),
        on="atom1_id",
        right_on="atom_id",
    )
    return [
        ViewCase(
            "ptc/atom_molecule", "ptc", "atom ⋈ molecule", atom_molecule,
            "Atoms enriched with their molecule's carcinogenicity label.",
        ),
        ViewCase(
            "ptc/connected_bond", "ptc", "connected ⋈ bond", connected_bond,
            "Atom-bond adjacency joined with bond descriptors "
            "(equi-join on differently named keys).",
        ),
        ViewCase(
            "ptc/connected_bond_molecule", "ptc", "[connected ⋈ bond] ⋈ molecule",
            connected_bond_molecule,
            "Three-table nested join up to the molecule label.",
        ),
        ViewCase(
            "ptc/connected_atom_molecule", "ptc", "connected ⋈_id1 [atom ⋈ molecule]",
            connected_atom_molecule,
            "Adjacency joined with atoms through the id1 equi-join of the paper.",
        ),
    ]


def _pte_views() -> list[ViewCase]:
    atm_drug = join(base("atm"), base("drug"), on="drug_id")
    active_drug = join(base("active"), base("drug"), on="drug_id")
    bond_drug_active = join(
        join(base("bond"), base("drug"), on="bond_drug_id", right_on="drug_id"),
        base("active"),
        on="drug_id",
    )
    atm_bond_atm_drug = join(
        join(
            join(base("atm"), base("bond"), on="atom_id", right_on="atom1_id"),
            base("atm2"),
            on="atom2_id",
            right_on="atom2_ref",
        ),
        base("drug"),
        on="drug_id",
    )
    return [
        ViewCase(
            "pte/atm_drug", "pte", "atm ⋈ drug", atm_drug,
            "Atoms joined with the drug hub table.",
        ),
        ViewCase(
            "pte/active_drug", "pte", "active ⋈ drug", active_drug,
            "Carcinogenicity labels joined with the drug hub table (coverage < 1).",
        ),
        ViewCase(
            "pte/bond_drug_active", "pte", "[bond ⋈ drug] ⋈ active", bond_drug_active,
            "Bonds restricted to labelled drugs.",
        ),
        ViewCase(
            "pte/atm_bond_atm_drug", "pte", "[atm ⋈ bond ⋈ atm] ⋈ drug", atm_bond_atm_drug,
            "Self-join of atoms through bonds (second atom copy uses renamed attributes).",
        ),
    ]


def _tpch_views() -> list[ViewCase]:
    q2_join = join(
        join(
            join(
                join(base("part"), base("partsupp"), on="partkey"),
                base("supplier"),
                on="suppkey",
            ),
            base("nation"),
            on="nationkey",
        ),
        base("region"),
        on="regionkey",
    )
    q2 = proj(
        q2_join,
        (
            "partkey", "p_mfgr", "p_brand", "suppkey", "s_name",
            "s_acctbal", "nationkey", "n_name", "regionkey", "r_name",
        ),
    )
    q3_join = join(
        join(base("customer"), base("orders"), on="custkey"),
        base("lineitem"),
        on="orderkey",
    )
    q3 = proj(
        q3_join,
        ("custkey", "c_mktsegment", "orderkey", "o_orderdate", "o_orderpriority", "l_shipmode"),
    )
    q9_join = join(
        join(
            join(
                join(
                    join(base("part"), base("partsupp"), on="partkey"),
                    base("supplier"),
                    on="suppkey",
                ),
                base("lineitem"),
                on=("partkey", "suppkey"),
            ),
            base("orders"),
            on="orderkey",
        ),
        base("nation"),
        on="nationkey",
    )
    q9 = proj(
        q9_join,
        (
            "partkey", "suppkey", "nationkey", "n_name", "orderkey",
            "o_orderdate", "l_quantity", "l_tax", "l_shipmode",
        ),
    )
    q11 = join(
        join(
            join(base("part"), base("partsupp"), on="partkey"),
            base("supplier"),
            on="suppkey",
        ),
        base("nation"),
        on="nationkey",
    )
    return [
        ViewCase("tpch/q2", "tpch", "Q2*(P ⋈ PS ⋈ S ⋈ N ⋈ R)", q2,
                 "Minimum-cost-supplier query without aggregation."),
        ViewCase("tpch/q3", "tpch", "Q3*(C ⋈ O ⋈ L)", q3,
                 "Shipping-priority query without aggregation."),
        ViewCase("tpch/q9", "tpch", "Q9*(P ⋈ PS ⋈ S ⋈ L ⋈ O ⋈ N)", q9,
                 "Product-type-profit query without aggregation (largest join of the workload)."),
        ViewCase("tpch/q11", "tpch", "Q11*(P ⋈ PS ⋈ S ⋈ N)", q11,
                 "Important-stock query without aggregation."),
    ]


def paper_views() -> list[ViewCase]:
    """The 16 SPJ views of Table II, in the paper's order (PTE, PTC, MIMIC3, TPC-H)."""
    return _pte_views() + _ptc_views() + _mimic_views() + _tpch_views()


def views_for(database: str) -> list[ViewCase]:
    """The views belonging to one database."""
    if database not in DATABASES:
        raise KeyError(f"unknown database {database!r}; expected one of {DATABASES}")
    return [case for case in paper_views() if case.database == database]


def view_by_key(key: str) -> ViewCase:
    """Look a view case up by its stable key (e.g. ``"tpch/q3"``)."""
    for case in paper_views():
        if case.key == key:
            return case
    raise KeyError(f"unknown view {key!r}; available: {[c.key for c in paper_views()]}")
