"""Synthetic TPC-H-like decision-support database.

TPC-H at scale factor 1 (the configuration used by the paper) holds six
million ``lineitem`` rows — far beyond what a pure-Python FD-discovery
substrate can process in a benchmark loop — so the generator produces the
same eight-table schema at a drastically reduced, configurable scale.  Join
keys use the bare TPC-H key names (``partkey``, ``suppkey``, ``nationkey``,
``regionkey``, ``custkey``, ``orderkey``) so the Q2*/Q3*/Q9*/Q11* views of
Table II can be expressed as natural equi-joins; non-key attributes keep the
usual single-letter prefixes to stay unique across tables.

Structural properties mirrored from the original data:

* every table has its TPC-H primary key;
* foreign keys are fully covered except for a small configurable fraction of
  dangling rows (customers without orders, parts without lineitems, ...);
* derived attributes plant FDs (e.g. nation determines region, brand
  determines manufacturer) so that multi-way joins produce inferred FDs.
"""

from __future__ import annotations

import random

from ..relational.relation import Relation
from .generator import DatasetProfile, pick_foreign_keys

#: Default (unscaled) row counts, roughly TPC-H sf-1 divided by 3000.
DEFAULT_ROWS = {
    "region": 5,
    "nation": 25,
    "supplier": 60,
    "customer": 150,
    "part": 180,
    "partsupp": 420,
    "orders": 700,
    "lineitem": 1500,
}

_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY")
_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW")
_MANUFACTURERS = ("Manufacturer#1", "Manufacturer#2", "Manufacturer#3",
                  "Manufacturer#4", "Manufacturer#5")
_SHIP_MODES = ("AIR", "RAIL", "SHIP", "TRUCK", "MAIL")


def generate_tpch(profile: DatasetProfile | None = None) -> dict[str, Relation]:
    """Generate the synthetic TPC-H-like catalogue."""
    profile = profile or DatasetProfile("tpch")
    rng = random.Random(profile.seed + 3)

    n_region = max(3, min(5, profile.rows(DEFAULT_ROWS["region"], minimum=3)))
    n_nation = profile.rows(DEFAULT_ROWS["nation"], minimum=8)
    n_supplier = profile.rows(DEFAULT_ROWS["supplier"], minimum=10)
    n_customer = profile.rows(DEFAULT_ROWS["customer"], minimum=15)
    n_part = profile.rows(DEFAULT_ROWS["part"], minimum=15)
    n_partsupp = profile.rows(DEFAULT_ROWS["partsupp"], minimum=30)
    n_orders = profile.rows(DEFAULT_ROWS["orders"], minimum=40)
    n_lineitem = profile.rows(DEFAULT_ROWS["lineitem"], minimum=80)

    region = Relation(
        "region",
        ("regionkey", "r_name"),
        [(i, name) for i, name
         in enumerate(("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")[:n_region])],
    )
    region_keys = region.column("regionkey")

    nation_rows = []
    for i in range(n_nation):
        nation_rows.append((i, f"NATION_{i:02d}", rng.choice(region_keys)))
    nation = Relation("nation", ("nationkey", "n_name", "regionkey"), nation_rows)
    nation_keys = nation.column("nationkey")

    supplier_rows = []
    for i in range(n_supplier):
        nationkey = rng.choice(nation_keys)
        supplier_rows.append(
            (1000 + i, f"Supplier#{i:04d}", nationkey, round(rng.uniform(-900, 9000), 2))
        )
    supplier = Relation("supplier", ("suppkey", "s_name", "nationkey", "s_acctbal"), supplier_rows)
    supp_keys = supplier.column("suppkey")

    customer_rows = []
    for i in range(n_customer):
        nationkey = rng.choice(nation_keys)
        segment = rng.choice(_SEGMENTS)
        customer_rows.append((2000 + i, f"Customer#{i:05d}", nationkey, segment))
    customer = Relation("customer", ("custkey", "c_name", "c_nationkey", "c_mktsegment"),
                        customer_rows)
    cust_keys = customer.column("custkey")

    part_rows = []
    for i in range(n_part):
        brand_index = i % 25
        brand = f"Brand#{brand_index // 5 + 1}{brand_index % 5 + 1}"
        manufacturer = _MANUFACTURERS[brand_index // 5]
        size = 1 + (i * 7) % 50
        part_rows.append((3000 + i, f"part {i:05d}", manufacturer, brand, size))
    part = Relation("part", ("partkey", "p_name", "p_mfgr", "p_brand", "p_size"), part_rows)
    part_keys = part.column("partkey")

    partsupp_rows = []
    seen_ps = set()
    while len(partsupp_rows) < n_partsupp:
        partkey = rng.choice(part_keys)
        suppkey = rng.choice(supp_keys)
        if (partkey, suppkey) in seen_ps:
            continue
        seen_ps.add((partkey, suppkey))
        partsupp_rows.append(
            (partkey, suppkey, rng.randint(1, 9999), round(rng.uniform(1, 1000), 2)))
    partsupp = Relation("partsupp", ("partkey", "suppkey", "ps_availqty", "ps_supplycost"),
                        partsupp_rows)

    # Orders: a small fraction of customers never order (dangling customers),
    # order priority determines ship priority (planted FD).
    order_customers = pick_foreign_keys(
        rng, cust_keys, n_orders, coverage=0.995,
        dangling_pool=[2999_000 + i for i in range(3)], zipf=0.7,
    )
    status_of_priority = {"1-URGENT": "F", "2-HIGH": "F", "3-MEDIUM": "O",
                          "4-NOT SPECIFIED": "O", "5-LOW": "P"}
    orders_rows = []
    for i, custkey in enumerate(order_customers):
        priority = rng.choice(_PRIORITIES)
        orders_rows.append(
            (
                4000 + i,
                custkey,
                status_of_priority[priority],
                round(rng.uniform(800, 400000), 2),
                f"{1992 + i % 7}-{1 + i % 12:02d}-{1 + i % 28:02d}",
                priority,
            )
        )
    orders = Relation(
        "orders",
        ("orderkey", "custkey", "o_orderstatus", "o_totalprice", "o_orderdate", "o_orderpriority"),
        orders_rows,
    )
    order_keys = orders.column("orderkey")

    # Lineitems reference orders and (part, supplier) pairs that exist in
    # partsupp, so the Q9* join chain stays populated; tax is determined by
    # the ship mode (planted FD) and returnflag by the linestatus.
    lineitem_rows = []
    tax_of_mode = {mode: round(0.01 * (i + 1), 2) for i, mode in enumerate(_SHIP_MODES)}
    ps_pairs = list(seen_ps)
    for i in range(n_lineitem):
        orderkey = rng.choice(order_keys)
        partkey, suppkey = rng.choice(ps_pairs)
        quantity = rng.randint(1, 50)
        mode = rng.choice(_SHIP_MODES)
        linestatus = "F" if i % 3 else "O"
        returnflag = {"F": "R", "O": "N"}[linestatus]
        lineitem_rows.append(
            (orderkey, partkey, suppkey, i % 7 + 1, quantity, mode, tax_of_mode[mode],
             linestatus, returnflag)
        )
    lineitem = Relation(
        "lineitem",
        (
            "orderkey", "partkey", "suppkey", "l_linenumber", "l_quantity",
            "l_shipmode", "l_tax", "l_linestatus", "l_returnflag",
        ),
        lineitem_rows,
    )

    return {
        "region": region,
        "nation": nation,
        "supplier": supplier,
        "customer": customer,
        "part": part,
        "partsupp": partsupp,
        "orders": orders,
        "lineitem": lineitem,
    }
