"""Dataset registry: build the synthetic catalogues used by the evaluation.

A single entry point (:func:`load_database`) maps a database name and a
scaling profile to its catalogue of base relations; :func:`load_all` builds
the full workload of the paper.  Catalogues are deterministic for a given
``(scale, seed)`` pair, so experiments and tests are reproducible.
"""

from __future__ import annotations

from typing import Callable, Mapping

from ..relational.relation import Relation
from .generator import DatasetProfile
from .mimic import generate_mimic
from .ptc import generate_ptc
from .pte import generate_pte
from .tpch import generate_tpch
from .views import DATABASES, ViewCase, paper_views, views_for

Catalog = dict[str, Relation]

_GENERATORS: dict[str, Callable[[DatasetProfile], Catalog]] = {
    "mimic3": generate_mimic,
    "pte": generate_pte,
    "ptc": generate_ptc,
    "tpch": generate_tpch,
}

#: Named scaling presets.  ``tiny`` is meant for unit tests, ``small`` for the
#: default benchmark runs, ``medium`` for longer experiment campaigns.
SCALE_PRESETS: dict[str, float] = {
    "tiny": 0.08,
    "small": 0.35,
    "medium": 1.0,
    "large": 3.0,
}


def resolve_scale(scale: float | str) -> float:
    """Resolve a numeric scale or the name of a preset."""
    if isinstance(scale, str):
        try:
            return SCALE_PRESETS[scale]
        except KeyError:
            raise KeyError(
                f"unknown scale preset {scale!r}; available: {sorted(SCALE_PRESETS)}"
            ) from None
    if scale <= 0:
        raise ValueError("scale must be positive")
    return float(scale)


def load_database(
    database: str, scale: float | str = "small", seed: int = 7
) -> Catalog:
    """Build the catalogue of one database at the requested scale."""
    if database not in _GENERATORS:
        raise KeyError(f"unknown database {database!r}; expected one of {sorted(_GENERATORS)}")
    profile = DatasetProfile(database, scale=resolve_scale(scale), seed=seed)
    return _GENERATORS[database](profile)


def load_all(scale: float | str = "small", seed: int = 7) -> dict[str, Catalog]:
    """Build every database of the evaluation workload."""
    return {database: load_database(database, scale, seed) for database in DATABASES}


def catalog_for_view(
    case: ViewCase, catalogs: Mapping[str, Catalog] | None = None,
    scale: float | str = "small", seed: int = 7,
) -> Catalog:
    """The catalogue a view case runs against (reusing ``catalogs`` when given)."""
    if catalogs is not None and case.database in catalogs:
        return dict(catalogs[case.database])
    return load_database(case.database, scale, seed)


__all__ = [
    "Catalog",
    "DATABASES",
    "SCALE_PRESETS",
    "ViewCase",
    "catalog_for_view",
    "load_all",
    "load_database",
    "paper_views",
    "resolve_scale",
    "views_for",
]
