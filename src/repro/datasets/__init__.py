"""Synthetic substitutes for the paper's datasets and the 16 SPJ views of Table II."""

from .generator import DatasetProfile, SyntheticTableBuilder, pick_foreign_keys
from .mimic import generate_mimic
from .ptc import generate_ptc
from .pte import generate_pte
from .registry import (
    DATABASES,
    SCALE_PRESETS,
    Catalog,
    catalog_for_view,
    load_all,
    load_database,
    resolve_scale,
)
from .tpch import generate_tpch
from .views import ViewCase, paper_views, view_by_key, views_for

__all__ = [
    "DatasetProfile",
    "SyntheticTableBuilder",
    "pick_foreign_keys",
    "generate_mimic",
    "generate_pte",
    "generate_ptc",
    "generate_tpch",
    "Catalog",
    "DATABASES",
    "SCALE_PRESETS",
    "load_database",
    "load_all",
    "catalog_for_view",
    "resolve_scale",
    "ViewCase",
    "paper_views",
    "views_for",
    "view_by_key",
]
