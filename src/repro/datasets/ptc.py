"""Synthetic PTC-like (predictive toxicology challenge) database.

The original PTC dataset (molecules labelled by carcinogenicity on rodents)
is served by an external relational repository; the generator reproduces its
schema and join graph: ``molecule`` is the hub, ``atom`` references it,
``bond`` references it, and ``connected`` links atoms to bonds.

Structural properties mirrored from the paper's Table I/II:

* ``molecule`` is small (a few hundred rows) with a label column;
* ``atom`` and ``connected`` have an order of magnitude more rows
  (coverage ≫ 1 through the joins);
* ``connected`` joins ``atom`` on a *differently named* attribute
  (``atom1_id = atom_id``), exercising the equi-join path of the paper's
  ``connected ⋈_id1 [atom ⋈ molecule]`` view.
"""

from __future__ import annotations

import random

from ..relational.relation import Relation
from .generator import DatasetProfile, pick_foreign_keys

#: Default (unscaled) row counts (paper sizes reduced ~10x).
DEFAULT_ROWS = {
    "molecule": 340,
    "atom": 1230,
    "bond": 1230,
    "connected": 2470,
}

_ELEMENTS = ("c", "h", "o", "n", "s", "cl", "p", "na")
_LABELS = ("P", "N", "CE", "NE")


def generate_ptc(profile: DatasetProfile | None = None) -> dict[str, Relation]:
    """Generate the synthetic PTC-like catalogue."""
    profile = profile or DatasetProfile("ptc")
    rng = random.Random(profile.seed + 2)

    n_molecules = profile.rows(DEFAULT_ROWS["molecule"], minimum=20)
    n_atoms = profile.rows(DEFAULT_ROWS["atom"], minimum=80)
    n_bonds = profile.rows(DEFAULT_ROWS["bond"], minimum=80)
    n_connected = profile.rows(DEFAULT_ROWS["connected"], minimum=120)

    molecule_ids = [f"TR{i + 1:03d}" for i in range(n_molecules)]
    molecule = Relation(
        "molecule",
        ("molecule_id", "label"),
        [(m, rng.choice(_LABELS)) for m in molecule_ids],
    )

    # Atoms: some reference molecules missing from the molecule table, so
    # atom ⋈ molecule drops rows (coverage slightly below full on that side).
    atom_molecules = pick_foreign_keys(
        rng, molecule_ids, n_atoms, coverage=0.97,
        dangling_pool=[f"TRX{i}" for i in range(5)], zipf=0.5,
    )
    element_weight = {e: 10 + 3 * i for i, e in enumerate(_ELEMENTS)}
    atom_rows = []
    for i, molecule_id in enumerate(atom_molecules):
        atom_id = f"{molecule_id}_{i}"
        element = rng.choice(_ELEMENTS)
        atom_rows.append((atom_id, molecule_id, element, element_weight[element]))
    atom = Relation("atom", ("atom_id", "molecule_id", "element", "atomic_weight"), atom_rows)

    # Bonds belong to molecules; bond_kind determines bond_order (planted FD).
    bond_molecules = pick_foreign_keys(
        rng, molecule_ids, n_bonds, coverage=0.99,
        dangling_pool=[f"TRY{i}" for i in range(3)], zipf=0.5,
    )
    kind_order = {"single": 1, "double": 2, "triple": 3, "aromatic": 4}
    bond_rows = []
    for i, molecule_id in enumerate(bond_molecules):
        bond_id = f"b{i + 1}"
        kind = rng.choice(list(kind_order))
        bond_rows.append((bond_id, molecule_id, kind, kind_order[kind]))
    bond = Relation("bond", ("bond_id", "bond_molecule_id", "bond_kind", "bond_order"), bond_rows)

    # `connected` links an atom to a bond; a small fraction of its rows
    # reference atoms or bonds that do not exist (dangling on both joins).
    atom_ids = [row[0] for row in atom_rows]
    bond_ids = [row[0] for row in bond_rows]
    connected_atoms = pick_foreign_keys(
        rng, atom_ids, n_connected, coverage=0.98,
        dangling_pool=[f"ghost_a{i}" for i in range(6)], zipf=0.4,
    )
    connected_bonds = pick_foreign_keys(
        rng, bond_ids, n_connected, coverage=0.98,
        dangling_pool=[f"ghost_b{i}" for i in range(6)], zipf=0.4,
    )
    connected_rows = []
    for i in range(n_connected):
        position = 1 + i % 2
        connected_rows.append((connected_atoms[i], connected_bonds[i], position))
    connected = Relation("connected", ("atom1_id", "connected_bond_id", "position"), connected_rows)

    return {"molecule": molecule, "atom": atom, "bond": bond, "connected": connected}
