"""Algorithm 5 — ``mineFDs``: selective mining of the remaining join FDs.

Join FDs (Definition 7) mix attributes of both join inputs and cannot be
obtained by logical inference (Theorem 3); they must be validated against
join data.  The selective mining implemented here avoids the full-view FD
discovery of the straightforward approach by combining three prunings:

* **domination** — candidates whose LHS contains the LHS of an already known
  FD with the same RHS cannot be minimal and are neither validated nor
  expanded;
* **Armstrong shortcut** — candidates implied by the FDs already known to
  hold on the join are valid by construction and need no data access (they
  are classified as *inferred*, per Definition 6);
* **Theorem 4** — a candidate ``A A' -> b`` with ``b`` from the side whose
  join attributes are ``Y`` can only hold if ``Y A' -> b`` holds on that
  side, which is decided from the side's FD cover without touching the join.

Only when a candidate survives all three prunings is the (partial) join
materialised — lazily, once — and the candidate checked with stripped
partitions.  Data validations run on the pluggable partition backend
(``fd_holds_fast`` probes the LHS partition's groups against the cached RHS
column codes — a boolean-mask pass on the numpy fast path, an early-exit
scan on the pure-python fallback); candidates here are validated one by one
because each verdict feeds the Armstrong/domination prunings of the very
next candidate, unlike the independent levels batched by TANE/FUN.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..fd.closure import FDIndex
from ..fd.fd import FD
from ..relational.algebra import JoinKind, equi_join
from ..relational.backend import get_backend
from ..relational.partition import PartitionCache, fd_holds_fast
from ..relational.relation import Relation
from .provenance import FDType, ProvenanceTriple


@dataclass
class JoinMiningOutcome:
    """Result of ``mineFDs`` for one join node."""

    #: Provenance triples of the FDs discovered by the selective mining
    #: (``joinFD`` for data-validated ones, ``inferred`` for Armstrong shortcuts).
    triples: list[ProvenanceTriple] = field(default_factory=list)
    #: The discovered FDs (also contained in ``triples``).
    fds: list[FD] = field(default_factory=list)
    #: Number of candidates validated against the (partial) join data.
    candidates_validated: int = 0
    #: Number of candidates handled purely logically (Armstrong or Theorem 4).
    candidates_pruned_logically: int = 0
    #: Whether the partial join had to be materialised at all.
    join_materialised: bool = False
    #: Number of rows of the materialised partial join (0 if not materialised).
    partial_join_rows: int = 0
    #: The materialised partial join, if any (reused by the engine for enclosing nodes).
    joined: Relation | None = None
    #: Hit/miss/eviction counters of the join's bounded :class:`PartitionCache`
    #: (``None`` when the join was never materialised), reported alongside the
    #: partition backend that executed the validations.
    partition_cache_stats: dict | None = None
    #: Name of the partition backend active during the mining.
    partition_backend: str = ""


def mine_join_fds(
    left_instance: Relation,
    right_instance: Relation,
    left_on: Sequence[str],
    right_on: Sequence[str],
    kind: JoinKind,
    left_fds: Iterable[FD],
    right_fds: Iterable[FD],
    known_fds: Iterable[FD],
    attributes: Sequence[str],
    subquery: str,
    max_lhs_size: int | None = None,
    use_theorem4: bool = True,
) -> JoinMiningOutcome:
    """Selective mining of the join FDs of one join node (Algorithm 5).

    Parameters
    ----------
    left_instance, right_instance:
        The materialised join inputs (restricted to needed attributes).
    left_on, right_on:
        The join attributes of each side.
    kind:
        The join operator.
    left_fds, right_fds:
        Complete minimal FD sets of the (reduced) join inputs, used by the
        Theorem 4 pruning.
    known_fds:
        All FDs already known to hold on the join (carried base FDs, upstaged
        FDs and inferred FDs).
    attributes:
        The projected attribute set ``AV`` restricting the candidate space.
    subquery:
        The sub-query string recorded in the provenance triples.
    max_lhs_size:
        Optional cap on the explored LHS size.
    use_theorem4:
        Disable to measure the impact of the Theorem 4 pruning (ablation).
    """
    outcome = JoinMiningOutcome()
    if kind.is_semi:
        # A semi-join keeps the attributes of a single side: by Definition 7
        # there is no room for join FDs.
        return outcome

    left_side = set(left_instance.attribute_names)
    right_side = set(right_instance.attribute_names)
    dropped_right = {rgt for lft, rgt in zip(left_on, right_on) if lft == rgt}
    output_attrs = tuple(left_instance.attribute_names) + tuple(
        a for a in right_instance.attribute_names if a not in dropped_right
    )
    allowed = set(attributes)
    view_attrs = [a for a in output_attrs if a in allowed]
    if len(view_attrs) < 2:
        return outcome

    known = list(known_fds)
    left_cover = list(left_fds)
    right_cover = list(right_fds)
    left_cover_index = FDIndex(left_cover)
    right_cover_index = FDIndex(right_cover)
    left_join_attrs = set(left_on)
    right_join_attrs = set(right_on)
    found: list[FD] = []
    max_size = max_lhs_size if max_lhs_size is not None else len(view_attrs) - 1

    joined: Relation | None = None
    cache: PartitionCache | None = None
    closure_cache: dict[frozenset[str], frozenset[str]] = {}
    known_index = FDIndex(known)
    # Closures over `known + found` are re-indexed lazily whenever the mining
    # discovers a new FD; between discoveries the index is reused across every
    # candidate of the lattice walk.
    combined_index = known_index
    combined_stale = False

    def known_closure(lhs: frozenset[str]) -> frozenset[str]:
        cached = closure_cache.get(lhs)
        if cached is None:
            cached = known_index.closure(lhs)
            closure_cache[lhs] = cached
        return cached

    def combined_closure(lhs: frozenset[str]) -> frozenset[str]:
        nonlocal combined_index, combined_stale
        if combined_stale:
            combined_index = FDIndex(known + found)
            combined_stale = False
        return combined_index.closure(lhs)

    def materialise_join() -> tuple[Relation, PartitionCache]:
        nonlocal joined, cache
        if joined is None:
            joined = equi_join(
                left_instance, right_instance, left_on, right_on, kind=kind,
                name=f"partial({subquery})",
            )
            # The lattice walk can request one LHS partition per surviving
            # candidate; bound the cache so wide joins cannot hold every
            # combination alive at once (evicted entries are recomputed).
            cache = PartitionCache(joined, max_positions=max(65_536, 16 * len(joined)))
            outcome.join_materialised = True
            outcome.partial_join_rows = len(joined)
            outcome.joined = joined
        assert cache is not None
        return joined, cache

    for rhs in view_attrs:
        other_attrs = [a for a in view_attrs if a != rhs]
        dominating = [f.lhs for f in known if f.rhs == rhs]
        in_left = rhs in left_side
        in_right = rhs in right_side or rhs in dropped_right
        if use_theorem4 and not _rhs_is_plausible(
            rhs, in_left, in_right, left_join_attrs, right_join_attrs, left_cover, right_cover
        ):
            # No minimal FD of the side owning ``rhs`` involves that side's
            # join attributes in its determinant, so by Theorem 4 no
            # cross-side FD with this dependent can hold: skip the whole
            # right-hand side without generating any candidate.
            outcome.candidates_pruned_logically += 1
            continue

        alive: list[frozenset[str]] = [frozenset({a}) for a in other_attrs]
        size = 1
        while alive and size <= max_size:
            expandable: list[frozenset[str]] = []
            for lhs in sorted(alive, key=lambda s: tuple(sorted(s))):
                if any(d <= lhs for d in dominating):
                    continue  # dominated: neither minimal nor worth expanding
                attrs = lhs | {rhs}
                crosses = not attrs <= left_side and not attrs <= (right_side | dropped_right)
                if not crosses:
                    # Entirely single-sided and not dominated by that side's
                    # complete FD set: it cannot hold, but supersets that add
                    # attributes from the other side still can.
                    expandable.append(lhs)
                    continue
                closure = known_closure(lhs)
                if rhs in closure:
                    # Valid by Armstrong reasoning over FDs carried from the
                    # inputs: an inferred FD (Definition 6), no data access.
                    outcome.candidates_pruned_logically += 1
                    dependency = FD(lhs, rhs)
                    found.append(dependency)
                    dominating.append(lhs)
                    combined_stale = True
                    outcome.triples.append(
                        ProvenanceTriple(dependency, FDType.INFERRED, subquery)
                    )
                    continue
                if rhs in combined_closure(lhs):
                    # Valid, but only thanks to previously mined join FDs: it
                    # is a join FD itself (Definition 7), still no data access.
                    outcome.candidates_pruned_logically += 1
                    dependency = FD(lhs, rhs)
                    found.append(dependency)
                    dominating.append(lhs)
                    combined_stale = True
                    outcome.triples.append(
                        ProvenanceTriple(dependency, FDType.JOIN, subquery)
                    )
                    continue
                if use_theorem4 and not _theorem4_admits(
                    lhs, rhs, in_left, in_right,
                    left_side, right_side, left_join_attrs, right_join_attrs,
                    left_cover_index, right_cover_index,
                ):
                    # The candidate cannot hold on the join (Theorem 4);
                    # supersets adding same-side attributes may still hold.
                    outcome.candidates_pruned_logically += 1
                    expandable.append(lhs)
                    continue
                join_instance, join_cache = materialise_join()
                outcome.candidates_validated += 1
                usable = lhs <= set(join_instance.attribute_names) and join_instance.schema.has(rhs)
                if usable and fd_holds_fast(join_instance, join_cache.get(lhs), rhs):
                    dependency = FD(lhs, rhs)
                    found.append(dependency)
                    dominating.append(lhs)
                    combined_stale = True
                    outcome.triples.append(
                        ProvenanceTriple(dependency, FDType.JOIN, subquery)
                    )
                else:
                    expandable.append(lhs)
            alive = _next_level(expandable, other_attrs)
            size += 1

    outcome.fds = sorted(found, key=FD.sort_key)
    # Resolve against the partial join when it was materialised, so the
    # recorded provenance honours the per-relation backend heuristic the
    # validation probes actually ran under.
    outcome.partition_backend = get_backend(
        len(joined) if joined is not None else None
    ).name
    if cache is not None:
        outcome.partition_cache_stats = cache.stats.as_dict()
    return outcome


def _rhs_is_plausible(
    rhs: str,
    in_left: bool,
    in_right: bool,
    left_join_attrs: set[str],
    right_join_attrs: set[str],
    left_cover: list[FD],
    right_cover: list[FD],
) -> bool:
    """Whether any cross-side FD with dependent ``rhs`` can exist at all.

    A minimal join FD ``A A' -> rhs`` (with ``rhs`` owned by side ``J`` whose
    join attributes are ``Y``) requires ``Y A' -> rhs`` to hold on the
    reduced ``J`` (Theorem 4) while no ``A'' ⊆ A'`` alone determines ``rhs``
    (otherwise the candidate is dominated).  Both conditions together imply
    that some *minimal* FD of ``J`` with dependent ``rhs`` uses at least one
    join attribute in its determinant.  If no such FD exists, every candidate
    with this dependent is either impossible or dominated, and the dependent
    can be skipped outright.
    """
    if rhs in left_join_attrs or rhs in right_join_attrs:
        return True
    if in_right and any(
        dependency.rhs == rhs and dependency.lhs & right_join_attrs
        for dependency in right_cover
    ):
        return True
    if in_left and any(
        dependency.rhs == rhs and dependency.lhs & left_join_attrs
        for dependency in left_cover
    ):
        return True
    return False


def _theorem4_admits(
    lhs: frozenset[str],
    rhs: str,
    in_left: bool,
    in_right: bool,
    left_side: set[str],
    right_side: set[str],
    left_join_attrs: set[str],
    right_join_attrs: set[str],
    left_cover_index: FDIndex,
    right_cover_index: FDIndex,
) -> bool:
    """Whether Theorem 4 allows the candidate ``lhs -> rhs`` to hold at all.

    For a dependent attribute from side ``J`` with join attributes ``Y``, the
    candidate can hold only if ``Y ∪ (lhs ∩ atts(J)) -> rhs`` holds on the
    (reduced) instance of ``J``, which is decided against that side's
    complete FD cover (indexed once per join node).  A dependent shared by
    both sides (a join attribute) admits the candidate whenever either side
    does.
    """
    admitted = False
    if in_right:
        same_side = lhs & (right_side - right_join_attrs)
        closure = right_cover_index.closure(right_join_attrs | same_side)
        admitted = admitted or rhs in closure or rhs in right_join_attrs
    if in_left and not admitted:
        same_side = lhs & (left_side - left_join_attrs)
        closure = left_cover_index.closure(left_join_attrs | same_side)
        admitted = admitted or rhs in closure or rhs in left_join_attrs
    return admitted


def _next_level(
    expandable: list[frozenset[str]], universe: Sequence[str]
) -> list[frozenset[str]]:
    """Generate the next candidate level from the surviving candidates."""
    next_level: set[frozenset[str]] = set()
    for lhs in expandable:
        for attribute in universe:
            if attribute not in lhs:
                next_level.add(lhs | {attribute})
    return sorted(next_level, key=lambda s: tuple(sorted(s)))
