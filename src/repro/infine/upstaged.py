"""Algorithm 3 — ``joinUpFDs``: upstaged FDs created by a join.

When a join drops the dangling tuples of one of its inputs (tuples whose
join-attribute values have no counterpart on the other side), approximate FDs
of that input can become exact.  Following Lemma 2, the candidate instance
for each side is the semi-join of the side with the other side's
join-attribute values; if the semi-join is smaller than the side itself, the
newly holding FDs are mined level-wise and labelled ``upstaged left`` or
``upstaged right``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..fd.fd import FD
from ..relational.algebra import JoinKind, equi_join
from ..relational.relation import Relation
from .levelwise import mine_new_fds
from .provenance import FDType, ProvenanceTriple

#: For every join kind, which inputs have their dangling tuples removed by
#: the join (and can therefore contribute upstaged FDs).
REDUCED_SIDES: dict[JoinKind, frozenset[str]] = {
    JoinKind.INNER: frozenset({"left", "right"}),
    JoinKind.LEFT_OUTER: frozenset({"right"}),
    JoinKind.RIGHT_OUTER: frozenset({"left"}),
    JoinKind.FULL_OUTER: frozenset(),
    JoinKind.LEFT_SEMI: frozenset({"left"}),
    JoinKind.RIGHT_SEMI: frozenset({"right"}),
}


@dataclass
class JoinUpstageOutcome:
    """Result of ``joinUpFDs`` for one join node."""

    #: Provenance triples of the upstaged FDs (left and right).
    triples: list[ProvenanceTriple] = field(default_factory=list)
    #: Semi-joined left instance when the join actually dropped left tuples, else ``None``.
    reduced_left: Relation | None = None
    #: Semi-joined right instance when the join actually dropped right tuples, else ``None``.
    reduced_right: Relation | None = None
    #: Upstaged FDs per side (also contained in ``triples``).
    left_fds: list[FD] = field(default_factory=list)
    right_fds: list[FD] = field(default_factory=list)
    #: Number of candidate FDs validated against the data.
    candidates_checked: int = 0

    @property
    def left_was_reduced(self) -> bool:
        """Whether the join dropped dangling tuples of the left input."""
        return self.reduced_left is not None

    @property
    def right_was_reduced(self) -> bool:
        """Whether the join dropped dangling tuples of the right input."""
        return self.reduced_right is not None


def join_upstaged_fds(
    left_instance: Relation,
    right_instance: Relation,
    left_on: Sequence[str],
    right_on: Sequence[str],
    kind: JoinKind,
    left_known_fds: Iterable[FD],
    right_known_fds: Iterable[FD],
    attributes: Sequence[str],
    subquery: str,
    max_lhs_size: int | None = None,
) -> JoinUpstageOutcome:
    """Mine the upstaged FDs of a join node (Algorithm 3).

    Parameters
    ----------
    left_instance, right_instance:
        The materialised join inputs (already restricted to needed attributes).
    left_on, right_on:
        The join attributes of each side.
    kind:
        The join operator; it determines which sides can be reduced.
    left_known_fds, right_known_fds:
        FDs known to hold on each input (used for pruning and exclusion).
    attributes:
        The projected attribute set ``AV``.
    subquery:
        The sub-query string recorded in the provenance triples.
    max_lhs_size:
        Optional cap on the explored LHS size.
    """
    outcome = JoinUpstageOutcome()
    reduced_sides = REDUCED_SIDES[kind]

    if "left" in reduced_sides:
        reduced = equi_join(
            left_instance, right_instance, left_on, right_on, kind=JoinKind.LEFT_SEMI,
            name=f"semi({left_instance.name})",
        )
        if len(reduced) < len(left_instance):
            outcome.reduced_left = reduced
            new_fds, checked = mine_new_fds(reduced, attributes, left_known_fds, max_lhs_size)
            outcome.candidates_checked += checked
            outcome.left_fds = sorted(new_fds, key=FD.sort_key)
            outcome.triples.extend(
                ProvenanceTriple(dependency, FDType.UPSTAGED_LEFT, subquery)
                for dependency in outcome.left_fds
            )

    if "right" in reduced_sides:
        reduced = equi_join(
            left_instance, right_instance, left_on, right_on, kind=JoinKind.RIGHT_SEMI,
            name=f"semi({right_instance.name})",
        )
        if len(reduced) < len(right_instance):
            outcome.reduced_right = reduced
            new_fds, checked = mine_new_fds(reduced, attributes, right_known_fds, max_lhs_size)
            outcome.candidates_checked += checked
            outcome.right_fds = sorted(new_fds, key=FD.sort_key)
            outcome.triples.extend(
                ProvenanceTriple(dependency, FDType.UPSTAGED_RIGHT, subquery)
                for dependency in outcome.right_fds
            )
    return outcome
