"""Per-step timing breakdown of an InFine run.

The paper reports, for every view, the time spent in I/O, ``upstageFDs``
(which also includes ``selectionFDs``), ``inferFDs`` and ``mineFDs`` (which
includes the partial SPJ computation).  :class:`StepTimings` mirrors that
accounting so Table III and Fig. 5 can be regenerated directly.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

#: The step names used in the breakdown, in pipeline order.
STEP_NAMES: tuple[str, ...] = ("io", "base", "upstageFDs", "inferFDs", "mineFDs")


@dataclass
class StepTimings:
    """Wall-clock seconds spent in each InFine step."""

    io: float = 0.0
    base: float = 0.0
    upstage: float = 0.0
    infer: float = 0.0
    mine: float = 0.0
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        """Total time across all steps (excluding ``extra`` entries)."""
        return self.io + self.base + self.upstage + self.infer + self.mine

    @property
    def view_pipeline(self) -> float:
        """Time of the view-level pipeline (everything except base-table mining).

        The paper excludes base-table FD discovery from the comparison
        because both InFine and the straightforward approach pay it equally.
        """
        return self.io + self.upstage + self.infer + self.mine

    def add(self, step: str, seconds: float) -> None:
        """Accumulate ``seconds`` into ``step``."""
        if step == "io":
            self.io += seconds
        elif step == "base":
            self.base += seconds
        elif step in ("upstage", "upstageFDs", "selectionFDs"):
            self.upstage += seconds
        elif step in ("infer", "inferFDs"):
            self.infer += seconds
        elif step in ("mine", "mineFDs"):
            self.mine += seconds
        else:
            self.extra[step] = self.extra.get(step, 0.0) + seconds

    @contextmanager
    def measure(self, step: str) -> Iterator[None]:
        """Context manager accumulating the elapsed time into ``step``."""
        started = time.perf_counter()
        try:
            yield
        finally:
            self.add(step, time.perf_counter() - started)

    def as_dict(self) -> dict[str, float]:
        """The breakdown as a plain dictionary (report/CSV friendly)."""
        result = {
            "io": self.io,
            "base": self.base,
            "upstageFDs": self.upstage,
            "inferFDs": self.infer,
            "mineFDs": self.mine,
            "total": self.total,
        }
        result.update(self.extra)
        return result

    def merged_with(self, other: "StepTimings") -> "StepTimings":
        """Element-wise sum of two breakdowns."""
        merged = StepTimings(
            io=self.io + other.io,
            base=self.base + other.base,
            upstage=self.upstage + other.upstage,
            infer=self.infer + other.infer,
            mine=self.mine + other.mine,
        )
        for key, value in {**self.extra, **other.extra}.items():
            merged.extra[key] = self.extra.get(key, 0.0) + other.extra.get(key, 0.0)
        return merged
