"""The straightforward (baseline) pipeline the paper compares InFine against.

Classical FD discovery methods operate on a single relation: to obtain the
FDs of an integrated view *and* know where each FD comes from, a user must

1. discover the FDs of every base table (this cost is identical for InFine
   and the baselines and is therefore excluded from the comparison, exactly
   as in Section V of the paper);
2. compute the full SPJ view;
3. run the discovery algorithm on the view result; and
4. compare the view FDs against the base-table FDs to recover a provenance
   classification.

:class:`StraightforwardPipeline` implements that workflow for any registered
discovery algorithm and reports the same timing breakdown used by Fig. 3
(view computation + discovery) so the two approaches can be compared
directly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

from ..discovery.base import DiscoveryResult, FDDiscoveryAlgorithm
from ..discovery.registry import make_algorithm
from ..fd.closure import attribute_closure
from ..fd.fdset import FDSet
from ..relational.relation import Relation
from ..relational.view import ViewSpec, validate_view
from .provenance import FDType, ProvenanceSet, ProvenanceTriple


@dataclass
class StraightforwardResult:
    """Output of the straightforward pipeline on one view."""

    algorithm: str
    view: ViewSpec
    #: FDs discovered on the fully computed view.
    fds: FDSet
    #: Number of rows of the computed view.
    view_rows: int
    #: Seconds spent computing the full SPJ view.
    spj_seconds: float
    #: Seconds spent running the discovery algorithm on the view.
    discovery_seconds: float
    #: Seconds spent recovering provenance by comparing against base FDs.
    comparison_seconds: float
    #: Provenance recovered a posteriori (``base`` vs. everything else).
    provenance: ProvenanceSet = field(default_factory=ProvenanceSet)
    #: Raw per-base-table discovery results (not counted in the comparison).
    base_results: dict[str, DiscoveryResult] = field(default_factory=dict)

    @property
    def total_seconds(self) -> float:
        """View computation + discovery time (the quantity plotted in Fig. 3)."""
        return self.spj_seconds + self.discovery_seconds

    def __len__(self) -> int:
        return len(self.fds)


class StraightforwardPipeline:
    """Full-view recomputation pipeline using a classical discovery algorithm."""

    def __init__(self, algorithm: str | FDDiscoveryAlgorithm = "hyfd") -> None:
        if isinstance(algorithm, str):
            algorithm = make_algorithm(algorithm)
        self.algorithm = algorithm

    def run(
        self,
        view: ViewSpec,
        catalog: Mapping[str, Relation],
        with_provenance: bool = True,
        base_results: Mapping[str, DiscoveryResult] | None = None,
    ) -> StraightforwardResult:
        """Compute the view, discover its FDs, and (optionally) recover provenance.

        Parameters
        ----------
        view:
            The SPJ view specification.
        catalog:
            Base relation instances.
        with_provenance:
            Whether to run the a-posteriori provenance comparison (step 4).
        base_results:
            Pre-computed base-table discovery results to reuse (so that the
            shared base-mining cost is not measured twice in benchmarks).
        """
        attributes = validate_view(view, catalog)

        started = time.perf_counter()
        instance = view.evaluate(catalog)
        spj_seconds = time.perf_counter() - started

        started = time.perf_counter()
        discovered = self.algorithm.discover(instance, attributes)
        discovery_seconds = time.perf_counter() - started

        comparison_seconds = 0.0
        provenance = ProvenanceSet()
        resolved_base: dict[str, DiscoveryResult] = dict(base_results or {})
        if with_provenance:
            for name in set(view.base_relation_names()):
                if name not in resolved_base:
                    resolved_base[name] = self.algorithm.discover(catalog[name])
            started = time.perf_counter()
            provenance = self._recover_provenance(view, discovered.fds, resolved_base)
            comparison_seconds = time.perf_counter() - started

        return StraightforwardResult(
            algorithm=self.algorithm.name,
            view=view,
            fds=discovered.fds,
            view_rows=len(instance),
            spj_seconds=spj_seconds,
            discovery_seconds=discovery_seconds,
            comparison_seconds=comparison_seconds,
            provenance=provenance,
            base_results=resolved_base,
        )

    @staticmethod
    def _recover_provenance(
        view: ViewSpec,
        view_fds: FDSet,
        base_results: Mapping[str, DiscoveryResult],
    ) -> ProvenanceSet:
        """A-posteriori provenance: the manual comparison a data steward would run.

        Without InFine's pipeline the only distinctions that can be recovered
        from the discovery outputs are *base* (the FD already holds on some
        base table), *inferred* (it follows logically from the union of the
        base FDs) and *new* (everything else, which the comparison cannot
        attribute to a selection, a join reduction or genuine join mining
        without recomputing partial views).
        """
        base_union = [
            dependency
            for result in base_results.values()
            for dependency in result.fds
        ]
        base_sets = {name: result.fds for name, result in base_results.items()}
        provenance = ProvenanceSet()
        for dependency in view_fds:
            origin = None
            for name, fds in base_sets.items():
                if dependency in fds:
                    origin = ProvenanceTriple(dependency, FDType.BASE, name)
                    break
            if origin is None:
                if dependency.rhs in attribute_closure(dependency.lhs, base_union):
                    origin = ProvenanceTriple(dependency, FDType.INFERRED, view.describe())
                else:
                    origin = ProvenanceTriple(dependency, FDType.JOIN, view.describe())
            provenance.add(origin)
        return provenance
