"""Algorithm 4 — ``inferFDs``: FDs obtained by logical inference through a join.

Theorem 2 of the paper states that, on a join result, Armstrong transitivity
across the two inputs is only possible *through the join attributes*: if the
left side satisfies ``A -> X`` (with ``X`` the left join attributes) and the
right side satisfies ``Y -> b`` (with ``Y`` the right join attributes), then
the join satisfies ``A -> b`` because the join enforces ``X = Y``.

The ``infer`` subroutine enumerates exactly those transitive FDs from the
FD covers of the two inputs — a pure logical step with negligible cost.  The
``refine`` subroutine then minimises the left-hand sides: a subset of the
determinant may already determine ``b`` on the join even though this cannot
be proved logically; such refinements are checked against a *partial join*
restricted to the join attributes, the determinant and ``b``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Iterable, Sequence

from ..fd.closure import transitive_fds_through
from ..fd.fd import FD
from ..relational.algebra import JoinKind, equi_join, project
from ..relational.partition import fd_holds_fast, make_partition_cache
from ..relational.relation import Relation
from .provenance import FDType, ProvenanceTriple


@dataclass
class InferenceOutcome:
    """Result of ``inferFDs`` for one join node."""

    #: Provenance triples of the inferred FDs (after refinement).
    triples: list[ProvenanceTriple] = field(default_factory=list)
    #: The inferred FDs (also contained in ``triples``).
    fds: list[FD] = field(default_factory=list)
    #: Number of candidate refinements validated against partial joins.
    candidates_checked: int = 0
    #: Number of raw FDs obtained by pure logical inference (before refinement).
    raw_inferred: int = 0


def infer_join_fds(
    left_instance: Relation,
    right_instance: Relation,
    left_on: Sequence[str],
    right_on: Sequence[str],
    kind: JoinKind,
    left_fds: Iterable[FD],
    right_fds: Iterable[FD],
    known_fds: Iterable[FD],
    subquery: str,
    refine_with_data: bool = True,
    max_refine_lhs: int = 6,
) -> InferenceOutcome:
    """Infer (and refine) the cross-side FDs of a join node (Algorithm 4).

    Parameters
    ----------
    left_instance, right_instance:
        The materialised join inputs, used only to build the *partial joins*
        of the refinement step.
    left_on, right_on:
        The join attributes of each side.
    kind:
        The join operator (the refinement partial joins use the same operator).
    left_fds, right_fds:
        Complete FD covers of the (reduced) join inputs.
    known_fds:
        FDs already known to hold on the join (base FDs of both sides plus
        upstaged FDs); inferred FDs implied by them are redundant and dropped.
    subquery:
        The sub-query string recorded in the provenance triples.
    refine_with_data:
        Whether to run the data-dependent ``refine`` subroutine.  Disabling it
        keeps the step purely logical (used by the ablation benchmarks).
    max_refine_lhs:
        Refinement explores subsets of determinants up to this size.
    """
    left_fds = list(left_fds)
    right_fds = list(right_fds)
    known = list(known_fds)
    outcome = InferenceOutcome()

    raw: list[FD] = []
    raw.extend(transitive_fds_through(left_fds, right_fds, left_on, right_on))
    raw.extend(transitive_fds_through(right_fds, left_fds, right_on, left_on))
    raw.extend(_join_attribute_equalities(left_on, right_on))
    outcome.raw_inferred = len(raw)

    left_attrs = set(left_instance.attribute_names)
    right_attrs = set(right_instance.attribute_names)

    kept: list[FD] = []
    seen: set[FD] = set()
    for dependency in sorted(set(raw), key=FD.sort_key):
        if _dominated_by(dependency, known):
            continue  # identical to or less general than an FD carried from the inputs
        refinements = [dependency]
        # Refinement only matters for determinants with at least two
        # attributes (a singleton LHS has no proper non-empty subset).
        if refine_with_data and 1 < len(dependency.lhs) <= max_refine_lhs:
            refinements = _refine(
                dependency,
                left_instance,
                right_instance,
                left_on,
                right_on,
                kind,
                left_attrs,
                right_attrs,
                outcome,
            )
        for refined in refinements:
            if refined in seen:
                continue
            if _dominated_by(refined, known):
                continue
            seen.add(refined)
            kept.append(refined)

    # Keep only the minimal inferred FDs (a refinement can dominate a raw FD).
    minimal = [
        dependency
        for dependency in kept
        if not any(other.rhs == dependency.rhs and other.lhs < dependency.lhs for other in kept)
    ]
    outcome.fds = sorted(minimal, key=FD.sort_key)
    outcome.triples = [
        ProvenanceTriple(dependency, FDType.INFERRED, subquery) for dependency in outcome.fds
    ]
    return outcome


def _dominated_by(dependency: FD, known: list[FD]) -> bool:
    """Whether a known FD with the same dependent has a (non-strictly) smaller LHS.

    Such an inferred candidate is either a duplicate of a carried FD or not
    minimal on the join; in both cases it must not be reported as *inferred*.
    Candidates that are merely *implied* by the carried FDs (by transitivity)
    are kept: they are exactly the inferred FDs of Definition 6 and belong to
    the view's minimal FD set unless a smaller determinant exists.
    """
    return any(
        other.rhs == dependency.rhs and other.lhs <= dependency.lhs for other in known
    )


def _join_attribute_equalities(
    left_on: Sequence[str], right_on: Sequence[str]
) -> list[FD]:
    """FDs expressing the equality of differently named join attributes.

    An equi-join on ``x = y`` makes ``x -> y`` and ``y -> x`` hold on the
    matched rows.  When both sides use the same attribute name (natural-join
    style), the duplicate column is dropped by the join and no FD is needed.
    The returned FDs are still subject to refinement/validation, which
    matters for outer joins where padded rows can break one direction.
    """
    equalities: list[FD] = []
    for left_attribute, right_attribute in zip(left_on, right_on):
        if left_attribute == right_attribute:
            continue
        equalities.append(FD((left_attribute,), right_attribute))
        equalities.append(FD((right_attribute,), left_attribute))
    return equalities


def _refine(
    dependency: FD,
    left_instance: Relation,
    right_instance: Relation,
    left_on: Sequence[str],
    right_on: Sequence[str],
    kind: JoinKind,
    left_attrs: set[str],
    right_attrs: set[str],
    outcome: InferenceOutcome,
) -> list[FD]:
    """The ``refine`` subroutine: minimise a determinant using a partial join.

    Only the join attributes, the determinant and the dependent attribute are
    materialised (line #19 of Algorithm 4), so the partial join stays narrow
    even when the view is wide.
    """
    partial = _partial_join(
        dependency, left_instance, right_instance, left_on, right_on, kind, left_attrs, right_attrs
    )
    if partial is None:
        return [dependency]

    cache = make_partition_cache(partial)
    available = set(partial.attribute_names)
    lhs_attributes = sorted(dependency.lhs & available)
    if dependency.rhs not in available or len(lhs_attributes) != len(dependency.lhs):
        return [dependency]

    minimal: list[FD] = []
    for size in range(1, len(lhs_attributes)):
        for subset in combinations(lhs_attributes, size):
            if any(found.lhs <= frozenset(subset) for found in minimal):
                continue
            outcome.candidates_checked += 1
            # Probe the subset partition against the cached RHS column codes
            # instead of materialising the subset ∪ {rhs} partition.
            if fd_holds_fast(partial, cache.get(subset), dependency.rhs):
                minimal.append(FD(subset, dependency.rhs))
    return minimal if minimal else [dependency]


def _partial_join(
    dependency: FD,
    left_instance: Relation,
    right_instance: Relation,
    left_on: Sequence[str],
    right_on: Sequence[str],
    kind: JoinKind,
    left_attrs: set[str],
    right_attrs: set[str],
) -> Relation | None:
    """Materialise the partial join needed to refine one inferred FD."""
    needed = set(dependency.lhs) | {dependency.rhs}
    left_needed = sorted((needed & left_attrs) | set(left_on))
    right_needed = sorted((needed & right_attrs - set(left_attrs)) | set(right_on))
    if kind.is_semi:
        # Semi-join outputs carry only one side; refinement happens on that side.
        side = left_instance if kind is JoinKind.LEFT_SEMI else right_instance
        keep = [a for a in side.attribute_names if a in needed or a in set(left_on) | set(right_on)]
        return project(side, keep) if keep else None
    try:
        return equi_join(
            project(left_instance, left_needed),
            project(right_instance, right_needed),
            left_on,
            right_on,
            kind=kind,
            name="partial_join",
        )
    except Exception:  # pragma: no cover - defensive: fall back to no refinement
        return None
