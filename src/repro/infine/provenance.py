"""FD provenance: types and provenance triples (Definition 8 of the paper).

Every FD discovered by InFine is annotated with a provenance triple
``(d, t, s)`` where ``d`` is the FD, ``t`` its type (how it came to hold on
the view) and ``s`` the first sub-query of the view specification in which
``d`` holds during view computation.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator

from ..fd.fd import FD
from ..fd.fdset import FDSet


class FDType(str, Enum):
    """The provenance type of an FD on an integrated view (Definition 8)."""

    #: The FD already holds on a base relation of the view.
    BASE = "base"
    #: The FD becomes exact because a selection filters its violating tuples.
    UPSTAGED_SELECTION = "upstaged selection"
    #: The FD becomes exact because the join drops dangling tuples of the left input.
    UPSTAGED_LEFT = "upstaged left"
    #: The FD becomes exact because the join drops dangling tuples of the right input.
    UPSTAGED_RIGHT = "upstaged right"
    #: The FD follows from the inputs' FDs by Armstrong transitivity through the join attributes.
    INFERRED = "inferred"
    #: The FD mixes attributes of both join inputs and had to be mined from (partial) join data.
    JOIN = "joinFD"

    @property
    def requires_data_access(self) -> bool:
        """Whether discovering FDs of this type touches instance data.

        Base FDs are carried over from the inputs and inferred FDs come from
        pure logical reasoning; the other types require validating candidates
        against (reduced) instances.
        """
        return self in (
            FDType.UPSTAGED_SELECTION,
            FDType.UPSTAGED_LEFT,
            FDType.UPSTAGED_RIGHT,
            FDType.JOIN,
        )


#: The InFine pipeline step that produces each provenance type (used for the
#: per-algorithm accuracy/time breakdowns of Fig. 5 and Table III).
STEP_OF_TYPE: dict[FDType, str] = {
    FDType.BASE: "base",
    FDType.UPSTAGED_SELECTION: "upstageFDs",
    FDType.UPSTAGED_LEFT: "upstageFDs",
    FDType.UPSTAGED_RIGHT: "upstageFDs",
    FDType.INFERRED: "inferFDs",
    FDType.JOIN: "mineFDs",
}


@dataclass(frozen=True)
class ProvenanceTriple:
    """A provenance-annotated FD ``(dependency, fd_type, subquery)``."""

    dependency: FD
    fd_type: FDType
    subquery: str

    @property
    def step(self) -> str:
        """The InFine step that produced this triple."""
        return STEP_OF_TYPE[self.fd_type]

    def __str__(self) -> str:
        return f"({self.dependency}, \"{self.fd_type.value}\", {self.subquery})"


class ProvenanceSet:
    """An ordered collection of provenance triples with FD-level helpers.

    The collection keeps the first triple recorded per FD: once an FD has a
    provenance (e.g. ``base``), later steps never overwrite it, matching the
    paper's "first sub-query in which the FD holds" semantics.
    """

    __slots__ = ("_triples", "_by_fd")

    def __init__(self, triples: Iterable[ProvenanceTriple] = ()) -> None:
        self._triples: list[ProvenanceTriple] = []
        self._by_fd: dict[FD, ProvenanceTriple] = {}
        for triple in triples:
            self.add(triple)

    def add(self, triple: ProvenanceTriple) -> bool:
        """Add a triple; returns ``False`` if the FD already has provenance."""
        if triple.dependency in self._by_fd:
            return False
        self._by_fd[triple.dependency] = triple
        self._triples.append(triple)
        return True

    def extend(self, triples: Iterable[ProvenanceTriple]) -> int:
        """Add several triples; returns how many were new."""
        return sum(1 for triple in triples if self.add(triple))

    def merge(self, other: "ProvenanceSet") -> "ProvenanceSet":
        """A new set containing this set's triples followed by ``other``'s."""
        merged = ProvenanceSet(self._triples)
        merged.extend(other._triples)
        return merged

    # -- queries --------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[ProvenanceTriple]:
        return iter(self._triples)

    def __contains__(self, dependency: object) -> bool:
        return dependency in self._by_fd

    def triple_for(self, dependency: FD) -> ProvenanceTriple | None:
        """The provenance triple of ``dependency`` if it is recorded."""
        return self._by_fd.get(dependency)

    def fds(self) -> FDSet:
        """The FDs carried by the triples, as an :class:`FDSet`."""
        return FDSet(self._by_fd)

    def by_type(self, fd_type: FDType) -> list[ProvenanceTriple]:
        """All triples of one provenance type, in insertion order."""
        return [triple for triple in self._triples if triple.fd_type is fd_type]

    def by_step(self, step: str) -> list[ProvenanceTriple]:
        """All triples produced by one InFine step (``base``/``upstageFDs``/...)."""
        return [triple for triple in self._triples if triple.step == step]

    def count_by_type(self) -> dict[FDType, int]:
        """Number of triples per provenance type."""
        counts = {fd_type: 0 for fd_type in FDType}
        for triple in self._triples:
            counts[triple.fd_type] += 1
        return counts

    def restrict_to(self, attributes: Iterable[str]) -> "ProvenanceSet":
        """Triples whose FD only mentions attributes in ``attributes``."""
        allowed = set(attributes)
        return ProvenanceSet(
            triple for triple in self._triples if triple.dependency.attributes <= allowed
        )

    def to_records(self) -> list[dict[str, str]]:
        """Serialise the triples as plain dictionaries (for reports and CSV export)."""
        return [
            {
                "fd": str(triple.dependency),
                "type": triple.fd_type.value,
                "step": triple.step,
                "subquery": triple.subquery,
            }
            for triple in self._triples
        ]

    def __repr__(self) -> str:
        counts = {fd_type.value: count for fd_type, count in self.count_by_type().items() if count}
        return f"ProvenanceSet({len(self._triples)} triples, {counts})"
