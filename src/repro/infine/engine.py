"""Algorithm 1 — the InFine engine.

:class:`InFine` orchestrates the whole pipeline of the paper on an SPJ view
specification:

1. mine the FDs of every base relation, restricted to the attributes the
   view actually needs (projection pruning, Section IV-A);
2. recursively traverse the view-specification tree; selections trigger
   ``selectionFDs`` (Algorithm 2) and joins trigger ``joinUpFDs``
   (Algorithm 3), ``inferFDs`` (Algorithm 4) and ``mineFDs`` (Algorithm 5);
3. return every minimal FD of the view annotated with its provenance triple,
   together with a per-step timing breakdown.

The engine never materialises the full view with all of its attributes: base
instances are projected onto the needed attributes up front, reductions are
semi-joins, inference is purely logical, and the join needed by the selective
mining is materialised lazily, only when a candidate actually requires data
access.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..discovery.base import FDDiscoveryAlgorithm
from ..discovery.registry import make_algorithm
from ..fd.fd import FD
from ..fd.fdset import FDSet
from ..relational.algebra import equi_join, project
from ..relational.relation import Relation
from ..relational.view import (
    BaseRelationSpec,
    JoinSpec,
    ProjectSpec,
    SelectSpec,
    ViewSpec,
    validate_view,
)
from .inference import infer_join_fds
from .joinfd import mine_join_fds
from .provenance import FDType, ProvenanceSet, ProvenanceTriple
from .selection import selection_fds
from .timing import StepTimings
from .upstaged import join_upstaged_fds


@dataclass
class InFineStats:
    """Counters describing one InFine run."""

    base_fd_counts: dict[str, int] = field(default_factory=dict)
    upstage_candidates_checked: int = 0
    infer_candidates_checked: int = 0
    mine_candidates_validated: int = 0
    mine_candidates_pruned_logically: int = 0
    partial_join_rows: int = 0
    partial_joins_materialised: int = 0
    raw_inferred: int = 0


@dataclass
class _NodeResult:
    """Result of the recursive traversal for one view-specification node."""

    instance: Relation
    provenance: ProvenanceSet


@dataclass
class InFineResult:
    """The output of one InFine run."""

    #: The view specification the run was performed on.
    view: ViewSpec
    #: The projected attributes of the view.
    attributes: tuple[str, ...]
    #: Provenance triples of every minimal FD of the view.
    provenance: ProvenanceSet
    #: Per-step wall-clock breakdown.
    timings: StepTimings
    #: Counters describing the run.
    stats: InFineStats

    @property
    def triples(self) -> list[ProvenanceTriple]:
        """The provenance triples, in discovery order."""
        return list(self.provenance)

    @property
    def fds(self) -> FDSet:
        """The discovered minimal FDs of the view."""
        return self.provenance.fds()

    def count_by_type(self) -> dict[FDType, int]:
        """Number of FDs per provenance type."""
        return self.provenance.count_by_type()

    def count_by_step(self) -> dict[str, int]:
        """Number of FDs per InFine step (``base``/``upstageFDs``/``inferFDs``/``mineFDs``)."""
        counts: dict[str, int] = {"base": 0, "upstageFDs": 0, "inferFDs": 0, "mineFDs": 0}
        for triple in self.provenance:
            counts[triple.step] += 1
        return counts

    def __len__(self) -> int:
        return len(self.provenance)


class InFine:
    """The InFine pipeline (Algorithm 1 of the paper).

    Parameters
    ----------
    base_algorithm:
        Name or instance of the single-table discovery algorithm used for the
        base relations and the level-wise reductions (default: TANE).
    max_lhs_size:
        Optional cap on the LHS size explored by every step.
    use_theorem4:
        Whether ``mineFDs`` applies the Theorem 4 pruning (ablation knob).
    refine_inferred:
        Whether ``inferFDs`` runs the data-dependent ``refine`` subroutine.
    session:
        Optional :class:`repro.session.Session` whose engine state (backend
        policy, caches, counters) every :meth:`run` executes under.  Without
        one, runs inherit the ambient state — the enclosing session's
        activation, or the module-level default.  Prefer
        :meth:`repro.session.Session.infine`, which also wraps the outcome
        in a :class:`~repro.session.RunResult`.
    """

    def __init__(
        self,
        base_algorithm: str | FDDiscoveryAlgorithm = "tane",
        max_lhs_size: int | None = None,
        use_theorem4: bool = True,
        refine_inferred: bool = True,
        session=None,
    ) -> None:
        if isinstance(base_algorithm, str):
            base_algorithm = make_algorithm(base_algorithm, max_lhs_size=max_lhs_size)
        self.base_algorithm = base_algorithm
        self.max_lhs_size = max_lhs_size
        self.use_theorem4 = use_theorem4
        self.refine_inferred = refine_inferred
        self.session = session

    # -- public API -----------------------------------------------------------
    def run(self, view: ViewSpec, catalog: Mapping[str, Relation]) -> InFineResult:
        """Discover the FDs of ``view`` with their provenance triples."""
        if self.session is not None:
            with self.session.activate():
                return self._run(view, catalog)
        return self._run(view, catalog)

    def _run(self, view: ViewSpec, catalog: Mapping[str, Relation]) -> InFineResult:
        timings = StepTimings()
        stats = InFineStats()

        with timings.measure("io"):
            projected = validate_view(view, catalog)
            needed = self._needed_attributes(view, projected)

        node = self._prov_fds(view, catalog, needed, timings, stats)

        final = node.provenance.restrict_to(projected)
        return InFineResult(
            view=view,
            attributes=projected,
            provenance=final,
            timings=timings,
            stats=stats,
        )

    # -- recursion ------------------------------------------------------------
    def _prov_fds(
        self,
        spec: ViewSpec,
        catalog: Mapping[str, Relation],
        needed: frozenset[str],
        timings: StepTimings,
        stats: InFineStats,
    ) -> _NodeResult:
        if isinstance(spec, BaseRelationSpec):
            return self._base_node(spec, catalog, needed, timings, stats)
        if isinstance(spec, ProjectSpec):
            # Projection never creates FDs (Theorem 1); the attribute
            # restriction was applied once, up front (Section IV-A).
            return self._prov_fds(spec.child, catalog, needed, timings, stats)
        if isinstance(spec, SelectSpec):
            return self._selection_node(spec, catalog, needed, timings, stats)
        if isinstance(spec, JoinSpec):
            return self._join_node(spec, catalog, needed, timings, stats)
        raise TypeError(f"unsupported view node {type(spec).__name__}")

    def _base_node(
        self,
        spec: BaseRelationSpec,
        catalog: Mapping[str, Relation],
        needed: frozenset[str],
        timings: StepTimings,
        stats: InFineStats,
    ) -> _NodeResult:
        relation = catalog[spec.relation_name]
        keep = [a for a in relation.attribute_names if a in needed]
        with timings.measure("io"):
            restricted = project(relation, keep, name=relation.name) if keep else relation
        with timings.measure("base"):
            discovered = self.base_algorithm.discover(restricted, keep or None)
        stats.base_fd_counts[spec.relation_name] = len(discovered.fds)
        provenance = ProvenanceSet(
            ProvenanceTriple(dependency, FDType.BASE, spec.describe())
            for dependency in discovered.fds
        )
        return _NodeResult(instance=restricted, provenance=provenance)

    def _selection_node(
        self,
        spec: SelectSpec,
        catalog: Mapping[str, Relation],
        needed: frozenset[str],
        timings: StepTimings,
        stats: InFineStats,
    ) -> _NodeResult:
        child = self._prov_fds(spec.child, catalog, needed, timings, stats)
        child_fds = child.provenance.fds().as_list()
        with timings.measure("upstageFDs"):
            outcome = selection_fds(
                child.instance,
                spec.predicate,
                child_fds,
                sorted(needed),
                spec.describe(),
                self.max_lhs_size,
            )
        stats.upstage_candidates_checked += outcome.candidates_checked
        provenance = self._combine(child.provenance, outcome.triples)
        return _NodeResult(instance=outcome.instance, provenance=provenance)

    def _join_node(
        self,
        spec: JoinSpec,
        catalog: Mapping[str, Relation],
        needed: frozenset[str],
        timings: StepTimings,
        stats: InFineStats,
    ) -> _NodeResult:
        left = self._prov_fds(spec.left, catalog, needed, timings, stats)
        right = self._prov_fds(spec.right, catalog, needed, timings, stats)
        subquery = spec.describe()
        left_fds = left.provenance.fds().as_list()
        right_fds = right.provenance.fds().as_list()

        # Step: joinUpFDs (Algorithm 3).
        with timings.measure("upstageFDs"):
            upstaged = join_upstaged_fds(
                left.instance,
                right.instance,
                spec.left_on,
                spec.right_on,
                spec.kind,
                left_fds,
                right_fds,
                sorted(needed),
                subquery,
                self.max_lhs_size,
            )
        stats.upstage_candidates_checked += upstaged.candidates_checked

        left_full = left_fds + upstaged.left_fds
        right_full = right_fds + upstaged.right_fds
        carried = left_fds + right_fds + upstaged.left_fds + upstaged.right_fds

        # Step: inferFDs (Algorithm 4).
        with timings.measure("inferFDs"):
            inferred = infer_join_fds(
                left.instance,
                right.instance,
                spec.left_on,
                spec.right_on,
                spec.kind,
                left_full,
                right_full,
                carried,
                subquery,
                refine_with_data=self.refine_inferred,
            )
        stats.infer_candidates_checked += inferred.candidates_checked
        stats.raw_inferred += inferred.raw_inferred

        # Step: mineFDs (Algorithm 5), including the lazy partial join.
        known = carried + inferred.fds
        with timings.measure("mineFDs"):
            mined = mine_join_fds(
                left.instance,
                right.instance,
                spec.left_on,
                spec.right_on,
                spec.kind,
                left_full,
                right_full,
                known,
                sorted(needed),
                subquery,
                self.max_lhs_size,
                use_theorem4=self.use_theorem4,
            )
        stats.mine_candidates_validated += mined.candidates_validated
        stats.mine_candidates_pruned_logically += mined.candidates_pruned_logically
        if mined.join_materialised:
            stats.partial_joins_materialised += 1
            stats.partial_join_rows += mined.partial_join_rows

        provenance = self._combine(
            left.provenance.merge(right.provenance),
            list(upstaged.triples) + list(inferred.triples) + list(mined.triples),
        )

        # The node instance for enclosing operators: reuse the join
        # materialised by mineFDs when available, otherwise compute it now
        # (counted as part of mineFDs, like the partial SPJ of the paper).
        with timings.measure("mineFDs"):
            if mined.joined is not None:
                instance = mined.joined
            else:
                instance = equi_join(
                    left.instance,
                    right.instance,
                    spec.left_on,
                    spec.right_on,
                    kind=spec.kind,
                    name=subquery,
                )
            keep = [a for a in instance.attribute_names if a in needed]
            if keep and len(keep) != instance.arity:
                instance = project(instance, keep, name=instance.name)
        return _NodeResult(instance=instance, provenance=provenance)

    # -- helpers --------------------------------------------------------------
    @staticmethod
    def _needed_attributes(view: ViewSpec, projected: Sequence[str]) -> frozenset[str]:
        """Attributes the pipeline must keep: AV plus join and selection attributes."""
        needed = set(projected)
        for node in view.walk():
            if isinstance(node, JoinSpec):
                needed.update(node.left_on)
                needed.update(node.right_on)
            elif isinstance(node, SelectSpec):
                needed.update(node.predicate.attributes())
        return frozenset(needed)

    @staticmethod
    def _combine(
        inherited: ProvenanceSet, new_triples: list[ProvenanceTriple]
    ) -> ProvenanceSet:
        """Merge inherited and new triples, keeping only FDs that stay minimal.

        An FD carried over from an input can lose minimality when a smaller
        FD with the same RHS becomes valid on the current node (e.g. the base
        FD ``admission_location, diagnosis -> subject_id`` is superseded by
        the join FD ``diagnosis -> subject_id`` in the paper's running
        example); such dominated FDs are dropped from the node's set.
        """
        combined = ProvenanceSet(inherited)
        combined.extend(new_triples)
        all_fds = combined.fds().as_list()
        minimal: set[FD] = set()
        for dependency in all_fds:
            dominated = any(
                other.rhs == dependency.rhs and other.lhs < dependency.lhs
                for other in all_fds
            )
            if not dominated:
                minimal.add(dependency)
        return ProvenanceSet(
            triple for triple in combined if triple.dependency in minimal
        )
