"""InFine: provenance-aware FD discovery on integrated views (the paper's contribution)."""

from .engine import InFine, InFineResult, InFineStats
from .inference import InferenceOutcome, infer_join_fds
from .joinfd import JoinMiningOutcome, mine_join_fds
from .levelwise import mine_new_fds
from .provenance import FDType, ProvenanceSet, ProvenanceTriple
from .selection import SelectionOutcome, selection_fds
from .straightforward import StraightforwardPipeline, StraightforwardResult
from .timing import StepTimings
from .upstaged import JoinUpstageOutcome, join_upstaged_fds

__all__ = [
    "InFine",
    "InFineResult",
    "InFineStats",
    "FDType",
    "ProvenanceTriple",
    "ProvenanceSet",
    "StepTimings",
    "selection_fds",
    "SelectionOutcome",
    "join_upstaged_fds",
    "JoinUpstageOutcome",
    "infer_join_fds",
    "InferenceOutcome",
    "mine_join_fds",
    "JoinMiningOutcome",
    "mine_new_fds",
    "StraightforwardPipeline",
    "StraightforwardResult",
]
