"""Algorithm 2 — ``selectionFDs``: upstaged FDs created by a selection.

A selection can only make *more* FDs hold (Theorem 1): when the filter
removes tuples that violated an FD of the input, that FD becomes exact on
the selection result.  This module mines exactly those newly holding FDs and
labels them with the ``upstaged selection`` provenance type.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

from ..fd.fd import FD
from ..relational.algebra import select
from ..relational.predicates import Predicate
from ..relational.relation import Relation
from .levelwise import mine_new_fds
from .provenance import FDType, ProvenanceTriple


@dataclass
class SelectionOutcome:
    """Result of applying ``selectionFDs`` to one selection node."""

    #: The selected (filtered) instance, reused by the enclosing view node.
    instance: Relation
    #: Provenance triples of the newly holding (upstaged) FDs.
    triples: list[ProvenanceTriple]
    #: Number of candidate FDs validated against the data.
    candidates_checked: int
    #: Whether the selection actually removed tuples (otherwise mining is skipped).
    filtered: bool


def selection_fds(
    child_instance: Relation,
    predicate: Predicate,
    known_fds: Iterable[FD],
    attributes: Sequence[str],
    subquery: str,
    max_lhs_size: int | None = None,
) -> SelectionOutcome:
    """Apply a selection and mine its upstaged FDs (Algorithm 2).

    Parameters
    ----------
    child_instance:
        The materialised input of the selection (already restricted to the
        attributes needed by the view).
    predicate:
        The selection condition ``ρ``.
    known_fds:
        FDs known to hold on the input; they keep holding on the selection
        (Theorem 1), prune the candidate lattice, and are excluded from the
        reported upstaged FDs.
    attributes:
        The projected attribute set ``AV`` to restrict the mining to.
    subquery:
        The sub-query string recorded in the provenance triples.
    max_lhs_size:
        Optional cap on the explored LHS size.
    """
    selected = select(child_instance, predicate, name=subquery)
    # Line #4 of Algorithm 2: skip the mining entirely when nothing was filtered.
    if len(selected) >= len(child_instance):
        return SelectionOutcome(selected, [], 0, filtered=False)

    new_fds, checked = mine_new_fds(selected, attributes, known_fds, max_lhs_size)
    triples = [
        ProvenanceTriple(dependency, FDType.UPSTAGED_SELECTION, subquery)
        for dependency in sorted(new_fds, key=FD.sort_key)
    ]
    return SelectionOutcome(selected, triples, checked, filtered=True)
