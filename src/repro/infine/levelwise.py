"""Level-wise mining of *new* FDs on a reduced instance.

Algorithms 2 (``selectionFDs``) and 3 (``joinUpFDs``) of the paper both rely
on the same primitive: given an instance that has been reduced by a selection
or by a semi-join with the other input's join-attribute values, mine the
minimal FDs that hold on the reduced instance, pruning the candidates that
are already implied by the FDs known to hold on the *unreduced* input.

The exploration is the level-wise lattice walk of the paper (a TANE-style
traversal with stripped partitions, inheriting TANE's batched per-level
candidate validation on the active partition backend); the known FDs feed
two prunings:

* candidates implied by known FDs are skipped (lines #8–9 of Algorithm 2 and
  #18–19 of Algorithm 3), and
* only the FDs that are *not* implied by the known set are reported, since
  the others carry no new information for the view.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..discovery.tane import TANE
from ..fd.closure import FDIndex
from ..fd.fd import FD
from ..relational.relation import Relation


def mine_new_fds(
    reduced: Relation,
    attributes: Sequence[str],
    known_fds: Iterable[FD],
    max_lhs_size: int | None = None,
) -> tuple[list[FD], int]:
    """Minimal FDs of ``reduced`` (over ``attributes``) not implied by ``known_fds``.

    Parameters
    ----------
    reduced:
        The reduced instance (selection result or semi-joined input).
    attributes:
        Attributes to restrict the mining to (the projected attribute set
        ``AV`` intersected with the instance schema).
    known_fds:
        FDs already known to hold on the unreduced input; by Theorem 1 they
        keep holding on the reduced instance, so they both prune the search
        and are excluded from the output.
    max_lhs_size:
        Optional cap on the explored LHS size.

    Returns
    -------
    (new_fds, candidates_checked):
        The newly discovered minimal FDs and the number of candidate
        validations performed (for the statistics of the run).
    """
    known = list(known_fds)
    usable = [a for a in attributes if reduced.schema.has(a)]
    if not usable:
        return [], 0

    miner = TANE(max_lhs_size=max_lhs_size)
    result = miner.discover(reduced, usable)

    new_fds: list[FD] = []
    known_index = FDIndex(known)
    closure_cache: dict[frozenset[str], frozenset[str]] = {}
    for dependency in result.fds:
        closure = closure_cache.get(dependency.lhs)
        if closure is None:
            closure = known_index.closure(dependency.lhs)
            closure_cache[dependency.lhs] = closure
        if dependency.rhs not in closure:
            new_fds.append(dependency)
    return new_fds, result.stats.candidates_checked
