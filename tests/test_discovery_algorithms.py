"""Tests for the single-table FD discovery algorithms (TANE, FUN, FastFDs, HyFD)."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery import (
    FUN,
    TANE,
    ApproximateTANE,
    FastFDs,
    HyFD,
    NaiveFDDiscovery,
    available_algorithms,
    make_algorithm,
    make_algorithms,
    register_algorithm,
)
from repro.fd import FD, fd
from repro.relational.relation import Relation

ALL_ALGORITHMS = [TANE, FUN, FastFDs, HyFD, NaiveFDDiscovery]


@pytest.fixture()
def employees(employees_relation):
    return employees_relation


@pytest.mark.parametrize("algorithm_cls", ALL_ALGORITHMS)
class TestOnPlantedFDs:
    def test_key_fds_found(self, algorithm_cls, employees):
        result = algorithm_cls().discover(employees)
        fds = set(result.fds.as_set())
        for rhs in ("name", "department", "manager", "city"):
            assert fd("emp_id", rhs) in fds

    def test_planted_department_manager_fd(self, algorithm_cls, employees):
        fds = set(algorithm_cls().discover(employees).fds.as_set())
        assert fd("department", "manager") in fds
        assert fd("manager", "department") in fds

    def test_no_trivial_or_dominated_fds(self, algorithm_cls, employees):
        fds = algorithm_cls().discover(employees).fds.as_list()
        for dependency in fds:
            assert dependency.rhs not in dependency.lhs
            assert not any(
                other.rhs == dependency.rhs and other.lhs < dependency.lhs for other in fds
            )

    def test_fds_actually_hold(self, algorithm_cls, employees):
        from repro.relational.partition import fd_holds

        for dependency in algorithm_cls().discover(employees).fds:
            assert fd_holds(employees, dependency.lhs, dependency.rhs)

    def test_attribute_restriction(self, algorithm_cls, employees):
        result = algorithm_cls().discover(employees, attributes=("department", "manager"))
        assert set(result.fds.as_set()) == {
            fd("department", "manager"), fd("manager", "department")}

    def test_empty_relation_yields_constant_fds(self, algorithm_cls):
        empty = Relation("e", ("a", "b"), [])
        fds = set(algorithm_cls().discover(empty).fds.as_set())
        assert fds == {FD((), "a"), FD((), "b")}

    def test_single_row_relation(self, algorithm_cls):
        one = Relation("one", ("a", "b"), [(1, 2)])
        fds = set(algorithm_cls().discover(one).fds.as_set())
        assert fds == {FD((), "a"), FD((), "b")}

    def test_constant_column(self, algorithm_cls):
        relation = Relation("r", ("a", "b"), [(1, 7), (2, 7), (3, 7)])
        fds = set(algorithm_cls().discover(relation).fds.as_set())
        assert FD((), "b") in fds
        assert fd("a", "b") not in fds  # dominated by the constant FD

    def test_unknown_attribute_rejected(self, algorithm_cls, employees):
        with pytest.raises(ValueError):
            algorithm_cls().discover(employees, attributes=("nope",))

    def test_stats_are_populated(self, algorithm_cls, employees):
        result = algorithm_cls().discover(employees)
        assert result.stats.runtime_seconds >= 0
        assert result.algorithm == algorithm_cls.name
        assert len(result) == len(result.fds)


@pytest.mark.parametrize("algorithm_cls", [TANE, FUN, FastFDs, HyFD])
class TestAgainstNaiveOracle:
    def test_random_relations_match_oracle(self, algorithm_cls):
        rng = random.Random(11)
        for _ in range(12):
            n_attrs = rng.randint(2, 5)
            n_rows = rng.randint(0, 18)
            names = [f"a{i}" for i in range(n_attrs)]
            rows = [tuple(rng.randint(0, 3) for _ in names) for _ in range(n_rows)]
            relation = Relation("r", names, rows)
            expected = set(NaiveFDDiscovery().discover(relation).fds.as_set())
            got = set(algorithm_cls().discover(relation).fds.as_set())
            assert got == expected, f"{algorithm_cls.name} disagrees on {rows}"

    def test_max_lhs_cap_returns_subset(self, algorithm_cls, employees):
        capped = set(algorithm_cls(max_lhs_size=1).discover(employees).fds.as_set())
        full = set(algorithm_cls().discover(employees).fds.as_set())
        assert capped <= full
        assert all(len(dependency.lhs) <= 1 for dependency in capped)


class TestApproximateTane:
    def test_accepts_almost_holding_fd(self):
        # grp almost determines val: a single row (rid=0) deviates from its group.
        rows = [(i, i % 3, f"x{i % 3}" if i != 0 else "y") for i in range(30)]
        relation = Relation("r", ("rid", "grp", "val"), rows)
        exact = set(TANE().discover(relation).fds.as_set())
        approx = set(ApproximateTANE(threshold=0.1).discover(relation).fds.as_set())
        assert fd("grp", "val") not in exact
        assert fd("grp", "val") in approx

    def test_zero_threshold_equals_exact(self, employees):
        assert set(ApproximateTANE(threshold=0.0).discover(employees).fds.as_set()) == set(
            TANE().discover(employees).fds.as_set()
        )

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            ApproximateTANE(threshold=-0.1)


class TestRegistry:
    def test_available_algorithms_contains_baselines(self):
        names = available_algorithms()
        for expected in ("tane", "fun", "fastfds", "hyfd", "naive"):
            assert expected in names

    def test_make_algorithm(self):
        assert isinstance(make_algorithm("tane"), TANE)
        assert make_algorithm("hyfd", max_lhs_size=2).max_lhs_size == 2

    def test_make_algorithm_unknown(self):
        with pytest.raises(KeyError):
            make_algorithm("does-not-exist")

    def test_make_algorithms_default_baselines(self):
        assert [a.name for a in make_algorithms()] == ["tane", "fun", "fastfds", "hyfd"]

    def test_register_custom_algorithm(self):
        register_algorithm("naive-again", NaiveFDDiscovery)
        assert isinstance(make_algorithm("naive-again"), NaiveFDDiscovery)

    def test_register_empty_name_rejected(self):
        with pytest.raises(ValueError):
            register_algorithm("", NaiveFDDiscovery)


@settings(max_examples=25, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 1)),
        max_size=20,
    )
)
def test_property_all_algorithms_agree(rows):
    relation = Relation("r", ("a", "b", "c"), rows)
    expected = set(NaiveFDDiscovery().discover(relation).fds.as_set())
    for algorithm in (TANE(), FUN(), FastFDs(), HyFD()):
        assert set(algorithm.discover(relation).fds.as_set()) == expected
