"""Tests for :mod:`repro.relational.schema`."""

import pytest

from repro.relational.schema import Attribute, RelationSchema, SchemaError, make_schema


class TestAttribute:
    def test_default_type_is_string(self):
        assert Attribute("name").dtype == "string"

    def test_explicit_type(self):
        assert Attribute("age", "integer").dtype == "integer"

    def test_rejects_empty_name(self):
        with pytest.raises(SchemaError):
            Attribute("")

    def test_rejects_unknown_type(self):
        with pytest.raises(SchemaError):
            Attribute("x", "decimal")

    def test_renamed_keeps_type(self):
        renamed = Attribute("a", "integer").renamed("b")
        assert renamed.name == "b"
        assert renamed.dtype == "integer"

    def test_equality_ignores_type(self):
        assert Attribute("a", "integer") == Attribute("a", "string")

    def test_str(self):
        assert str(Attribute("city")) == "city"


class TestRelationSchema:
    def test_from_strings(self):
        schema = RelationSchema(["a", "b"])
        assert schema.names == ("a", "b")

    def test_from_attributes(self):
        schema = RelationSchema([Attribute("a", "integer"), Attribute("b")])
        assert schema["a"].dtype == "integer"

    def test_rejects_duplicates(self):
        with pytest.raises(SchemaError):
            RelationSchema(["a", "b", "a"])

    def test_rejects_non_attribute(self):
        with pytest.raises(SchemaError):
            RelationSchema([42])

    def test_len_and_iter(self):
        schema = RelationSchema(["a", "b", "c"])
        assert len(schema) == 3
        assert [attribute.name for attribute in schema] == ["a", "b", "c"]

    def test_contains_by_name_and_attribute(self):
        schema = RelationSchema(["a", "b"])
        assert "a" in schema
        assert Attribute("b") in schema
        assert "z" not in schema

    def test_getitem_by_index_and_name(self):
        schema = RelationSchema(["a", "b"])
        assert schema[1].name == "b"
        assert schema["a"].name == "a"

    def test_getitem_unknown_name_raises(self):
        with pytest.raises(SchemaError):
            RelationSchema(["a"])["z"]

    def test_index_of(self):
        schema = RelationSchema(["a", "b", "c"])
        assert schema.index_of("c") == 2

    def test_index_of_unknown_raises(self):
        with pytest.raises(SchemaError):
            RelationSchema(["a"]).index_of("b")

    def test_indexes_of(self):
        schema = RelationSchema(["a", "b", "c"])
        assert schema.indexes_of(["c", "a"]) == (2, 0)

    def test_project_preserves_order_given(self):
        schema = RelationSchema(["a", "b", "c"]).project(["c", "a"])
        assert schema.names == ("c", "a")

    def test_drop(self):
        schema = RelationSchema(["a", "b", "c"]).drop(["b"])
        assert schema.names == ("a", "c")

    def test_drop_unknown_raises(self):
        with pytest.raises(SchemaError):
            RelationSchema(["a"]).drop(["z"])

    def test_concat(self):
        schema = RelationSchema(["a"]).concat(RelationSchema(["b"]))
        assert schema.names == ("a", "b")

    def test_concat_collision_raises(self):
        with pytest.raises(SchemaError):
            RelationSchema(["a"]).concat(RelationSchema(["a"]))

    def test_renamed(self):
        schema = RelationSchema(["a", "b"]).renamed({"a": "x"})
        assert schema.names == ("x", "b")

    def test_renamed_unknown_raises(self):
        with pytest.raises(SchemaError):
            RelationSchema(["a"]).renamed({"z": "y"})

    def test_equality_and_hash(self):
        assert RelationSchema(["a", "b"]) == RelationSchema(["a", "b"])
        assert hash(RelationSchema(["a"])) == hash(RelationSchema(["a"]))
        assert RelationSchema(["a", "b"]) != RelationSchema(["b", "a"])

    def test_make_schema_helper(self):
        schema = make_schema("a", "b", dtypes={"a": "integer"})
        assert schema["a"].dtype == "integer"
        assert schema["b"].dtype == "string"
