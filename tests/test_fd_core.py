"""Tests for the FD core: canonical FDs, Armstrong reasoning, FD sets."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fd import (
    FD,
    FDError,
    FDSet,
    attribute_closure,
    canonical_cover,
    equivalent,
    fd,
    implies,
    is_minimal,
    minimise_lhs,
    project_fds,
    prune_non_minimal,
    transitive_fds_through,
)


class TestFD:
    def test_constructor_from_string_lhs(self):
        dependency = FD("a", "b")
        assert dependency.lhs == frozenset({"a"})

    def test_constructor_from_iterable(self):
        assert FD(["a", "b"], "c").lhs == frozenset({"a", "b"})

    def test_empty_lhs_is_allowed(self):
        assert FD((), "a").is_constant()

    def test_trivial_fd_rejected(self):
        with pytest.raises(FDError):
            FD(("a", "b"), "a")

    def test_empty_rhs_rejected(self):
        with pytest.raises(FDError):
            FD(("a",), "")

    def test_attributes(self):
        assert FD(("a", "b"), "c").attributes == {"a", "b", "c"}

    def test_generalises_and_specialises(self):
        assert FD(("a",), "c").generalises(FD(("a", "b"), "c"))
        assert FD(("a", "b"), "c").specialises(FD(("a",), "c"))
        assert not FD(("a",), "c").generalises(FD(("a",), "d"))

    def test_restricted_to(self):
        assert FD(("a",), "b").restricted_to(["a", "b"]) is not None
        assert FD(("a",), "b").restricted_to(["a"]) is None

    def test_str_and_parse_round_trip(self):
        dependency = FD(("b", "a"), "c")
        assert FD.parse(str(dependency)) == dependency

    def test_parse_empty_lhs(self):
        assert FD.parse("∅ -> x") == FD((), "x")
        assert FD.parse(" -> x") == FD((), "x")

    def test_parse_rejects_garbage(self):
        with pytest.raises(FDError):
            FD.parse("no arrow here")

    def test_sort_key_orders_by_rhs_then_size(self):
        fds = [FD(("x", "y"), "b"), FD(("z",), "a"), FD(("w",), "b")]
        ordered = sorted(fds, key=FD.sort_key)
        assert [d.rhs for d in ordered] == ["a", "b", "b"]
        assert ordered[1].lhs == frozenset({"w"})

    def test_fd_helper(self):
        assert fd("a", "b") == FD(("a",), "b")

    def test_hashable_and_equal(self):
        assert FD(("a", "b"), "c") == FD(("b", "a"), "c")
        assert len({FD(("a",), "b"), FD(("a",), "b")}) == 1


FDS = [fd("a", "b"), fd("b", "c"), fd(("c", "d"), "e")]


class TestClosureAndImplication:
    def test_attribute_closure_transitive(self):
        assert attribute_closure({"a"}, FDS) == {"a", "b", "c"}

    def test_attribute_closure_with_composite(self):
        assert "e" in attribute_closure({"a", "d"}, FDS)

    def test_implies_true_and_false(self):
        assert implies(FDS, fd("a", "c"))
        assert not implies(FDS, fd("a", "e"))

    def test_equivalent_sets(self):
        first = [fd("a", "b"), fd("b", "c")]
        second = [fd("a", "b"), fd("b", "c"), fd("a", "c")]
        assert equivalent(first, second)
        assert not equivalent(first, [fd("a", "b")])

    def test_is_minimal(self):
        assert is_minimal(fd("a", "c"), FDS)
        assert not is_minimal(fd(("a", "b"), "c"), FDS)

    def test_minimise_lhs(self):
        assert minimise_lhs(fd(("a", "b"), "c"), FDS) == fd("b", "c") or \
               minimise_lhs(fd(("a", "b"), "c"), FDS).lhs < {"a", "b"}

    def test_canonical_cover_removes_redundancy(self):
        cover = canonical_cover([fd("a", "b"), fd("b", "c"), fd("a", "c")])
        assert fd("a", "c") not in cover
        assert equivalent(cover, [fd("a", "b"), fd("b", "c"), fd("a", "c")])

    def test_prune_non_minimal(self):
        candidates = [fd(("a", "x"), "b"), fd("x", "y")]
        assert prune_non_minimal(candidates, [fd("a", "b")]) == [fd("x", "y")]

    def test_project_fds_keeps_transitive_dependency(self):
        projected = project_fds([fd("a", "b"), fd("b", "c")], ["a", "c"])
        assert fd("a", "c") in projected
        assert all(d.attributes <= {"a", "c"} for d in projected)

    def test_transitive_fds_through_join_attributes(self):
        left = [fd("name", "k")]
        right = [fd("k", "city")]
        inferred = transitive_fds_through(left, right, ["k"], ["k"])
        assert fd("name", "city") in inferred

    def test_transitive_fds_require_join_coverage(self):
        left = [fd("name", "other")]
        right = [fd("k", "city")]
        assert fd("name", "city") not in transitive_fds_through(left, right, ["k"], ["k"])


class TestFDSet:
    def test_container_protocol(self):
        fdset = FDSet([fd("a", "b"), fd("b", "c")])
        assert len(fdset) == 2
        assert fd("a", "b") in fdset
        assert [d.rhs for d in fdset] == ["b", "c"]

    def test_set_operations(self):
        first = FDSet([fd("a", "b")])
        second = FDSet([fd("b", "c")])
        assert len(first | second) == 2
        assert len(first & second) == 0
        assert len((first | second) - second) == 1

    def test_add_update_discard(self):
        fdset = FDSet()
        fdset.add(fd("a", "b"))
        fdset.update([fd("b", "c")])
        fdset.discard(fd("a", "b"))
        assert fdset.as_list() == [fd("b", "c")]

    def test_attributes_and_with_rhs(self):
        fdset = FDSet([fd("a", "b"), fd(("a", "c"), "b")])
        assert fdset.attributes() == {"a", "b", "c"}
        assert len(fdset.with_rhs("b")) == 2

    def test_closure_and_implies(self):
        fdset = FDSet([fd("a", "b"), fd("b", "c")])
        assert fdset.closure_of({"a"}) == {"a", "b", "c"}
        assert fdset.implies(fd("a", "c"))

    def test_restrict_to(self):
        fdset = FDSet([fd("a", "b"), fd("c", "d")])
        assert fdset.restrict_to(["a", "b"]).as_list() == [fd("a", "b")]

    def test_minimal_only(self):
        fdset = FDSet([fd("a", "c"), fd(("a", "b"), "c")])
        assert fdset.minimal_only().as_list() == [fd("a", "c")]

    def test_canonical(self):
        fdset = FDSet([fd("a", "b"), fd("b", "c"), fd("a", "c")])
        assert fdset.canonical().is_equivalent_to(fdset)
        assert len(fdset.canonical()) == 2

    def test_keys_of(self):
        fdset = FDSet([fd("a", "b"), fd("b", "c")])
        keys = fdset.keys_of(["a", "b", "c"])
        assert frozenset({"a"}) in keys

    def test_difference_report(self):
        mine = FDSet([fd("a", "b"), fd("a", "c"), fd("x", "y")])
        other = FDSet([fd("a", "b"), fd("b", "c")])
        report = mine.difference_report(other)
        assert report["shared"] == [fd("a", "b")]
        assert report["implied"] == [fd("a", "c")]
        assert report["new"] == [fd("x", "y")]

    def test_equality_with_plain_sets(self):
        assert FDSet([fd("a", "b")]) == {fd("a", "b")}


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sets(st.sampled_from("abcd"), max_size=3),
            st.sampled_from("abcd"),
        ),
        max_size=8,
    )
)
def test_closure_is_monotone_and_idempotent(raw):
    fds = [FD(lhs, rhs) for lhs, rhs in raw if rhs not in lhs]
    closure = attribute_closure({"a"}, fds)
    assert {"a"} <= closure
    assert attribute_closure(closure, fds) == closure


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.sets(st.sampled_from("abcd"), max_size=2),
            st.sampled_from("abcd"),
        ),
        max_size=6,
    )
)
def test_canonical_cover_is_equivalent_to_input(raw):
    fds = [FD(lhs, rhs) for lhs, rhs in raw if rhs not in lhs]
    cover = canonical_cover(fds)
    assert equivalent(cover, fds)
