"""Counting-sort grouping path: bit-compatibility, knob plumbing, batching.

The numpy backend picks between a counting-sort (``uint16`` radix) and the
composite introsort per call, driven by ``EngineConfig.counting_sort_max_codes``.
Both are *stable* sorts, and a stable sort's permutation is unique — so the
two paths must produce byte-identical ``StrippedPartition``s (same group
order, same positions, same dense codes) on every input.  These tests pin
that across adversarial key-space shapes, exercise the knob's env/kwarg
plumbing on the numpy and no-numpy legs, and check the cross-LHS stacked
level validation against the scalar oracle on both of its internal paths.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    DEFAULT_COUNTING_SORT_MAX_CODES,
    ENV_COUNTING_SORT_MAX_CODES,
    EngineConfig,
)
from repro.relational.backend import numpy_available
from repro.relational.partition import (
    StrippedPartition,
    fd_holds_fast,
    validate_level,
)
from repro.relational.relation import Relation
from repro.session import Session

requires_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy fast path not importable")

ATTRS = ("a", "b", "c")


def flat(partition):
    positions, offsets = partition.positions, partition.offsets
    if not isinstance(positions, list):
        positions = positions.tolist()
    if not isinstance(offsets, list):
        offsets = offsets.tolist()
    return positions, offsets


# Adversarial key-space shapes: constant (k=1), all-distinct (k=n, the
# all-singleton stripped partition), heavily skewed, and free random mixes.
def _shaped_column(draw, n, shape):
    if shape == "constant":
        return [0] * n
    if shape == "distinct":
        return list(range(n))
    if shape == "skewed":
        return [0 if draw(st.integers(0, 9)) else draw(st.integers(1, 3)) for _ in range(n)]
    return [draw(st.integers(0, max(1, n))) for _ in range(n)]


@st.composite
def shaped_rows(draw):
    n = draw(st.integers(0, 50))
    columns = [
        _shaped_column(draw, n, draw(st.sampled_from(("constant", "distinct", "skewed", "random"))))
        for _ in ATTRS
    ]
    return [tuple(column[i] for column in columns) for i in range(n)]


def _partitions(rows, **session_kwargs):
    with Session(backend="numpy", **session_kwargs):
        relation = Relation("r", ATTRS, rows)
        singles = [flat(StrippedPartition.from_column(relation, a)) for a in ATTRS]
        combined = flat(StrippedPartition.from_columns(relation, ATTRS))
        pair = StrippedPartition.from_column(relation, "a").intersect(
            StrippedPartition.from_column(relation, "b")
        )
    return singles, combined, flat(pair)


@requires_numpy
@settings(max_examples=60, deadline=None)
@given(rows=shaped_rows())
def test_counting_and_introsort_paths_are_byte_identical(rows):
    # max_codes=0 disables the counting path (introsort only); the default
    # enables it for every key space the kernel re-densifies into uint16.
    counting = _partitions(rows, counting_sort_max_codes=DEFAULT_COUNTING_SORT_MAX_CODES)
    introsort = _partitions(rows, counting_sort_max_codes=0)
    assert counting == introsort


@requires_numpy
def test_threshold_forces_the_expected_sort_path():
    rows = [(i % 7, i % 3, i % 5) for i in range(200)]
    with Session(backend="numpy", counting_sort_max_codes=DEFAULT_COUNTING_SORT_MAX_CODES) as on:
        relation = Relation("r", ATTRS, rows)
        StrippedPartition.from_columns(relation, ATTRS)
        stats_on = on.kernel_stats()
    with Session(backend="numpy", counting_sort_max_codes=0) as off:
        relation = Relation("r", ATTRS, rows)
        StrippedPartition.from_columns(relation, ATTRS)
        stats_off = off.kernel_stats()
    assert stats_on["counting_sorts"] > 0
    assert stats_on["introsorts"] == 0
    assert stats_off["counting_sorts"] == 0
    assert stats_off["introsorts"] > 0


def test_knob_is_inert_on_the_python_backend():
    # The knob only steers numpy code: the pure-python leg (and therefore
    # the no-numpy leg) accepts it and produces identical partitions.
    rows = [(i % 4, i % 2, i) for i in range(40)]
    results = []
    for max_codes in (0, DEFAULT_COUNTING_SORT_MAX_CODES):
        with Session(backend="python", counting_sort_max_codes=max_codes):
            relation = Relation("r", ATTRS, rows)
            results.append(flat(StrippedPartition.from_columns(relation, ("a", "b"))))
    assert results[0] == results[1]


def test_env_and_kwarg_plumbing():
    assert EngineConfig.from_env({}).counting_sort_max_codes == DEFAULT_COUNTING_SORT_MAX_CODES
    config = EngineConfig.from_env({ENV_COUNTING_SORT_MAX_CODES: "1024"})
    assert config.counting_sort_max_codes == 1024
    with pytest.raises(ValueError):
        EngineConfig(counting_sort_max_codes=-1)
    with Session(counting_sort_max_codes=77) as session:
        assert session.config.counting_sort_max_codes == 77


# ---------------------------------------------------------------------------
# Cross-LHS batched level validation.
# ---------------------------------------------------------------------------


def _level_case():
    rows = [(i % 6, i % 4, (i * 7) % 6) for i in range(96)]
    relation = Relation("r", ATTRS, rows)
    partitions = {a: StrippedPartition.from_column(relation, a) for a in ATTRS}
    batch = [(partitions[lhs], rhs) for lhs in ATTRS for rhs in ATTRS if lhs != rhs]
    return relation, batch


@pytest.mark.parametrize("backend", ["python", pytest.param("numpy", marks=requires_numpy)])
def test_validate_level_matches_scalar_oracle_across_partitions(backend):
    with Session(backend=backend):
        relation, batch = _level_case()
        expected = [fd_holds_fast(relation, p, rhs) for p, rhs in batch]
        assert validate_level(relation, batch) == expected


@requires_numpy
@pytest.mark.parametrize("budget", [0, 1 << 30])
def test_stacked_and_loop_level_paths_agree(budget, monkeypatch):
    # budget=0 forces the per-LHS loop; a huge budget forces the stacked
    # prescreen.  Both must match the scalar oracle.
    from repro.relational.backend import NumpyBackend

    monkeypatch.setattr(NumpyBackend, "LEVEL_STACK_MAX_ELEMENTS_PER_CANDIDATE", budget)
    with Session(backend="numpy"):
        relation, batch = _level_case()
        expected = [fd_holds_fast(relation, p, rhs) for p, rhs in batch]
        assert validate_level(relation, batch) == expected
