"""Tests for the content-addressed relation registry (``repro.registry``).

Covers the canonical columnar hash (determinism, type sensitivity,
order/name sensitivity), the store's two backends, integrity verification
(bit flips and truncation are detected, typed and quarantined — never
silently wrong), crash safety (``kill -9`` mid-``PUT`` and mid-``save``
leave a consistent state, proven with real SIGKILLed subprocesses), the
concurrent duplicate-``PUT`` race, the startup recovery scan and the
provenance chain stamped onto every :class:`RunResult`.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.config import EngineConfig, ServeConfig
from repro.registry import (
    HASH_HEX_LENGTH,
    IntegrityError,
    ProvenanceError,
    RelationRegistry,
    atomic_write_text,
    build_provenance,
    catalog_content_hash,
    is_relation_hash,
    relation_content_hash,
    verify_provenance,
)
from repro.relational.relation import Relation
from repro.session import RunResult, Session

_SRC = Path(__file__).resolve().parent.parent / "src"


def make_relation(name: str = "t", n_rows: int = 40, salt: int = 0) -> Relation:
    rows = [(i % 5, (i % 5) * 3, (i + salt) % 4, f"v{(i + salt) % 3}") for i in range(n_rows)]
    return Relation(name, ("a", "b", "c", "d"), rows)


def _subprocess_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_SRC)
    return env


class TestHashing:
    def test_hash_shape_and_determinism(self):
        relation = make_relation()
        digest = relation.content_hash()
        assert is_relation_hash(digest)
        assert len(digest) == HASH_HEX_LENGTH
        # A fresh Relation built from the same data hashes identically.
        clone = Relation(relation.name, relation.attribute_names, [list(r) for r in relation.rows])
        assert clone.content_hash() == digest
        assert relation_content_hash(clone) == digest

    def test_hash_distinguishes_value_types(self):
        # Dictionary codes alone collide here ([1, 2] vs ["1", "2"]); the
        # hash must cover the dictionary values, not just the code stream.
        ints = Relation("r", ("a",), [(1,), (2,)])
        strs = Relation("r", ("a",), [("1",), ("2",)])
        assert ints.content_hash() != strs.content_hash()

    def test_hash_is_representation_level(self):
        base = Relation("r", ("a", "b"), [(1, 2), (3, 4)])
        reordered = Relation("r", ("a", "b"), [(3, 4), (1, 2)])
        renamed = Relation("other", ("a", "b"), [(1, 2), (3, 4)])
        reattributed = Relation("r", ("a", "c"), [(1, 2), (3, 4)])
        digests = {
            base.content_hash(),
            reordered.content_hash(),
            renamed.content_hash(),
            reattributed.content_hash(),
        }
        assert len(digests) == 4

    def test_hash_cached_on_relation(self):
        relation = make_relation()
        assert relation.content_hash() is relation.content_hash()

    def test_catalog_hash_covers_members(self):
        r1, r2 = make_relation("x"), make_relation("y", salt=1)
        h = catalog_content_hash({"x": r1, "y": r2})
        assert is_relation_hash(h)
        assert h == catalog_content_hash({"y": r2, "x": r1})  # order-free
        assert h != catalog_content_hash({"x": r1})

    def test_is_relation_hash_rejects_junk(self):
        assert not is_relation_hash(None)
        assert not is_relation_hash("abc")
        assert not is_relation_hash("g" * 64)
        assert not is_relation_hash(("a" * 64).upper())
        assert is_relation_hash("0123456789abcdef" * 4)


class TestMemoryRegistry:
    def test_put_get_same_object(self):
        registry = RelationRegistry()
        relation = make_relation()
        digest = registry.put(relation)
        assert digest in registry
        assert registry.get(digest) is relation
        assert not registry.persistent

    def test_unknown_hash_is_key_error(self):
        registry = RelationRegistry()
        with pytest.raises(KeyError):
            registry.get("0" * 64)
        with pytest.raises(KeyError):
            registry.get("not-a-hash")
        assert "0" * 64 not in registry

    def test_lru_bound(self):
        registry = RelationRegistry(max_cached_relations=2)
        digests = [registry.put(make_relation(salt=i)) for i in range(3)]
        assert digests[0] not in registry
        assert digests[1] in registry and digests[2] in registry


class TestDiskRegistry:
    def test_round_trip_across_instances(self, tmp_path):
        relation = make_relation()
        digest = RelationRegistry(tmp_path).put(relation)
        reopened = RelationRegistry(tmp_path)
        fetched = reopened.get(digest)
        assert fetched.rows == relation.rows
        assert fetched.content_hash() == digest
        assert reopened.stats()["disk_reads"] == 1
        # The second get is a cache hit returning the same object.
        assert reopened.get(digest) is fetched

    def test_put_is_idempotent_and_skips_rewrites(self, tmp_path):
        registry = RelationRegistry(tmp_path)
        relation = make_relation()
        assert registry.put(relation) == registry.put(make_relation())
        stats = registry.stats()
        assert stats["writes"] == 1
        assert stats["write_skips"] == 1
        assert len(list((tmp_path / "objects").glob("*.json"))) == 1

    def test_non_json_native_values_rejected(self, tmp_path):
        registry = RelationRegistry(tmp_path)
        with pytest.raises(ValueError, match="JSON-native"):
            registry.put(Relation("r", ("a",), [(b"raw-bytes",)]))

    def test_bit_flip_detected_and_quarantined(self, tmp_path):
        registry = RelationRegistry(tmp_path)
        digest = registry.put(make_relation())
        path = tmp_path / "objects" / f"{digest}.json"
        raw = bytearray(path.read_bytes())
        # Flip a bit inside a row value so the JSON may stay well-formed:
        # the recomputed content hash is what must catch it.
        index = raw.rindex(b'"rows"') + 20
        raw[index] ^= 0x01
        path.write_bytes(bytes(raw))
        fresh = RelationRegistry(tmp_path)
        with pytest.raises(IntegrityError) as excinfo:
            fresh.get(digest)
        assert excinfo.value.content_hash == digest
        assert excinfo.value.quarantined is not None
        assert not path.exists()
        assert len(list((tmp_path / "quarantine").iterdir())) == 1
        # After quarantine the hash is simply unknown — a clean state.
        with pytest.raises(KeyError):
            fresh.get(digest)

    def test_truncation_detected_and_quarantined(self, tmp_path):
        registry = RelationRegistry(tmp_path)
        digest = registry.put(make_relation())
        path = tmp_path / "objects" / f"{digest}.json"
        path.write_bytes(path.read_bytes()[: len(path.read_bytes()) // 2])
        with pytest.raises(IntegrityError):
            RelationRegistry(tmp_path).get(digest)
        assert not path.exists()

    def test_non_utf8_garbage_detected(self, tmp_path):
        registry = RelationRegistry(tmp_path)
        digest = registry.put(make_relation())
        path = tmp_path / "objects" / f"{digest}.json"
        path.write_bytes(b"\xde\xad\xbe\xef" * 32)
        with pytest.raises(IntegrityError):
            RelationRegistry(tmp_path).get(digest)
        assert not path.exists()

    def test_verify_bypasses_cache(self, tmp_path):
        registry = RelationRegistry(tmp_path)
        digest = registry.put(make_relation())
        assert registry.verify(digest)
        (tmp_path / "objects" / f"{digest}.json").write_text("{}", encoding="utf-8")
        with pytest.raises(IntegrityError):
            registry.verify(digest)

    def test_recovery_scan_removes_partial_writes(self, tmp_path):
        registry = RelationRegistry(tmp_path)
        registry.put(make_relation())
        objects = tmp_path / "objects"
        (objects / ".deadbeef.json.123.abcd1234.tmp").write_text("partial", encoding="utf-8")
        (objects / "README").write_text("foreign", encoding="utf-8")
        reopened = RelationRegistry(tmp_path)
        assert reopened.last_recovery == {
            "entries": 1,
            "partial_writes_removed": 1,
            "foreign_files_quarantined": 1,
        }
        assert not (objects / ".deadbeef.json.123.abcd1234.tmp").exists()
        assert not (objects / "README").exists()

    def test_concurrent_duplicate_put_race(self, tmp_path):
        relation = make_relation(n_rows=200)
        registries = [RelationRegistry(tmp_path) for _ in range(4)]
        digests: list[str] = []
        errors: list[BaseException] = []
        barrier = threading.Barrier(len(registries))

        def worker(registry: RelationRegistry) -> None:
            try:
                barrier.wait(timeout=10)
                digests.append(registry.put(make_relation(n_rows=200)))
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker, args=(r,)) for r in registries]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert len(set(digests)) == 1
        files = list((tmp_path / "objects").iterdir())
        assert [f.name for f in files] == [f"{digests[0]}.json"]
        assert RelationRegistry(tmp_path).get(digests[0]).rows == relation.rows

    def test_kill_nine_during_put_leaves_consistent_store(self, tmp_path):
        """SIGKILL between fsync and rename: no entry, a tmp leftover, and
        the recovery scan restores a clean store."""
        script = (
            "import sys\n"
            "from repro.registry import RelationRegistry\n"
            "from repro.serve.faults import FaultPlan\n"
            "from repro.relational.relation import Relation\n"
            "rows = [(i % 5, i % 3) for i in range(20)]\n"
            "relation = Relation('t', ('a', 'b'), rows)\n"
            "registry = RelationRegistry(sys.argv[1], "
            "faults=FaultPlan.from_spec('registry.write:kill'))\n"
            "registry.put(relation)\n"
            "print('UNREACHABLE')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)],
            env=_subprocess_env(),
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        assert "UNREACHABLE" not in proc.stdout
        objects = tmp_path / "objects"
        assert list(objects.glob("*.json")) == []
        leftovers = list(objects.glob("*.tmp"))
        assert len(leftovers) == 1
        recovered = RelationRegistry(tmp_path)
        assert recovered.last_recovery["partial_writes_removed"] == 1
        assert recovered.hashes() == []
        # The store still works: a re-PUT lands the entry.
        digest = recovered.put(Relation("t", ("a", "b"), [(i % 5, i % 3) for i in range(20)]))
        assert digest in RelationRegistry(tmp_path)


class TestQuarantineCap:
    @staticmethod
    def _stale_quarantine(tmp_path, count: int, size: int = 1024):
        """Pre-populate ``quarantine/`` with ``count`` aged files."""
        RelationRegistry(tmp_path)  # creates the layout
        quarantine = tmp_path / "quarantine"
        paths = []
        for index in range(count):
            path = quarantine / f"stale-{index}.json.1.{index:08d}"
            path.write_bytes(b"x" * size)
            os.utime(path, (1_000_000 + index, 1_000_000 + index))  # distinct mtimes
            paths.append(path)
        return paths

    def test_startup_prunes_stale_quarantine_oldest_first(self, tmp_path):
        paths = self._stale_quarantine(tmp_path, count=4, size=1024)
        registry = RelationRegistry(tmp_path, max_quarantine_bytes=2 * 1024)
        assert [p.exists() for p in paths] == [False, False, True, True]
        stats = registry.stats()
        assert stats["quarantine_pruned"] == 2
        assert stats["quarantine"] == {"files": 2, "bytes": 2 * 1024, "max_bytes": 2 * 1024}

    def test_fresh_quarantine_evicts_old_evidence_not_itself(self, tmp_path):
        old = self._stale_quarantine(tmp_path, count=1, size=4096)
        registry = RelationRegistry(tmp_path, max_quarantine_bytes=4096)
        digest = registry.put(make_relation())
        path = tmp_path / "objects" / f"{digest}.json"
        path.write_bytes(b"\xde\xad" * 64)
        fresh = RelationRegistry(tmp_path, max_quarantine_bytes=4096)
        with pytest.raises(IntegrityError) as excinfo:
            fresh.get(digest)
        # The just-quarantined file survives its own pruning sweep; the
        # stale evidence goes first.
        assert Path(excinfo.value.quarantined).exists()
        assert not old[0].exists()

    def test_zero_cap_disables_pruning(self, tmp_path):
        paths = self._stale_quarantine(tmp_path, count=3)
        registry = RelationRegistry(tmp_path, max_quarantine_bytes=0)
        assert all(p.exists() for p in paths)
        assert registry.stats()["quarantine_pruned"] == 0

    def test_rejects_negative_cap(self, tmp_path):
        with pytest.raises(ValueError, match="non-negative"):
            RelationRegistry(tmp_path, max_quarantine_bytes=-1)


class TestAtomicSave:
    def test_save_is_atomic_and_byte_identical(self, tmp_path):
        result = Session().discover(make_relation())
        target = tmp_path / "out.json"
        result.save(target)
        assert json.loads(target.read_text(encoding="utf-8")) == result.payload
        assert list(tmp_path.glob("*.tmp")) == []

    def test_kill_nine_during_save_never_truncates(self, tmp_path):
        """SIGKILL between fsync and rename of RunResult.save(): the old
        artefact survives untouched, never a truncated mix."""
        target = tmp_path / "out.json"
        target.write_text('{"old": true}', encoding="utf-8")
        script = (
            "import os, signal, sys\n"
            "from repro.registry import store\n"
            "from repro.relational.relation import Relation\n"
            "from repro.session import Session\n"
            "store._TEST_BEFORE_REPLACE = "
            "lambda tmp: os.kill(os.getpid(), signal.SIGKILL)\n"
            "rows = [(i % 5, i % 3) for i in range(20)]\n"
            "Session().discover(Relation('t', ('a', 'b'), rows)).save(sys.argv[1])\n"
            "print('UNREACHABLE')\n"
        )
        proc = subprocess.run(
            [sys.executable, "-c", script, str(target)],
            env=_subprocess_env(),
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        assert json.loads(target.read_text(encoding="utf-8")) == {"old": True}

    def test_atomic_write_cleans_tmp_on_error(self, tmp_path):
        def boom() -> None:
            raise RuntimeError("injected")

        with pytest.raises(RuntimeError, match="injected"):
            atomic_write_text(tmp_path / "x.json", "{}", before_replace=boom)
        assert list(tmp_path.iterdir()) == []


class TestProvenance:
    def test_every_verb_stamps_provenance(self):
        session = Session()
        relation = make_relation()
        results = [
            session.discover(relation),
            session.validate(relation, ["a -> b"]),
            session.profile(relation),
        ]
        for result in results:
            block = result.provenance
            assert block is not None
            assert block["relation_hash"] == relation.content_hash()
            assert block["executor"] == "inline"
            assert block["config_fingerprint"] == session.config.fingerprint()

    def test_infine_stamps_catalog_hash(self):
        from repro.relational import base, join

        session = Session()
        left = Relation("l", ("k", "a"), [(i % 4, i % 2) for i in range(12)])
        right = Relation("r", ("k", "b"), [(i % 4, i % 3) for i in range(12)])
        catalog = {"l": left, "r": right}
        result = session.infine(join(base("l"), base("r"), on="k"), catalog)
        assert result.provenance["relation_hash"] == catalog_content_hash(catalog)

    def test_verify_provenance_accepts_fresh_results(self):
        registry = RelationRegistry()
        relation = make_relation()
        registry.put(relation)
        result = Session().discover(relation)
        report = verify_provenance(result, registry)
        assert report["relation_verified"] is True
        assert report["code_version_matches_current"] is True

    def test_verify_provenance_rejects_tampered_fingerprint(self):
        result = Session().discover(make_relation())
        payload = json.loads(result.to_json())
        payload["provenance"]["config_fingerprint"] = "0" * 16
        with pytest.raises(ProvenanceError, match="fingerprint"):
            verify_provenance(RunResult(payload))

    def test_verify_provenance_rejects_missing_block(self):
        result = Session().discover(make_relation())
        payload = json.loads(result.to_json())
        del payload["provenance"]
        with pytest.raises(ProvenanceError):
            verify_provenance(RunResult(payload))

    def test_verify_provenance_requires_registry_membership(self):
        result = Session().discover(make_relation())
        with pytest.raises(ProvenanceError, match="not in the registry"):
            verify_provenance(result, RelationRegistry())

    def test_with_provenance_replaces_executor_only(self):
        result = Session().discover(make_relation())
        stamped = result.with_provenance(executor="thread")
        assert stamped.provenance["executor"] == "thread"
        assert result.provenance["executor"] == "inline"
        assert stamped.provenance["relation_hash"] == result.provenance["relation_hash"]
        assert stamped.artifact_fingerprint() == result.artifact_fingerprint()

    def test_build_provenance_key_order_is_canonical(self):
        block = build_provenance("0" * 64, "f" * 16, executor="process")
        assert list(block) == ["code_version", "config_fingerprint", "executor", "relation_hash"]

    def test_round_trip_preserves_provenance(self, tmp_path):
        result = Session().discover(make_relation())
        path = tmp_path / "r.json"
        result.save(path)
        loaded = RunResult.load(path)
        assert loaded.provenance == result.provenance
        verify_provenance(loaded)


class TestServeConfigRegistryDir:
    def test_env_resolution(self):
        config = ServeConfig.from_env({"REPRO_REGISTRY_DIR": "/tmp/reg"})
        assert config.registry_dir == "/tmp/reg"
        assert ServeConfig.from_env({}).registry_dir is None
        assert ServeConfig.from_env({"REPRO_REGISTRY_DIR": "  "}).registry_dir is None

    def test_engine_config_untouched(self):
        # The registry is serve-level state; EngineConfig fingerprints must
        # not change because a registry directory is configured.
        assert not any("registry" in key for key in EngineConfig().as_dict())
