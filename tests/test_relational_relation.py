"""Tests for :mod:`repro.relational.relation`."""

import pytest

from repro.relational.relation import NULL, Relation, RelationError, validate_same_schema
from repro.relational.schema import SchemaError


@pytest.fixture()
def small() -> Relation:
    return Relation("r", ("a", "b", "c"), [(1, "x", None), (2, "y", 5), (1, "x", None)])


class TestConstruction:
    def test_row_width_checked(self):
        with pytest.raises(RelationError):
            Relation("r", ("a", "b"), [(1,)])

    def test_from_dicts(self):
        relation = Relation.from_dicts("r", [{"a": 1, "b": 2}, {"a": 3, "b": 4}])
        assert relation.attribute_names == ("a", "b")
        assert relation.rows == ((1, 2), (3, 4))

    def test_from_dicts_missing_key_raises(self):
        with pytest.raises(RelationError):
            Relation.from_dicts("r", [{"a": 1}], schema=["a", "b"])

    def test_from_dicts_empty_without_schema_raises(self):
        with pytest.raises(RelationError):
            Relation.from_dicts("r", [])

    def test_from_columns(self):
        relation = Relation.from_columns("r", {"a": [1, 2], "b": ["x", "y"]})
        assert relation.rows == ((1, "x"), (2, "y"))

    def test_from_columns_inconsistent_lengths(self):
        with pytest.raises(RelationError):
            Relation.from_columns("r", {"a": [1], "b": [1, 2]})

    def test_from_columns_empty_raises(self):
        with pytest.raises(RelationError):
            Relation.from_columns("r", {})

    def test_empty_constructor(self):
        relation = Relation.empty("r", ("a", "b"))
        assert relation.is_empty()
        assert relation.arity == 2


class TestAccessors:
    def test_len_and_iter(self, small):
        assert len(small) == 3
        assert list(small)[0] == (1, "x", None)

    def test_column(self, small):
        assert small.column("a") == [1, 2, 1]

    def test_columns(self, small):
        assert small.columns(["b", "a"]) == [("x", 1), ("y", 2), ("x", 1)]

    def test_row_dicts(self, small):
        first = next(small.row_dicts())
        assert first == {"a": 1, "b": "x", "c": None}

    def test_distinct_count_single(self, small):
        assert small.distinct_count("a") == 2

    def test_distinct_count_combination(self, small):
        assert small.distinct_count(["a", "b"]) == 2

    def test_distinct_count_empty_attributes(self, small):
        assert small.distinct_count([]) == 1

    def test_value_index_caches(self, small):
        index = small.value_index("a")
        assert index[1] == [0, 2]
        assert small.value_index("a") is index

    def test_multi_value_index(self, small):
        index = small.multi_value_index(["a", "b"])
        assert index[(1, "x")] == [0, 2]


class TestDerivations:
    def test_with_name(self, small):
        assert small.with_name("other").name == "other"

    def test_with_rows(self, small):
        derived = small.with_rows([(9, "z", 0)])
        assert len(derived) == 1

    def test_take(self, small):
        assert small.take([2, 0]).rows == ((1, "x", None), (1, "x", None))

    def test_head(self, small):
        assert len(small.head(2)) == 2

    def test_distinct(self, small):
        assert len(small.distinct()) == 2

    def test_map_column(self, small):
        mapped = small.map_column("a", lambda v: v * 10)
        assert mapped.column("a") == [10, 20, 10]

    def test_sorted_rows_handles_null(self, small):
        ordered = small.sorted_rows()
        assert len(ordered) == 3


class TestEqualityAndDisplay:
    def test_bag_equality_ignores_order(self):
        first = Relation("r", ("a",), [(1,), (2,)])
        second = Relation("r2", ("a",), [(2,), (1,)])
        assert first == second

    def test_bag_equality_respects_multiplicity(self):
        first = Relation("r", ("a",), [(1,), (1,)])
        second = Relation("r", ("a",), [(1,)])
        assert first != second

    def test_equality_requires_same_attributes(self):
        assert Relation("r", ("a",), [(1,)]) != Relation("r", ("b",), [(1,)])

    def test_to_text_contains_values_and_null(self, small):
        text = small.to_text()
        assert "NULL" in text
        assert "a" in text and "b" in text

    def test_to_text_truncates(self):
        relation = Relation("r", ("a",), [(i,) for i in range(30)])
        assert "more rows" in relation.to_text(limit=5)

    def test_validate_same_schema(self, small):
        validate_same_schema(small, small.with_name("copy"))
        with pytest.raises(SchemaError):
            validate_same_schema(small, Relation("s", ("x",), [(1,)]))

    def test_null_constant_is_none(self):
        assert NULL is None
