"""Sharded grouping path: byte-identity, gating, counters, knob plumbing.

``NumpyBackend.shard_group`` splits the combined code array into contiguous
row ranges, groups each shard in a thread pool, and merges the shard-local
groups.  Because the codes are globally dense first-appearance encodings and
the merge lays shard s's rows of every code before shard s+1's, the result
is byte-identical to the sequential ``group_by_codes`` by construction.
These tests pin that identity with hypothesis across shard counts and
adversarial value shapes, assert the ``shard_min_rows`` gate (small inputs
must *not* take the sharded path), and exercise the knobs' env/kwarg
plumbing on both backends.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import (
    DEFAULT_SHARD_MIN_ROWS,
    ENV_SHARD_COUNT,
    ENV_SHARD_MIN_ROWS,
    EngineConfig,
)
from repro.relational.backend import numpy_available
from repro.relational.partition import StrippedPartition
from repro.relational.relation import Relation
from repro.session import Session

requires_numpy = pytest.mark.skipif(not numpy_available(), reason="numpy fast path not importable")

ATTRS = ("a", "b", "c")


def flat(partition):
    positions, offsets = partition.positions, partition.offsets
    if not isinstance(positions, list):
        positions = positions.tolist()
    if not isinstance(offsets, list):
        offsets = offsets.tolist()
    return positions, offsets


def _shaped_column(draw, n, shape):
    if shape == "constant":
        return [0] * n
    if shape == "distinct":
        return list(range(n))
    if shape == "skewed":
        return [0 if draw(st.integers(0, 9)) else draw(st.integers(1, 3)) for _ in range(n)]
    if shape == "blocks":
        # Long equal runs: shard boundaries cut groups, forcing the merge to
        # stitch cross-shard group halves back in global position order.
        out = []
        value = 0
        while len(out) < n:
            out.extend([value] * min(n - len(out), draw(st.integers(1, max(1, n // 2)))))
            value += 1
        return out
    return [draw(st.integers(0, max(1, n))) for _ in range(n)]


@st.composite
def shaped_rows(draw):
    n = draw(st.integers(0, 60))
    shapes = st.sampled_from(("constant", "distinct", "skewed", "blocks", "random"))
    columns = [_shaped_column(draw, n, draw(shapes)) for _ in ATTRS]
    return [tuple(column[i] for column in columns) for i in range(n)]


def _partitions(rows, **session_kwargs):
    with Session(**session_kwargs):
        relation = Relation("r", ATTRS, rows)
        singles = [flat(StrippedPartition.from_column(relation, a)) for a in ATTRS]
        combined = flat(StrippedPartition.from_columns(relation, ATTRS))
    return singles, combined


@requires_numpy
@settings(max_examples=60, deadline=None)
@given(rows=shaped_rows())
def test_sharded_and_unsharded_are_byte_identical(rows):
    # shard_min_rows=0 forces the sharded path even on tiny inputs, so the
    # property also covers empty shards and single-row shards.
    baseline = _partitions(rows, backend="numpy", shard_count=1)
    for shard_count in (2, 3, 7, 16):
        sharded = _partitions(rows, backend="numpy", shard_count=shard_count, shard_min_rows=0)
        assert sharded == baseline


@requires_numpy
def test_min_rows_gate_keeps_small_inputs_sequential():
    rows = [(i % 5, i % 3, i % 7) for i in range(50)]
    with Session(backend="numpy", shard_count=4, shard_min_rows=1000) as session:
        relation = Relation("r", ATTRS, rows)
        StrippedPartition.from_columns(relation, ATTRS)
        assert session.kernel_stats()["sharded_groupings"] == 0
        assert session.kernel_stats()["shard_timings"] == []


@requires_numpy
def test_forced_sharding_is_counted_and_timed():
    rows = [(i % 5, i % 3, i % 7) for i in range(50)]
    with Session(backend="numpy", shard_count=4, shard_min_rows=0) as session:
        relation = Relation("r", ATTRS, rows)
        StrippedPartition.from_columns(relation, ATTRS)
        stats = session.kernel_stats()
        assert stats["sharded_groupings"] > 0
        assert len(stats["shard_timings"]) == 4
        assert all(seconds >= 0 for seconds in stats["shard_timings"])


@requires_numpy
def test_shard_count_one_disables_sharding():
    rows = [(i % 5, i % 3, i % 7) for i in range(50)]
    with Session(backend="numpy", shard_count=1, shard_min_rows=0) as session:
        relation = Relation("r", ATTRS, rows)
        StrippedPartition.from_columns(relation, ATTRS)
        assert session.kernel_stats()["sharded_groupings"] == 0


def test_knobs_are_inert_on_the_python_backend():
    rows = [(i % 4, i % 2, i) for i in range(40)]
    results = []
    for kwargs in ({}, {"shard_count": 7, "shard_min_rows": 0}):
        results.append(_partitions(rows, backend="python", **kwargs))
    assert results[0] == results[1]


def test_env_and_kwarg_plumbing():
    defaults = EngineConfig.from_env({})
    assert defaults.shard_count == 0
    assert defaults.shard_min_rows == DEFAULT_SHARD_MIN_ROWS
    config = EngineConfig.from_env({ENV_SHARD_COUNT: "4", ENV_SHARD_MIN_ROWS: "500"})
    assert config.shard_count == 4
    assert config.shard_min_rows == 500
    with pytest.raises(ValueError):
        EngineConfig(shard_count=-1)
    with pytest.raises(ValueError):
        EngineConfig(shard_min_rows=-1)
    with Session(shard_count=3, shard_min_rows=10) as session:
        assert session.config.shard_count == 3
        assert session.config.shard_min_rows == 10
