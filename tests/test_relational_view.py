"""Tests for SPJ view specifications."""

import pytest

from repro.relational.algebra import JoinKind
from repro.relational.predicates import gt
from repro.relational.relation import Relation
from repro.relational.view import (
    JoinSpec,
    ProjectSpec,
    ViewError,
    base,
    join,
    proj,
    sel,
    validate_view,
)


@pytest.fixture()
def catalog():
    return {
        "L": Relation("L", ("k", "a"), [(1, 10), (2, 20), (3, 30)]),
        "R": Relation("R", ("k", "b"), [(1, "x"), (2, "y")]),
    }


class TestBaseAndProjectSelect:
    def test_base_projected_attributes(self, catalog):
        assert base("L").projected_attributes(catalog) == ("k", "a")

    def test_base_unknown_relation(self, catalog):
        with pytest.raises(ViewError):
            base("missing").evaluate(catalog)

    def test_project_restricts_attributes(self, catalog):
        view = proj(base("L"), ["a"])
        assert view.projected_attributes(catalog) == ("a",)
        assert view.evaluate(catalog).attribute_names == ("a",)

    def test_project_unknown_attribute(self, catalog):
        with pytest.raises(ViewError):
            proj(base("L"), ["zz"]).projected_attributes(catalog)

    def test_project_requires_attributes(self):
        with pytest.raises(ViewError):
            ProjectSpec(base("L"), [])

    def test_select_keeps_attributes(self, catalog):
        view = sel(base("L"), gt("a", 15))
        assert view.projected_attributes(catalog) == ("k", "a")
        assert len(view.evaluate(catalog)) == 2

    def test_describe_strings(self, catalog):
        view = sel(proj(base("L"), ["a"]), gt("a", 15))
        described = view.describe()
        assert "SELECT" in described and "PROJECT" in described and "L" in described


class TestJoinSpec:
    def test_same_name_join_attributes(self, catalog):
        view = join(base("L"), base("R"), on="k")
        assert view.projected_attributes(catalog) == ("k", "a", "b")
        assert len(view.evaluate(catalog)) == 2

    def test_semi_join_projects_single_side(self, catalog):
        view = join(base("L"), base("R"), on="k", kind=JoinKind.LEFT_SEMI)
        assert view.projected_attributes(catalog) == ("k", "a")

    def test_join_requires_attribute(self):
        with pytest.raises(ViewError):
            JoinSpec(base("L"), base("R"), (), ())

    def test_join_arity_mismatch(self):
        with pytest.raises(ViewError):
            JoinSpec(base("L"), base("R"), ("k",), ("k", "b"))

    def test_join_on_string_shorthand(self, catalog):
        view = join(base("L"), base("R"), on="k", right_on="k")
        assert view.left_on == ("k",) and view.right_on == ("k",)

    def test_base_relation_names(self):
        view = join(join(base("A"), base("B"), on="x"), base("C"), on="y")
        assert view.base_relation_names() == ("A", "B", "C")

    def test_walk_and_depth(self):
        view = sel(join(base("A"), base("B"), on="x"), gt("a", 1))
        kinds = [type(node).__name__ for node in view.walk()]
        assert kinds == ["BaseRelationSpec", "BaseRelationSpec", "JoinSpec", "SelectSpec"]
        assert view.depth() == 3
        assert view.join_count() == 1


class TestValidateView:
    def test_valid_view(self, catalog):
        assert validate_view(join(base("L"), base("R"), on="k"), catalog) == ("k", "a", "b")

    def test_unknown_relation(self, catalog):
        with pytest.raises(ViewError):
            validate_view(base("missing"), catalog)

    def test_invalid_projection_attribute(self, catalog):
        with pytest.raises(ViewError):
            validate_view(proj(base("L"), ["nope"]), catalog)

    def test_nested_view_evaluation_matches_manual(self, catalog):
        view = proj(sel(join(base("L"), base("R"), on="k"), gt("a", 10)), ["k", "b"])
        result = view.evaluate(catalog)
        assert result.attribute_names == ("k", "b")
        assert result.rows == ((2, "y"),)
