"""Tests for the pluggable serving executors (``repro.serve.executor``).

The headline guarantee: the thread and process executors serve
**byte-identical** ``repro/run-result-v1`` artefacts for the same job
stream (the process workers go through the same JSON wire format and the
same ``execute_request`` dispatch as a bare session).  Around it, every
queue semantic is re-pinned on the process executor — backpressure,
per-tenant in-flight cap, cancel of queued jobs, queue-wait timeouts,
graceful shutdown — plus the process-only behaviour: a killed worker
process fails only its own job (with a diagnostic) and is respawned.
"""

from __future__ import annotations

import json
import os
import random
import signal
import time
from functools import partial

import pytest

from repro.config import ConfigError, ServeConfig, parse_tenant_configs
from repro.relational.relation import Relation
from repro.serve import (
    CANCELLED,
    DONE,
    FAILED,
    JobQueue,
    ProcessExecutor,
    QueueFull,
    Server,
    SessionPool,
    ThreadExecutor,
    execute_payload,
    make_executor,
    relation_to_payload,
)
from repro.session import Session

pytestmark = pytest.mark.slow

#: Generous bound for waits that should complete almost instantly.
WAIT = 30.0

#: How long the blocking task of occupancy-based tests sleeps.  Long enough
#: that assertions about "still busy" states are safe, short enough that a
#: drain on close stays fast.
BUSY = 1.5


def make_relation(name: str = "t", n_rows: int = 60, salt: int = 0) -> Relation:
    rows = [(i % 6, (i % 6) * 2, (i + salt) % 4, f"v{(i + salt) % 3}") for i in range(n_rows)]
    return Relation(name, ("a", "b", "c", "d"), rows)


def job_payload(tenant: str, kind: str, relation: Relation, params: dict) -> dict:
    return {
        "schema": "repro/job-request-v1",
        "tenant": tenant,
        "kind": kind,
        "relation": relation_to_payload(relation),
        "params": params,
        "overrides": {},
    }


def wait_for_running(job, deadline: float = WAIT) -> None:
    """Poll until ``job`` left the queue (its worker claimed it)."""
    limit = time.monotonic() + deadline
    while job.status == "queued":
        assert time.monotonic() < limit, f"{job} never started"
        time.sleep(0.005)


def random_job_stream(seed: int, tenants: int = 3, jobs_per_tenant: int = 3) -> list[dict]:
    """A deterministic pseudo-random multi-tenant job stream."""
    rng = random.Random(seed)
    payloads = []
    for t in range(tenants):
        relation = make_relation(name=f"r{t}", n_rows=rng.randrange(30, 90), salt=t)
        for _ in range(jobs_per_tenant):
            kind = rng.choice(("discover", "validate", "profile"))
            if kind == "discover":
                params = {"algorithm": rng.choice(("tane", "fun")), "max_lhs_size": 2}
            elif kind == "validate":
                params = {"fds": ["a -> b", "c -> d", [["a", "c"], "d"]]}
            else:
                params = {"threshold": rng.choice((0.2, 0.5)), "max_lhs": 2}
            payloads.append(job_payload(f"tenant-{t}", kind, relation, params))
    rng.shuffle(payloads)
    return payloads


class TestServeConfig:
    def test_defaults(self):
        config = ServeConfig()
        assert config.executor == "thread"
        assert config.workers == 4
        assert config.warmup is True
        assert config.start_method == "spawn"

    def test_from_env(self):
        env = {
            "REPRO_SERVE_EXECUTOR": "process",
            "REPRO_SERVE_WORKERS": "7",
            "REPRO_SERVE_WARMUP": "0",
            "REPRO_SERVE_START_METHOD": "fork",
        }
        config = ServeConfig.from_env(env)
        assert config.executor == "process"
        assert config.workers == 7
        assert config.warmup is False
        assert config.start_method == "fork"

    def test_invalid_choices_rejected(self):
        with pytest.raises(ConfigError, match="executor"):
            ServeConfig(executor="fibers")
        with pytest.raises(ConfigError, match="workers"):
            ServeConfig(workers=0)
        with pytest.raises(ConfigError, match="start method"):
            ServeConfig(start_method="teleport")
        with pytest.raises(ConfigError, match="executor"):
            ServeConfig.from_env({"REPRO_SERVE_EXECUTOR": "fibers"})

    def test_fully_explicit_server_ignores_malformed_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_EXECUTOR", "fibers")
        monkeypatch.setenv("REPRO_SERVE_START_METHOD", "teleport")
        with Server(
            workers=1, executor="thread", warmup=False, start_method="spawn", max_queue=4
        ) as server:
            assert server.queue.stats()["executor"] == "thread"

    def test_make_executor_kinds(self):
        assert isinstance(make_executor("thread"), ThreadExecutor)
        executor = make_executor("process", warmup=False)
        assert isinstance(executor, ProcessExecutor)
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("fibers")


class TestExecutorParity:
    """Thread and process executors serve byte-identical artefacts."""

    @pytest.mark.parametrize("seed", [7, 21])
    def test_same_job_stream_byte_identical_results(self, seed):
        payloads = random_job_stream(seed)
        results = {}
        for executor in ("thread", "process"):
            with Server(workers=2, max_queue=len(payloads), executor=executor) as server:
                tickets = [server.submit(payload) for payload in payloads]
                results[executor] = [
                    server.result(ticket.job_id, timeout=WAIT) for ticket in tickets
                ]
        for threaded, processed in zip(results["thread"], results["process"]):
            assert threaded.artifact_fingerprint() == processed.artifact_fingerprint()
            # Byte-level identity of everything deterministic: the artifacts
            # and the engine provenance (stats carry wall-clock noise).
            for field in ("artifacts", "engine", "kind", "algorithm", "subject"):
                threaded_bytes = json.dumps(threaded.payload[field], sort_keys=True)
                processed_bytes = json.dumps(processed.payload[field], sort_keys=True)
                assert threaded_bytes == processed_bytes

    def test_process_results_match_bare_session(self):
        relation = make_relation()
        payload = job_payload("acme", "discover", relation, {"algorithm": "tane"})
        with Server(workers=1, executor="process") as server:
            served = server.result(server.submit(payload).job_id, timeout=WAIT)
        bare = Session().discover(make_relation(), algorithm="tane")
        assert json.dumps(served.payload["artifacts"], sort_keys=True) == json.dumps(
            bare.payload["artifacts"], sort_keys=True
        )

    def test_failure_diagnostics_identical_across_executors(self):
        # A semantic (run-time) failure whose message depends only on the
        # request: an FD over an attribute the relation does not have.
        # (Registry-listing errors would embed process-local registrations.)
        payload = job_payload("acme", "validate", make_relation(n_rows=6), {"fds": ["nope -> a"]})
        errors = {}
        for executor in ("thread", "process"):
            with Server(workers=1, executor=executor) as server:
                job = server.queue.get(server.submit(payload).job_id)
                assert job.wait(WAIT)
                assert job.status == FAILED
                errors[executor] = job.error
        assert errors["thread"] == errors["process"]

    def test_tenant_configs_reach_worker_processes(self):
        configs = parse_tenant_configs(
            {"*": {"batch_min_candidates": 5}, "acme": {"backend": "python"}}
        )
        payload = job_payload("acme", "discover", make_relation(), {"algorithm": "tane"})
        other = dict(payload, tenant="other")
        with Server(tenant_configs=configs, workers=1, executor="process") as server:
            acme = server.result(server.submit(payload).job_id, timeout=WAIT)
            unlisted = server.result(server.submit(other).job_id, timeout=WAIT)
        assert acme.backend == "python"
        assert acme.config.batch_min_candidates == 5
        assert unlisted.config.batch_min_candidates == 5  # "*" default applied

    def test_overrides_reach_worker_processes(self):
        payload = job_payload("acme", "discover", make_relation(), {"algorithm": "tane"})
        payload["overrides"] = {"backend": "python"}
        with Server(workers=1, executor="process") as server:
            result = server.result(server.submit(payload).job_id, timeout=WAIT)
        assert result.backend == "python"


class TestProcessExecutorQueueSemantics:
    """Every queue guarantee holds when execution happens out of process."""

    def test_backpressure_raises_queue_full(self):
        queue = JobQueue(workers=1, max_queue=2, executor=ProcessExecutor())
        try:
            blocker = queue.submit("acme", partial(time.sleep, BUSY))
            wait_for_running(blocker)
            queue.submit("acme", partial(time.sleep, 0))
            queue.submit("acme", partial(time.sleep, 0))
            with pytest.raises(QueueFull):
                queue.submit("acme", partial(time.sleep, 0))
            assert queue.stats()["rejected"] == 1
            assert queue.stats()["executor"] == "process"
        finally:
            queue.close()

    def test_per_tenant_cap_prevents_starvation(self):
        queue = JobQueue(workers=2, max_inflight_per_tenant=1, executor=ProcessExecutor())
        try:
            first = queue.submit("flooder", partial(time.sleep, 0.4))
            second = queue.submit("flooder", partial(time.sleep, 0.05))
            victim = queue.submit("victim", partial(time.sleep, 0.05))
            for job in (first, second, victim):
                assert job.wait(WAIT)
                assert job.status == DONE
            # The flooder's second job had to wait for its first (cap 1);
            # the victim ran immediately on the second worker process.
            assert victim.started_at < second.started_at
            assert second.started_at >= first.finished_at
        finally:
            queue.close()

    def test_cancel_queued_job_never_reaches_a_worker(self):
        queue = JobQueue(workers=1, executor=ProcessExecutor())
        try:
            blocker = queue.submit("acme", partial(time.sleep, BUSY))
            wait_for_running(blocker)
            doomed = queue.submit("acme", partial(os.getpid))
            assert queue.cancel(doomed.job_id) is True
            assert doomed.status == CANCELLED
            assert doomed.started_at is None
        finally:
            queue.close()

    def test_queue_wait_timeout_expires_job(self):
        queue = JobQueue(workers=1, executor=ProcessExecutor())
        try:
            blocker = queue.submit("acme", partial(time.sleep, 0.5))
            wait_for_running(blocker)
            doomed = queue.submit("acme", partial(time.sleep, 0), timeout=0.05)
            assert doomed.wait(WAIT)
            assert doomed.status == CANCELLED
            assert "timed out" in doomed.error
            assert queue.stats()["expired"] == 1
        finally:
            queue.close()

    def test_graceful_shutdown_drains_and_reaps_workers(self):
        executor = ProcessExecutor()
        queue = JobQueue(workers=1, executor=executor)
        running = queue.submit("acme", partial(time.sleep, 0.3))
        wait_for_running(running)
        queued = queue.submit("acme", partial(time.sleep, 0))
        queue.close()
        assert running.status == DONE  # drained, not killed
        assert queued.status == CANCELLED  # flushed by shutdown
        assert executor.stats()["alive"] == 0  # no leaked worker processes
        assert executor.stats()["respawns"] == 0  # a clean drain is not a crash

    def test_shutdown_reclaims_a_job_overrunning_the_drain_deadline(self):
        executor = ProcessExecutor()
        queue = JobQueue(workers=1, executor=executor)
        overrunner = queue.submit("acme", partial(time.sleep, WAIT))
        wait_for_running(overrunner)
        started = time.monotonic()
        queue.close(timeout=0.5)
        assert time.monotonic() - started < 10.0  # bounded, not the job's 30 s
        assert overrunner.wait(WAIT)
        assert overrunner.status == FAILED
        assert "shutting down" in overrunner.error
        stats = executor.stats()
        assert stats["alive"] == 0  # the overrunning worker was terminated
        assert stats["respawns"] == 0  # shutdown termination is not a crash

    def test_killed_worker_fails_job_with_diagnostic_and_respawns(self):
        executor = ProcessExecutor()
        queue = JobQueue(workers=1, executor=executor)
        try:
            victim = queue.submit("acme", partial(time.sleep, WAIT))
            wait_for_running(victim)
            pid = executor.worker_pids()[0]
            os.kill(pid, signal.SIGKILL)
            assert victim.wait(WAIT)
            assert victim.status == FAILED
            assert "worker process" in victim.error and str(pid) in victim.error
            assert "fresh worker" in victim.error
            # The next job runs on a freshly spawned worker process.
            follow_up = queue.submit("acme", partial(os.getpid))
            assert follow_up.wait(WAIT)
            assert follow_up.status == DONE
            assert follow_up.result not in (pid, os.getpid())
            assert executor.stats()["respawns"] == 1
        finally:
            queue.close()

    def test_killed_worker_does_not_disturb_other_tenants(self):
        executor = ProcessExecutor()
        queue = JobQueue(workers=2, max_inflight_per_tenant=1, executor=executor)
        try:
            victim = queue.submit("doomed", partial(time.sleep, WAIT))
            wait_for_running(victim)
            survivor = queue.submit("fine", partial(time.sleep, 0.2))
            assert survivor.wait(WAIT)
            assert survivor.status == DONE  # ran next to the doomed job
            # With the survivor finished, the only busy slot is the victim's.
            busy = [index for index, slot in enumerate(executor._slots) if slot.busy]
            assert len(busy) == 1
            os.kill(executor.worker_pids()[busy[0]], signal.SIGKILL)
            assert victim.wait(WAIT)
            assert victim.status == FAILED
            # The other worker process is untouched and still serves jobs.
            follow_up = queue.submit("fine", partial(os.getpid))
            assert follow_up.wait(WAIT)
            assert follow_up.status == DONE
        finally:
            queue.close()


class TestProcessExecutorInternals:
    def test_lazy_spawn_without_warmup(self):
        executor = ProcessExecutor(warmup=False)
        queue = JobQueue(workers=2, executor=executor)
        try:
            assert executor.worker_pids() == [None, None]
            job = queue.submit("acme", partial(os.getpid))
            assert job.wait(WAIT) and job.status == DONE
            assert executor.stats()["spawned"] == 1  # only the used slot
        finally:
            queue.close()

    def test_rejects_unserialisable_tasks(self):
        executor = ProcessExecutor(warmup=False)
        queue = JobQueue(workers=1, executor=executor)
        try:
            job = queue.submit("acme", 42)  # neither payload nor callable
            assert job.wait(WAIT)
            assert job.status == FAILED
            assert "TypeError" in job.error
        finally:
            queue.close()

    def test_execute_payload_matches_session(self):
        payload = job_payload("acme", "validate", make_relation(), {"fds": ["a -> b"]})
        pool = SessionPool()
        via_payload = execute_payload(pool, payload)
        direct = Session().validate(make_relation(), ["a -> b"])
        assert via_payload.artifact_fingerprint() == direct.artifact_fingerprint()
