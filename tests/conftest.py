"""Shared fixtures for the test suite.

The fixtures recreate, in miniature, the artefacts the paper reasons about:
the PATIENT/ADMISSION running example of Fig. 1, small synthetic relations
with planted FDs, and tiny-scale versions of the four benchmark catalogues.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

# Allow running the tests without installing the package (e.g. in an offline
# environment where `pip install -e .` cannot resolve build dependencies).
_SRC = Path(__file__).resolve().parent.parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))

from repro.datasets import load_database  # noqa: E402
from repro.relational import NULL, Relation  # noqa: E402


@pytest.fixture(scope="session")
def patient_relation() -> Relation:
    """The PATIENT excerpt of Fig. 1 of the paper."""
    return Relation(
        "patient",
        ("subject_id", "gender", "dob", "dod", "expire_flag"),
        [
            (249, "F", "13/03/75", NULL, 0),
            (250, "F", "27/12/64", "22/11/88", 1),
            (251, "M", "15/03/90", NULL, 0),
            (252, "M", "06/03/78", NULL, 0),
            (257, "F", "03/04/31", "08/07/21", 1),
        ],
    )


@pytest.fixture(scope="session")
def admission_relation() -> Relation:
    """The ADMISSION excerpt of Fig. 1 of the paper."""
    return Relation(
        "admission",
        ("subject_id", "admittime", "admission_location", "insurance", "diagnosis",
         "h_expire_flag"),
        [
            (247, "03/08/56 20:35", "CLINIC REFERRAL/PREMATURE", "UNOBTAINABLE", "CHEST PAIN", 0),
            (248, "19/10/42 16:30", "EMERGENCY ROOM ADMIT", "Private", "S/P MOTOR ROLLOR", 0),
            (249, "17/12/49 20:41", "EMERGENCY ROOM ADMIT", "Medicare", "UNSTABLE ANGINA", 0),
            (249, "03/02/55 20:16", "EMERGENCY ROOM ADMIT", "Medicare", "CHEST PAIN", 0),
            (249, "27/04/56 15:33", "PHYS REFERRAL/NORMAL DELI", "Medicare", "GI BLEEDING", 0),
            (250, "12/11/88 09:22", "EMERGENCY ROOM ADMIT", "Self Pay", "PNEUMONIA R/O TB", 1),
            (251, "27/07/10 06:46", "EMERGENCY ROOM ADMIT", "Private",
             "INTRACRANIAL HEAD BLEED", 0),
            (252, "31/03/33 04:24", "EMERGENCY ROOM ADMIT", "Private", "GASTROINTESTINAL BLEED", 0),
            (252, "15/08/33 04:23", "EMERGENCY ROOM ADMIT", "Private", "GASTROINTESTINAL BLEED", 0),
            (253, "21/01/74 20:58", "TRANSFER FROM HOSP/EXTRAM", "Medicare",
             "COMPLETE HEART BLOCK", 0),
        ],
    )


@pytest.fixture(scope="session")
def clinical_catalog(patient_relation, admission_relation) -> dict[str, Relation]:
    """Catalogue holding the two relations of the running example."""
    return {"patient": patient_relation, "admission": admission_relation}


@pytest.fixture(scope="session")
def employees_relation() -> Relation:
    """A small relation with planted FDs (department -> manager, id is a key)."""
    return Relation(
        "employees",
        ("emp_id", "name", "department", "manager", "city"),
        [
            (1, "ada", "research", "turing", "london"),
            (2, "grace", "research", "turing", "boston"),
            (3, "edsger", "systems", "dijkstra", "austin"),
            (4, "barbara", "systems", "dijkstra", "boston"),
            (5, "donald", "systems", "dijkstra", "stanford"),
            (6, "alan", "research", "turing", "london"),
        ],
    )


@pytest.fixture(scope="session")
def tiny_catalogs():
    """Tiny-scale versions of the four benchmark databases (session cached)."""
    return {db: load_database(db, "tiny") for db in ("pte", "ptc", "mimic3", "tpch")}


@pytest.fixture(scope="session")
def tiny_mimic(tiny_catalogs):
    """Tiny-scale MIMIC-like catalogue."""
    return tiny_catalogs["mimic3"]
