"""Tests for :mod:`repro.relational.predicates`."""

import pytest

from repro.relational.predicates import (
    And,
    AttributeComparison,
    Comparison,
    InSet,
    IsNull,
    Not,
    Or,
    PredicateError,
    TruePredicate,
    conjunction,
    eq,
    ge,
    gt,
    le,
    lt,
    ne,
)

ROW = {"a": 5, "b": "x", "c": None}


class TestComparison:
    def test_eq(self):
        assert eq("a", 5).evaluate(ROW)
        assert not eq("a", 6).evaluate(ROW)

    def test_ne(self):
        assert ne("a", 6).evaluate(ROW)

    def test_orderings(self):
        assert lt("a", 6).evaluate(ROW)
        assert le("a", 5).evaluate(ROW)
        assert gt("a", 4).evaluate(ROW)
        assert ge("a", 5).evaluate(ROW)

    def test_null_never_satisfies_ordering(self):
        assert not gt("c", 1).evaluate(ROW)

    def test_null_equality_with_none(self):
        assert eq("c", None).evaluate(ROW)
        assert not eq("a", None).evaluate(ROW)

    def test_null_inequality(self):
        assert ne("c", 1).evaluate(ROW)

    def test_incomparable_types_are_false(self):
        assert not gt("b", 3).evaluate(ROW)

    def test_unknown_operator_rejected(self):
        with pytest.raises(PredicateError):
            Comparison("a", "~", 1)

    def test_unknown_attribute_raises(self):
        with pytest.raises(PredicateError):
            eq("z", 1).evaluate(ROW)

    def test_attributes_and_describe(self):
        predicate = eq("a", 5)
        assert predicate.attributes() == {"a"}
        assert "a == 5" in predicate.describe()


class TestAttributeComparison:
    def test_compare_two_attributes(self):
        assert AttributeComparison("a", ">", "a").evaluate(ROW) is False
        assert AttributeComparison("a", "==", "a").evaluate(ROW)

    def test_null_handling(self):
        assert AttributeComparison("c", "==", "c").evaluate(ROW)
        assert not AttributeComparison("a", "==", "c").evaluate(ROW)

    def test_unknown_operator(self):
        with pytest.raises(PredicateError):
            AttributeComparison("a", "!", "b")

    def test_attributes(self):
        assert AttributeComparison("a", "<", "b").attributes() == {"a", "b"}


class TestCompositePredicates:
    def test_and(self):
        assert (eq("a", 5) & eq("b", "x")).evaluate(ROW)
        assert not (eq("a", 5) & eq("b", "y")).evaluate(ROW)

    def test_or(self):
        assert (eq("a", 0) | eq("b", "x")).evaluate(ROW)

    def test_not(self):
        assert (~eq("a", 0)).evaluate(ROW)

    def test_attributes_union(self):
        predicate = And(eq("a", 1), Or(eq("b", 2), Not(eq("c", 3))))
        assert predicate.attributes() == {"a", "b", "c"}

    def test_describe_nested(self):
        text = (eq("a", 1) & ~eq("b", 2)).describe()
        assert "AND" in text and "NOT" in text

    def test_true_predicate(self):
        assert TruePredicate().evaluate({})
        assert TruePredicate().attributes() == frozenset()

    def test_conjunction_of_none_is_true(self):
        assert conjunction([]).evaluate(ROW)

    def test_conjunction_combines(self):
        assert conjunction([eq("a", 5), eq("b", "x")]).evaluate(ROW)
        assert not conjunction([eq("a", 5), eq("b", "y")]).evaluate(ROW)


class TestInSetAndIsNull:
    def test_in_set(self):
        assert InSet("a", {4, 5}).evaluate(ROW)
        assert not InSet("a", {1}).evaluate(ROW)

    def test_in_set_describe(self):
        assert "IN" in InSet("a", {1, 2}).describe()

    def test_is_null(self):
        assert IsNull("c").evaluate(ROW)
        assert not IsNull("a").evaluate(ROW)

    def test_is_not_null(self):
        assert IsNull("a", negated=True).evaluate(ROW)
        assert "NOT" in IsNull("a", negated=True).describe()
