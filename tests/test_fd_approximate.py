"""Tests for approximate FDs (the raw material of upstaged FDs)."""

import pytest

from repro.fd import FD, ApproximateFD, approximate_fds, g3_error, holds_approximately
from repro.fd.approximate import upstageable_fds
from repro.relational.algebra import equi_join
from repro.relational.relation import Relation


@pytest.fixture()
def relation() -> Relation:
    # flag -> code holds except for one violating row (the last one).
    return Relation(
        "r",
        ("rid", "flag", "code"),
        [(1, 0, "a"), (2, 0, "a"), (3, 1, "b"), (4, 1, "b"), (5, 1, "c")],
    )


class TestG3:
    def test_exact_fd_has_zero_error(self, relation):
        assert g3_error(relation, FD(("rid",), "flag")) == 0.0

    def test_violated_fd_error(self, relation):
        assert g3_error(relation, FD(("flag",), "code")) == pytest.approx(1 / 5)

    def test_holds_approximately_threshold(self, relation):
        assert holds_approximately(relation, FD(("flag",), "code"), threshold=0.25)
        assert not holds_approximately(relation, FD(("flag",), "code"), threshold=0.1)

    def test_approximate_fd_wrapper(self):
        afd = ApproximateFD(FD(("a",), "b"), 0.05)
        assert not afd.is_exact()
        assert afd.is_exact(tolerance=0.1)
        assert "g3" in str(afd)


class TestEnumeration:
    def test_approximate_fds_exclude_exact(self, relation):
        results = approximate_fds(relation, threshold=0.3, max_lhs=1)
        assert all(afd.error > 0 for afd in results)
        assert any(afd.dependency == FD(("flag",), "code") for afd in results)

    def test_threshold_must_be_positive(self, relation):
        with pytest.raises(ValueError):
            approximate_fds(relation, threshold=0.0)

    def test_attribute_restriction(self, relation):
        results = approximate_fds(relation, threshold=0.5, max_lhs=1, attributes=["flag", "code"])
        assert all(afd.dependency.attributes <= {"flag", "code"} for afd in results)

    def test_upstageable_fds_found_through_semi_join(self, relation):
        # The violating row (rid=5) has no counterpart in `other`, so the
        # AFD flag -> code becomes exact on the reduced instance.
        other = Relation("other", ("rid", "extra"), [(1, "x"), (2, "x"), (3, "x"), (4, "x")])
        reduced = equi_join(relation, other, ["rid"])
        upstaged = list(upstageable_fds(relation, reduced, threshold=0.3, max_lhs=1))
        assert any(afd.dependency == FD(("flag",), "code") for afd in upstaged)
