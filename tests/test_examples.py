"""The example scripts must run end-to-end (they double as integration tests)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_directory_has_at_least_three_scripts():
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs(script, capsys, monkeypatch):
    # The TPC-H example runs several discovery baselines; keep runtime modest
    # by monkeypatching its scale through the dataset registry default.
    monkeypatch.setattr(sys, "argv", [str(script)])
    runpy.run_path(str(script), run_name="__main__")
    output = capsys.readouterr().out
    assert output.strip(), f"{script.name} produced no output"
