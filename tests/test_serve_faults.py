"""Chaos suite: the serving stack under deterministic fault injection.

``repro.serve.faults`` turns worker kills, execution delays, pipe drops and
transient errors into *replayable* inputs: every decision is a pure function
of ``(seed, rule, site, arrival)``.  On top of it this file pins the PR's
fault-tolerance contracts —

* infra failures (killed worker, broken pipe, injected transient fault)
  retry with capped exponential backoff + deterministic jitter up to
  ``max_attempts``; application failures never retry;
* ``deadline_ms`` bounds queue wait *and* execution, producing the distinct
  ``deadline_exceeded`` terminal state (the watchdog kills overrunning
  process workers; thread jobs finish cooperatively, result discarded);
* a crash-looping process executor exhausts its restart budget, turns
  *degraded* (503 on ``/healthz``) and can fall back to inline execution;
* under a seeded kill/delay/drop storm every job reaches a terminal state,
  no worker leaks, the server drains within its deadline, and every job
  that *did* finish — including retried ones — carries artefacts
  byte-identical to a fault-free run;
* SIGTERM drains the CLI server gracefully within the drain deadline.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import signal
import subprocess
import sys
import time
from functools import partial
from pathlib import Path

import pytest

from repro.config import ServeConfig
from repro.relational.relation import Relation
from repro.serve import (
    DEADLINE_EXCEEDED,
    DONE,
    FAILED,
    FAILURE_APPLICATION,
    FAILURE_INFRA,
    FaultPlan,
    FaultRule,
    FaultSpecError,
    HttpFrontend,
    InjectedFault,
    JobQueue,
    JobRequest,
    ProcessExecutor,
    RemoteJobError,
    RestartSupervisor,
    Server,
    ThreadExecutor,
    WorkerCrashed,
    classify_failure,
    execute_request,
    relation_to_payload,
    retry_backoff,
)
from repro.serve.faults import SITE_THREAD_RUN
from repro.session import Session

pytestmark = pytest.mark.slow

_SRC = Path(__file__).resolve().parent.parent / "src"

#: Generous bound for waits that should complete almost instantly.
WAIT = 30.0

#: The CI chaos matrix narrows the storm to one executor × one seed per leg
#: (REPRO_SERVE_EXECUTOR / REPRO_CHAOS_SEED); locally the full grid runs.
_ENV_EXECUTOR = os.environ.get("REPRO_SERVE_EXECUTOR", "")
STORM_EXECUTORS = (
    [_ENV_EXECUTOR] if _ENV_EXECUTOR in ("thread", "process") else ["thread", "process"]
)
_ENV_SEED = os.environ.get("REPRO_CHAOS_SEED", "")
STORM_SEEDS = [int(_ENV_SEED)] if _ENV_SEED.isdigit() else [3, 17, 29]


def make_relation(name: str = "t", n_rows: int = 60, salt: int = 0) -> Relation:
    rows = [(i % 6, (i % 6) * 2, (i + salt) % 4, f"v{(i + salt) % 3}") for i in range(n_rows)]
    return Relation(name, ("a", "b", "c", "d"), rows)


def job_payload(tenant: str, kind: str, relation: Relation, params: dict) -> dict:
    return {
        "schema": "repro/job-request-v1",
        "tenant": tenant,
        "kind": kind,
        "relation": relation_to_payload(relation),
        "params": params,
        "overrides": {},
    }


def storm_stream(tenants: int = 4, jobs_per_tenant: int = 13) -> list[dict]:
    """A deterministic multi-tenant job stream (≥ 50 jobs by default)."""
    payloads = []
    kinds = ("discover", "validate", "profile")
    for t in range(tenants):
        relation = make_relation(name=f"r{t}", n_rows=30 + 10 * t, salt=t)
        for j in range(jobs_per_tenant):
            kind = kinds[(t + j) % len(kinds)]
            if kind == "discover":
                params = {"algorithm": ("tane", "fun")[j % 2], "max_lhs_size": 2}
            elif kind == "validate":
                params = {"fds": ["a -> b", "c -> d", [["a", "c"], "d"]]}
            else:
                params = {"threshold": (0.2, 0.5)[j % 2], "max_lhs": 2}
            payloads.append(job_payload(f"tenant-{t}", kind, relation, params))
    return payloads


class TestFaultSpec:
    def test_spec_round_trip(self):
        plan = FaultPlan.from_spec(
            "seed=42;process.kill:kill:p=0.1;queue.execute:delay:ms=20:p=0.3:times=5:after=2"
        )
        assert plan.seed == 42
        assert plan.rules == (
            FaultRule(site="process.kill", kind="kill", probability=0.1),
            FaultRule(
                site="queue.execute", kind="delay", probability=0.3, delay_ms=20, times=5, after=2
            ),
        )

    def test_empty_specs_disable_injection(self):
        assert FaultPlan.from_spec(None) is None
        assert FaultPlan.from_spec("") is None
        assert FaultPlan.from_spec("  ;  ") is None
        assert FaultPlan.from_env({}) is None
        assert FaultPlan.from_env({"REPRO_FAULTS": "thread.run:error"}) is not None

    @pytest.mark.parametrize(
        "spec, message",
        [
            ("seed=x;thread.run:error", "invalid fault seed"),
            ("thread.run", "site:kind"),
            ("thread.run:explode", "unknown fault kind"),
            ("warp.core:error", "matches no known site"),
            ("thread.run:error:p=2", "probability"),
            ("thread.run:delay:ms=-1", "delay_ms"),
            ("thread.run:error:times=0", "times"),
            ("thread.run:error:zzz=1", "unknown fault rule option"),
            ("thread.run:error:p", "key=value"),
        ],
    )
    def test_malformed_specs_rejected(self, spec, message):
        with pytest.raises(FaultSpecError, match=message):
            FaultPlan.from_spec(spec)

    def test_decisions_are_deterministic_and_thread_order_independent(self):
        """The n-th arrival fires identically however arrivals interleave."""

        def verdicts(plan: FaultPlan, n: int) -> list[bool]:
            out = []
            for _ in range(n):
                try:
                    plan.fire(SITE_THREAD_RUN)
                    out.append(False)
                except InjectedFault:
                    out.append(True)
            return out

        first = verdicts(FaultPlan.from_spec("seed=7;thread.run:error:p=0.4"), 64)
        second = verdicts(FaultPlan.from_spec("seed=7;thread.run:error:p=0.4"), 64)
        other_seed = verdicts(FaultPlan.from_spec("seed=8;thread.run:error:p=0.4"), 64)
        assert first == second
        assert first != other_seed
        assert 5 < sum(first) < 60  # p=0.4 over 64 arrivals: not degenerate

    def test_times_cap_and_after_skip(self):
        plan = FaultPlan.from_spec("thread.run:error:times=2:after=1")
        fired = 0
        for _ in range(10):
            try:
                plan.fire(SITE_THREAD_RUN)
            except InjectedFault:
                fired += 1
        assert fired == 2  # capped by times=2
        stats = plan.stats()
        assert stats["arrivals"][SITE_THREAD_RUN] == 10
        assert stats["fired"]["thread.run:error"] == 2

    def test_kill_rule_invokes_callback_and_glob_sites_match(self):
        plan = FaultPlan.from_spec("process.*:kill")
        killed = []
        plan.fire("process.kill", on_kill=lambda: killed.append(True))
        assert killed == [True]
        plan.fire("process.kill")  # no callback offered: silently skipped
        plan.fire(SITE_THREAD_RUN)  # unmatched site: no effect

    def test_drop_raises_connection_reset(self):
        plan = FaultPlan.from_spec("thread.run:drop")
        with pytest.raises(ConnectionResetError, match="injected pipe drop"):
            plan.fire(SITE_THREAD_RUN)

    def test_delay_sleeps(self):
        plan = FaultPlan.from_spec("thread.run:delay:ms=30")
        started = time.monotonic()
        plan.fire(SITE_THREAD_RUN)
        assert time.monotonic() - started >= 0.025


class TestFailureClassification:
    def test_infra_vs_application(self):
        assert classify_failure(WorkerCrashed("killed")) == FAILURE_INFRA
        assert classify_failure(InjectedFault("flaky")) == FAILURE_INFRA
        assert classify_failure(ConnectionResetError("drop")) == FAILURE_INFRA
        assert classify_failure(EOFError()) == FAILURE_INFRA
        assert classify_failure(RemoteJobError("ValueError: bad params")) == FAILURE_APPLICATION
        assert classify_failure(ValueError("bad params")) == FAILURE_APPLICATION

    def test_backoff_is_deterministic_capped_and_jittered(self):
        first = [retry_backoff("job-1", n, base=0.05, cap=2.0) for n in range(1, 12)]
        again = [retry_backoff("job-1", n, base=0.05, cap=2.0) for n in range(1, 12)]
        other = [retry_backoff("job-2", n, base=0.05, cap=2.0) for n in range(1, 12)]
        assert first == again  # pure in (job_id, attempt)
        assert first != other  # jitter decorrelates jobs
        for attempt, delay in enumerate(first, start=1):
            envelope = min(2.0, 0.05 * 2 ** (attempt - 1))
            assert envelope * 0.5 <= delay <= envelope
        assert max(first) <= 2.0


class TestRetries:
    def test_transient_infra_failures_retry_to_success(self):
        plan = FaultPlan.from_spec("seed=1;queue.execute:error:times=2")
        queue = JobQueue(
            workers=1,
            executor=ThreadExecutor(),
            max_attempts=3,
            retry_backoff_base=0.01,
            retry_backoff_cap=0.05,
            faults=plan,
        )
        try:
            job = queue.submit("acme", lambda: "ok")
            assert job.wait(WAIT)
            assert job.status == DONE
            assert job.result == "ok"
            assert job.attempts == 3  # two injected failures, then success
            assert job.failure_class is None
            assert queue.stats()["retries"] == 2
        finally:
            queue.close()

    def test_attempts_exhausted_fails_with_infra_class(self):
        plan = FaultPlan.from_spec("queue.execute:error")  # always fires
        queue = JobQueue(
            workers=1,
            executor=ThreadExecutor(),
            max_attempts=2,
            retry_backoff_base=0.01,
            retry_backoff_cap=0.05,
            faults=plan,
        )
        try:
            job = queue.submit("acme", lambda: "never")
            assert job.wait(WAIT)
            assert job.status == FAILED
            assert job.failure_class == FAILURE_INFRA
            assert job.attempts == 2
            assert "InjectedFault" in job.error
        finally:
            queue.close()

    def test_application_failures_never_retry(self):
        queue = JobQueue(workers=1, executor=ThreadExecutor(), max_attempts=5)
        try:

            def explode():
                raise ValueError("bad params")

            job = queue.submit("acme", explode)
            assert job.wait(WAIT)
            assert job.status == FAILED
            assert job.attempts == 1
            assert job.failure_class == FAILURE_APPLICATION
            assert queue.stats()["retries"] == 0
        finally:
            queue.close()

    def test_killed_process_worker_is_retried_transparently(self):
        """The whole point of infra retries: a SIGKILLed worker costs the
        client nothing — the job reruns on the respawned worker and its
        payload is byte-identical to an undisturbed run."""
        executor = ProcessExecutor()
        queue = JobQueue(workers=1, executor=executor, max_attempts=3, retry_backoff_base=0.01)
        try:
            payload = job_payload("acme", "discover", make_relation(), {"algorithm": "tane"})
            job = queue.submit("acme", partial(time.sleep, 2.0))
            deadline = time.monotonic() + WAIT
            while job.status == "queued":
                assert time.monotonic() < deadline
                time.sleep(0.005)
            os.kill(executor.worker_pids()[0], signal.SIGKILL)
            # The sleeper was claimed before the kill: attempt 1 crashes,
            # attempt 2 runs on the respawned worker.
            assert job.wait(WAIT)
            assert job.status == DONE
            assert job.attempts == 2
            assert queue.stats()["retries"] == 1
            # And a real engine job retried the same way stays byte-identical.
            redo = queue.submit("acme", payload)
            assert redo.wait(WAIT)
            assert redo.status == DONE
            bare = Session().discover(make_relation(), algorithm="tane")
            assert redo.result.payload["artifacts"] == bare.payload["artifacts"]
        finally:
            queue.close()


class TestDeadlines:
    def test_deadline_exceeded_while_queued(self):
        queue = JobQueue(workers=1, executor=ThreadExecutor())
        try:
            import threading

            gate = threading.Event()
            blocker = queue.submit("acme", lambda: gate.wait(WAIT))
            doomed = queue.submit("other", lambda: "never", deadline_ms=50)
            assert doomed.wait(WAIT)
            assert doomed.status == DEADLINE_EXCEEDED
            assert "while queued" in doomed.error
            assert queue.stats()["deadline_exceeded"] == 1
            gate.set()
            assert blocker.wait(WAIT)
        finally:
            queue.close()

    def test_thread_executor_overrun_is_cooperative(self):
        """Thread slots cannot be preempted: the job turns terminal at its
        deadline (waiters release immediately) and the late result is
        discarded when the callable eventually returns."""
        queue = JobQueue(workers=1, executor=ThreadExecutor())
        try:
            started = time.monotonic()
            job = queue.submit("acme", partial(time.sleep, 1.0), deadline_ms=100)
            assert job.wait(WAIT)
            waited = time.monotonic() - started
            assert job.status == DEADLINE_EXCEEDED
            assert "during execution" in job.error
            assert waited < 0.9  # released at the deadline, not after the sleep
            assert job.result is None
        finally:
            queue.close()

    def test_process_executor_overrun_is_killed_and_slot_respawns(self):
        executor = ProcessExecutor()
        queue = JobQueue(workers=1, executor=executor)
        try:
            started = time.monotonic()
            job = queue.submit("acme", partial(time.sleep, WAIT), deadline_ms=150)
            assert job.wait(WAIT)
            assert job.status == DEADLINE_EXCEEDED
            assert time.monotonic() - started < 10.0  # not the sleeper's 30 s
            # The killed worker respawns and the slot keeps serving.
            follow_up = queue.submit("acme", partial(os.getpid))
            assert follow_up.wait(WAIT)
            assert follow_up.status == DONE
            assert executor.stats()["respawns"] >= 1
        finally:
            queue.close()

    def test_deadline_rejects_invalid_values(self):
        queue = JobQueue(workers=1, executor=ThreadExecutor())
        try:
            with pytest.raises(ValueError, match="deadline_ms"):
                queue.submit("acme", lambda: None, deadline_ms=0)
        finally:
            queue.close()

    def test_deadline_on_the_wire(self):
        """`deadline_ms` rides job-request-v1 end to end and the status
        payload reports the distinct terminal state plus attempts."""
        with Server(workers=1, executor="thread") as server:
            payload = job_payload("acme", "discover", make_relation(), {"algorithm": "tane"})
            payload["deadline_ms"] = 25_000
            ticket = server.submit(payload)
            result = server.result(ticket.job_id, timeout=WAIT)
            status = server.status(ticket.job_id)
            assert status["status"] == DONE
            assert status["deadline_ms"] == 25_000
            assert status["attempts"] == 1
            assert status["failure_class"] is None
            bare = Session().discover(make_relation(), algorithm="tane")
            assert result.payload["artifacts"] == bare.payload["artifacts"]


class TestSupervision:
    def test_rolling_window_budget(self):
        supervisor = RestartSupervisor(budget=2, window=60.0)
        assert not supervisor.degraded()
        for _ in range(3):
            supervisor.record()
        assert supervisor.degraded()
        snapshot = supervisor.snapshot()
        assert snapshot["degraded"] is True
        assert snapshot["respawns_in_window"] == 3
        assert snapshot["restart_budget"] == 2

    def test_window_expiry_self_heals(self):
        supervisor = RestartSupervisor(budget=1, window=0.05)
        supervisor.record()
        supervisor.record()
        assert supervisor.degraded()
        deadline = time.monotonic() + WAIT
        while supervisor.degraded():
            assert time.monotonic() < deadline
            time.sleep(0.01)
        assert supervisor.snapshot()["respawns_in_window"] == 0
        assert supervisor.snapshot()["respawns_total"] == 2

    def test_crash_loop_degrades_healthz_to_503(self):
        """A kill storm beyond the restart budget flips /healthz to 503 with
        the live worker table in the payload."""
        plan = FaultPlan.from_spec("process.kill:kill")  # kill on every send
        server = Server(
            workers=1,
            executor="process",
            max_attempts=1,
            restart_budget=1,
            restart_window=300.0,
            faults=plan,
        )
        frontend = HttpFrontend(server, port=0).start()
        try:
            host, port = frontend.address
            for _ in range(3):  # three crashes > budget of 1
                job = server.submit(
                    job_payload("acme", "discover", make_relation(), {"algorithm": "tane"})
                )
                with pytest.raises(RuntimeError):
                    server.result(job.job_id, timeout=WAIT)
            import http.client

            conn = http.client.HTTPConnection(host, port, timeout=WAIT)
            try:
                conn.request("GET", "/healthz")
                response = conn.getresponse()
                body = json.loads(response.read())
            finally:
                conn.close()
            assert response.status == 503
            assert body["status"] == "degraded"
            assert body["degraded"] is True
            assert body["executor"]["respawns"] >= 2
            assert isinstance(body["executor"]["slots"], list)
            assert server.stats()["executor"]["degraded"] is True
        finally:
            frontend.stop()
            server.close()

    def test_degraded_fallback_runs_jobs_inline(self):
        """With the fallback armed, a degraded process executor keeps
        serving — inline, through the same dispatch, byte-identical."""
        plan = FaultPlan.from_spec("process.kill:kill:times=3")
        server = Server(
            workers=1,
            executor="process",
            max_attempts=1,
            restart_budget=1,
            restart_window=300.0,
            degraded_fallback=True,
            faults=plan,
        )
        try:
            payload = job_payload("acme", "discover", make_relation(), {"algorithm": "tane"})
            outcomes = []
            for _ in range(6):
                ticket = server.submit(payload)
                try:
                    result = server.result(ticket.job_id, timeout=WAIT)
                except RuntimeError:
                    outcomes.append(None)
                else:
                    outcomes.append(result)
            done = [result for result in outcomes if result is not None]
            assert done, "no job survived the kill storm"
            executor_stats = server.stats()["executor"]
            assert executor_stats["degraded"] is True
            assert executor_stats["fallback_jobs"] >= 1
            bare = Session().discover(make_relation(), algorithm="tane")
            for result in done:
                payload_out = json.loads(result) if isinstance(result, str) else result.payload
                assert payload_out["artifacts"] == bare.payload["artifacts"]
        finally:
            server.close()


class TestChaosStorm:
    """The acceptance storm: ≥ 50 jobs under seeded kills/delays/drops."""

    STORM_THREAD = (
        "seed={seed};"
        "queue.execute:error:p=0.12:times=8;"
        "queue.execute:delay:ms=5:p=0.3;"
        "thread.run:error:p=0.08:times=5"
    )
    STORM_PROCESS = (
        "seed={seed};"
        "process.kill:kill:p=0.05:times=3;"
        "queue.execute:error:p=0.1:times=6;"
        "queue.execute:delay:ms=5:p=0.3;"
        "process.recv:drop:p=0.04:times=3"
    )

    @pytest.mark.parametrize("executor", STORM_EXECUTORS)
    @pytest.mark.parametrize("seed", STORM_SEEDS)
    def test_storm_every_job_terminal_no_leaks_bytes_identical(self, executor, seed):
        payloads = storm_stream()
        assert len(payloads) >= 50
        spec = (self.STORM_THREAD if executor == "thread" else self.STORM_PROCESS).format(
            seed=seed
        )
        # Fault-free reference runs, one session per tenant (matching the
        # server's tenant isolation) — what every `done` job must equal.
        reference: dict[int, dict] = {}
        sessions: dict[str, Session] = {}
        for index, payload in enumerate(payloads):
            session = sessions.setdefault(payload["tenant"], Session())
            reference[index] = execute_request(session, JobRequest.from_payload(payload)).payload

        server = Server(
            workers=3,
            max_queue=len(payloads),
            executor=executor,
            max_attempts=3,
            restart_budget=1000,  # the storm tests retries, not degradation
            faults=spec,
        )
        tickets = []
        try:
            for payload in payloads:
                tickets.append(server.submit(payload))
            terminal = ("done", "failed", "cancelled", DEADLINE_EXCEEDED)
            deadline = time.monotonic() + 4 * WAIT
            statuses = {}
            while True:
                statuses = {t.job_id: server.status(t.job_id) for t in tickets}
                if all(s["status"] in terminal for s in statuses.values()):
                    break
                assert time.monotonic() < deadline, (
                    "storm did not settle: "
                    f"{[s['status'] for s in statuses.values()]}"
                )
                time.sleep(0.05)
            done = {
                index: statuses[ticket.job_id]
                for index, ticket in enumerate(tickets)
                if statuses[ticket.job_id]["status"] == "done"
            }
            # The storm is survivable by design (p·times caps): most jobs
            # finish, and every one that did is byte-for-byte the fault-free
            # artefact — retries never smear results.
            assert len(done) >= len(payloads) // 2
            for index, status in done.items():
                assert status["result"]["artifacts"] == reference[index]["artifacts"]
                assert status["attempts"] >= 1
            failed = [s for s in statuses.values() if s["status"] == "failed"]
            for status in failed:
                assert status["failure_class"] in (FAILURE_INFRA, FAILURE_APPLICATION)
            if executor == "process":
                assert server.stats()["executor"]["alive"] == 3  # fully healed
        finally:
            started = time.monotonic()
            server.close()
            drain = time.monotonic() - started
        assert drain < 2 * server.drain_deadline
        if executor == "process":
            # No leaked worker processes after close.
            leaked = [
                child
                for child in multiprocessing.active_children()
                if child.name.startswith("repro-serve")
            ]
            assert leaked == []

    def test_storm_replays_identically_under_one_seed(self):
        """Same seed → the fault plan fires the same rule counts."""

        def run_once() -> dict:
            plan = FaultPlan.from_spec("seed=11;queue.execute:error:p=0.2:times=4")
            queue = JobQueue(
                workers=1,
                executor=ThreadExecutor(),
                max_attempts=3,
                retry_backoff_base=0.005,
                retry_backoff_cap=0.01,
                faults=plan,
            )
            try:
                jobs = [queue.submit("acme", partial(int, "7")) for _ in range(20)]
                for job in jobs:
                    assert job.wait(WAIT)
                return {
                    "fired": plan.stats()["fired"],
                    "statuses": [job.status for job in jobs],
                    "attempts": [job.attempts for job in jobs],
                }
            finally:
                queue.close()

        assert run_once() == run_once()


class TestGracefulDrain:
    def test_sigterm_drains_within_deadline(self, tmp_path):
        """SIGTERM → the CLI stops accepting, drains and exits 0, bounded by
        --drain-deadline (not by any in-flight work)."""
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--workers",
            "2",
            "--executor",
            "thread",
            "--drain-deadline",
            "5",
        ]
        process = subprocess.Popen(
            argv,
            cwd=str(_SRC.parent),
            env={"PYTHONPATH": str(_SRC), "PATH": "/usr/bin:/bin"},
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "serving on http://" in banner, banner
            process.send_signal(signal.SIGTERM)
            started = time.monotonic()
            out, _ = process.communicate(timeout=WAIT)
            assert time.monotonic() - started < 15.0
            assert process.returncode == 0
            assert "draining" in out
            assert "drained" in out
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup on failure
                process.kill()
                process.wait(timeout=WAIT)

    def test_server_close_is_bounded_by_drain_deadline(self):
        server = Server(workers=1, executor="process", drain_deadline=0.5)
        job = server.queue.submit("acme", partial(time.sleep, WAIT))
        deadline = time.monotonic() + WAIT
        while job.status == "queued":
            assert time.monotonic() < deadline
            time.sleep(0.005)
        started = time.monotonic()
        server.close()
        assert time.monotonic() - started < 10.0  # bounded, not the job's 30 s
        assert job.status == FAILED
        assert "shutting down" in job.error


class TestConfigSurface:
    def test_serve_config_fault_fields_from_env(self):
        config = ServeConfig.from_env(
            {
                "REPRO_SERVE_MAX_ATTEMPTS": "5",
                "REPRO_SERVE_RESTART_BUDGET": "9",
                "REPRO_SERVE_RESTART_WINDOW": "12.5",
                "REPRO_SERVE_DEGRADED_FALLBACK": "1",
                "REPRO_SERVE_DRAIN_DEADLINE": "3.5",
                "REPRO_FAULTS": "thread.run:error:p=0.5",
            }
        )
        assert config.max_attempts == 5
        assert config.restart_budget == 9
        assert config.restart_window == 12.5
        assert config.degraded_fallback is True
        assert config.drain_deadline == 3.5
        assert config.faults == "thread.run:error:p=0.5"

    def test_from_env_fields_reads_only_what_was_asked(self):
        """An explicit server never trips over unrelated malformed env."""
        env = {"REPRO_SERVE_EXECUTOR": "fibers", "REPRO_SERVE_MAX_ATTEMPTS": "4"}
        values = ServeConfig.from_env_fields(["max_attempts", "drain_deadline"], env)
        assert values == {"max_attempts": 4, "drain_deadline": 10.0}

    def test_cli_parser_exposes_fault_tolerance_flags(self):
        from repro.serve.cli import build_serve_parser

        args = build_serve_parser().parse_args(
            [
                "--max-attempts",
                "4",
                "--restart-budget",
                "7",
                "--restart-window",
                "45",
                "--degraded-fallback",
                "--drain-deadline",
                "2.5",
                "--faults",
                "seed=3;thread.run:error:p=0.1",
            ]
        )
        assert args.max_attempts == 4
        assert args.restart_budget == 7
        assert args.restart_window == 45.0
        assert args.degraded_fallback is True
        assert args.drain_deadline == 2.5
        assert args.faults == "seed=3;thread.run:error:p=0.1"
