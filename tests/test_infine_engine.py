"""End-to-end tests of the InFine engine (Algorithm 1) and the straightforward baseline."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery import TANE
from repro.fd import FD, fd
from repro.infine import FDType, InFine, StraightforwardPipeline
from repro.relational.algebra import JoinKind
from repro.relational.predicates import eq, gt, ne
from repro.relational.relation import Relation
from repro.relational.view import base, join, proj, sel


class TestRunningExample:
    """The PATIENT ⋈ ADMISSION example of Fig. 1 / Section II."""

    def test_patient_base_fds_match_paper(self, patient_relation):
        fds = set(TANE().discover(patient_relation).fds.as_set())
        expected = {
            fd("dob", "dod"), fd("dob", "expire_flag"), fd("dob", "gender"),
            fd("dob", "subject_id"), fd("dod", "expire_flag"), fd("subject_id", "dob"),
            fd("subject_id", "dod"), fd("subject_id", "expire_flag"), fd("subject_id", "gender"),
        }
        # The paper lists exactly these 9 FDs for the PATIENT excerpt.
        assert expected <= fds

    def test_join_upstages_expire_flag_dod(self, clinical_catalog):
        view = join(base("patient"), base("admission"), on="subject_id")
        result = InFine().run(view, clinical_catalog)
        triple = result.provenance.triple_for(fd("expire_flag", "dod"))
        assert triple is not None
        assert triple.fd_type is FDType.UPSTAGED_LEFT

    def test_inferred_fd_diagnosis_to_dob_style(self, clinical_catalog):
        view = join(base("patient"), base("admission"), on="subject_id")
        result = InFine().run(view, clinical_catalog)
        # admittime is a key of ADMISSION, so admittime -> dob is inferable
        # through subject_id (the join attribute).
        triple = result.provenance.triple_for(fd("admittime", "dob"))
        assert triple is not None
        assert triple.fd_type is FDType.INFERRED

    def test_equivalence_with_full_view_discovery(self, clinical_catalog):
        view = join(base("patient"), base("admission"), on="subject_id")
        infine = InFine().run(view, clinical_catalog)
        reference = StraightforwardPipeline("tane").run(view, clinical_catalog)
        assert set(infine.fds.as_set()) == set(reference.fds.as_set())

    def test_every_reported_fd_holds_on_the_view(self, clinical_catalog):
        from repro.relational.partition import fd_holds

        view = join(base("patient"), base("admission"), on="subject_id")
        instance = view.evaluate(clinical_catalog)
        result = InFine().run(view, clinical_catalog)
        for triple in result.triples:
            assert fd_holds(instance, triple.dependency.lhs, triple.dependency.rhs)

    def test_provenance_types_are_consistent_with_sources(self, clinical_catalog):
        view = join(base("patient"), base("admission"), on="subject_id")
        result = InFine().run(view, clinical_catalog)
        patient_fds = set(TANE().discover(clinical_catalog["patient"]).fds.as_set())
        admission_fds = set(TANE().discover(clinical_catalog["admission"]).fds.as_set())
        for triple in result.triples:
            if triple.fd_type is FDType.BASE:
                assert triple.dependency in patient_fds | admission_fds

    def test_counts_by_step_sum_to_total(self, clinical_catalog):
        view = join(base("patient"), base("admission"), on="subject_id")
        result = InFine().run(view, clinical_catalog)
        assert sum(result.count_by_step().values()) == len(result)
        assert sum(result.count_by_type().values()) == len(result)


class TestEngineOnViewShapes:
    def test_single_base_relation_view(self, clinical_catalog):
        result = InFine().run(base("patient"), clinical_catalog)
        assert all(triple.fd_type is FDType.BASE for triple in result.triples)
        assert set(result.fds.as_set()) == set(
            TANE().discover(clinical_catalog["patient"]).fds.as_set()
        )

    def test_projection_restricts_output_attributes(self, clinical_catalog):
        view = proj(base("patient"), ["subject_id", "gender"])
        result = InFine().run(view, clinical_catalog)
        assert result.attributes == ("subject_id", "gender")
        assert all(t.dependency.attributes <= {"subject_id", "gender"} for t in result.triples)

    def test_selection_upstages_fds(self):
        catalog = {
            "r": Relation("r", ("rid", "flag", "code"),
                          [(1, 0, "a"), (2, 0, "a"), (3, 1, "b"), (4, 1, "c")]),
        }
        view = sel(base("r"), ne("code", "c"))
        result = InFine().run(view, catalog)
        triple = result.provenance.triple_for(fd("flag", "code"))
        assert triple is not None and triple.fd_type is FDType.UPSTAGED_SELECTION
        reference = StraightforwardPipeline("tane").run(view, catalog)
        assert set(result.fds.as_set()) == set(reference.fds.as_set())

    def test_selection_that_filters_nothing_keeps_base_provenance(self, clinical_catalog):
        view = sel(base("patient"), ne("gender", "X"))
        result = InFine().run(view, clinical_catalog)
        assert all(t.fd_type is FDType.BASE for t in result.triples)

    def test_empty_selection_yields_constant_fds(self, clinical_catalog):
        view = sel(base("patient"), eq("gender", "NOPE"))
        result = InFine().run(view, clinical_catalog)
        assert set(result.fds.as_set()) == {
            FD((), a) for a in clinical_catalog["patient"].attribute_names
        }

    def test_semi_join_view(self, clinical_catalog):
        view = join(base("patient"), base("admission"), on="subject_id", kind=JoinKind.LEFT_SEMI)
        result = InFine().run(view, clinical_catalog)
        reference = StraightforwardPipeline("tane").run(view, clinical_catalog)
        assert set(result.fds.as_set()) == set(reference.fds.as_set())
        assert set(result.attributes) == set(clinical_catalog["patient"].attribute_names)

    def test_dominated_base_fd_is_dropped_from_view_set(self):
        # In the base right table, (c1, c2) -> d is minimal; after the join the
        # smaller determinant c1 -> d becomes valid, so the base FD must
        # disappear from the view's minimal FD set (paper Section II).
        left = Relation("L", ("k", "c1"), [(1, "a"), (2, "b"), (3, "a")])
        right = Relation("R", ("k", "c2", "d"),
                         [(1, "x", 10), (2, "y", 20), (3, "y", 10), (4, "x", 30), (5, "y", 30)])
        catalog = {"L": left, "R": right}
        view = join(base("L"), base("R"), on="k")
        result = InFine().run(view, catalog)
        reference = StraightforwardPipeline("tane").run(view, catalog)
        assert set(result.fds.as_set()) == set(reference.fds.as_set())
        for dependency in result.fds:
            assert not any(
                other.rhs == dependency.rhs and other.lhs < dependency.lhs
                for other in result.fds
            )

    def test_max_lhs_cap_is_respected(self, clinical_catalog):
        view = join(base("patient"), base("admission"), on="subject_id")
        result = InFine(max_lhs_size=1).run(view, clinical_catalog)
        assert all(len(t.dependency.lhs) <= 1 for t in result.triples)

    def test_theorem4_ablation_changes_nothing_functionally(self, clinical_catalog):
        view = join(base("patient"), base("admission"), on="subject_id")
        with_pruning = InFine(use_theorem4=True).run(view, clinical_catalog)
        without_pruning = InFine(use_theorem4=False).run(view, clinical_catalog)
        assert set(with_pruning.fds.as_set()) == set(without_pruning.fds.as_set())

    def test_timings_and_stats_populated(self, clinical_catalog):
        view = join(base("patient"), base("admission"), on="subject_id")
        result = InFine().run(view, clinical_catalog)
        assert result.timings.total > 0
        assert result.stats.base_fd_counts["patient"] >= 9
        assert result.timings.view_pipeline <= result.timings.total


class TestStraightforwardPipeline:
    def test_provenance_recovery_classifies_base_fds(self, clinical_catalog):
        view = join(base("patient"), base("admission"), on="subject_id")
        run = StraightforwardPipeline("tane").run(view, clinical_catalog, with_provenance=True)
        base_fds = {t.dependency for t in run.provenance.by_type(FDType.BASE)}
        assert fd("subject_id", "dob") in base_fds
        assert run.comparison_seconds >= 0.0

    def test_total_seconds_is_spj_plus_discovery(self, clinical_catalog):
        view = join(base("patient"), base("admission"), on="subject_id")
        run = StraightforwardPipeline("hyfd").run(view, clinical_catalog, with_provenance=False)
        assert run.total_seconds == pytest.approx(run.spj_seconds + run.discovery_seconds)
        assert run.view_rows == 7
        assert len(run.provenance) == 0

    def test_accepts_algorithm_instance(self, clinical_catalog):
        view = base("patient")
        run = StraightforwardPipeline(TANE()).run(view, clinical_catalog, with_provenance=False)
        assert run.algorithm == "tane"

    def test_reuses_precomputed_base_results(self, clinical_catalog):
        view = join(base("patient"), base("admission"), on="subject_id")
        pipeline = StraightforwardPipeline("tane")
        first = pipeline.run(view, clinical_catalog, with_provenance=True)
        second = pipeline.run(view, clinical_catalog, with_provenance=True,
                              base_results=first.base_results)
        assert set(second.fds.as_set()) == set(first.fds.as_set())


def _random_catalog(rng: random.Random):
    n_left, n_right = rng.randint(2, 15), rng.randint(2, 15)
    dom = rng.randint(1, 4)
    left_attrs = ["k"] + [f"l{i}" for i in range(rng.randint(1, 2))]
    right_attrs = ["k"] + [f"r{i}" for i in range(rng.randint(1, 2))]
    left = Relation("L", left_attrs,
                    [tuple(rng.randint(0, dom) for _ in left_attrs) for _ in range(n_left)])
    right = Relation("R", right_attrs,
                     [tuple(rng.randint(0, dom) for _ in right_attrs) for _ in range(n_right)])
    return {"L": left, "R": right}


@pytest.mark.parametrize("seed", range(8))
def test_randomised_equivalence_inner_join(seed):
    rng = random.Random(seed)
    catalog = _random_catalog(rng)
    view = join(base("L"), base("R"), on="k")
    infine = InFine().run(view, catalog)
    reference = StraightforwardPipeline("tane").run(view, catalog, with_provenance=False)
    assert set(infine.fds.as_set()) == set(reference.fds.as_set())


@pytest.mark.parametrize("kind", [JoinKind.INNER, JoinKind.LEFT_SEMI, JoinKind.RIGHT_SEMI])
def test_randomised_equivalence_other_join_kinds(kind):
    rng = random.Random(hash(kind.value) % 1000)
    catalog = _random_catalog(rng)
    view = join(base("L"), base("R"), on="k", kind=kind)
    infine = InFine().run(view, catalog)
    reference = StraightforwardPipeline("tane").run(view, catalog, with_provenance=False)
    assert set(infine.fds.as_set()) == set(reference.fds.as_set())


@settings(max_examples=20, deadline=None)
@given(
    left_rows=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 2)), max_size=12),
    right_rows=st.lists(st.tuples(st.integers(0, 3), st.integers(0, 2)), max_size=12),
    selection_threshold=st.integers(0, 2),
)
def test_property_infine_equals_full_view_discovery(left_rows, right_rows, selection_threshold):
    catalog = {
        "L": Relation("L", ("k", "a"), left_rows),
        "R": Relation("R", ("k", "b"), right_rows),
    }
    view = sel(join(base("L"), base("R"), on="k"), gt("a", selection_threshold))
    infine = InFine().run(view, catalog)
    reference = StraightforwardPipeline("tane").run(view, catalog, with_provenance=False)
    assert set(infine.fds.as_set()) == set(reference.fds.as_set())
