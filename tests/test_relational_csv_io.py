"""Tests for CSV import/export of relations."""

import pytest

from repro.relational.csv_io import (
    load_catalog,
    load_csv,
    save_catalog,
    save_csv,
    schema_from_types,
)
from repro.relational.relation import NULL, Relation


@pytest.fixture()
def relation() -> Relation:
    return Relation("people", ("pid", "name", "score"), [(1, "ada", 3.5), (2, "bob", NULL)])


class TestRoundTrip:
    def test_save_and_load(self, relation, tmp_path):
        path = save_csv(relation, tmp_path / "people.csv")
        loaded = load_csv(path)
        assert loaded.name == "people"
        assert loaded.attribute_names == relation.attribute_names
        assert loaded.rows[0] == (1, "ada", 3.5)

    def test_null_round_trip(self, relation, tmp_path):
        loaded = load_csv(save_csv(relation, tmp_path / "p.csv"))
        assert loaded.rows[1][2] is NULL

    def test_type_inference_can_be_disabled(self, relation, tmp_path):
        path = save_csv(relation, tmp_path / "p.csv")
        loaded = load_csv(path, infer_types=False)
        assert loaded.rows[0][0] == "1"

    def test_explicit_schema_parsing(self, relation, tmp_path):
        path = save_csv(relation, tmp_path / "p.csv")
        schema = schema_from_types(["pid", "name", "score"], ["integer", "string", "float"])
        loaded = load_csv(path, schema=schema)
        assert loaded.rows[0] == (1, "ada", 3.5)

    def test_schema_header_mismatch(self, relation, tmp_path):
        path = save_csv(relation, tmp_path / "p.csv")
        schema = schema_from_types(["x", "y", "z"], ["string", "string", "string"])
        with pytest.raises(ValueError):
            load_csv(path, schema=schema)

    def test_empty_file_rejected(self, tmp_path):
        empty = tmp_path / "empty.csv"
        empty.write_text("")
        with pytest.raises(ValueError):
            load_csv(empty)

    def test_custom_name(self, relation, tmp_path):
        path = save_csv(relation, tmp_path / "p.csv")
        assert load_csv(path, name="other").name == "other"


class TestCatalogIO:
    def test_save_and_load_catalog(self, relation, tmp_path):
        catalog = {"people": relation, "copy": relation.with_name("copy")}
        paths = save_catalog(catalog, tmp_path / "db")
        assert len(paths) == 2
        loaded = load_catalog(tmp_path / "db")
        assert set(loaded) == {"people", "copy"}
        assert len(loaded["people"]) == 2

    def test_load_catalog_by_names(self, relation, tmp_path):
        save_catalog({"people": relation}, tmp_path)
        loaded = load_catalog(tmp_path, names=["people"])
        assert list(loaded) == ["people"]

    def test_boolean_parsing(self, tmp_path):
        path = tmp_path / "flags.csv"
        path.write_text("fid,flag\n1,true\n2,no\n")
        schema = schema_from_types(["fid", "flag"], ["integer", "boolean"])
        loaded = load_csv(path, schema=schema)
        assert loaded.rows == ((1, True), (2, False))

    def test_schema_from_types_length_mismatch(self):
        with pytest.raises(ValueError):
            schema_from_types(["a"], ["integer", "string"])
