"""Tests for the synthetic dataset generators, the view workload and the registry."""

import pytest

from repro.datasets import (
    DATABASES,
    SCALE_PRESETS,
    DatasetProfile,
    generate_mimic,
    generate_ptc,
    generate_pte,
    generate_tpch,
    load_all,
    load_database,
    paper_views,
    resolve_scale,
    view_by_key,
    views_for,
)
from repro.datasets.generator import SyntheticTableBuilder, pick_foreign_keys
from repro.discovery import TANE
from repro.fd import fd
from repro.relational.partition import fd_holds
from repro.relational.view import validate_view


class TestGeneratorHelpers:
    def test_profile_rows_scaling(self):
        profile = DatasetProfile("x", scale=0.5)
        assert profile.rows(100) == 50
        assert profile.rows(2, minimum=5) == 5

    def test_pick_foreign_keys_coverage(self):
        import random

        rng = random.Random(0)
        values = pick_foreign_keys(rng, ["a", "b", "c"], 200, coverage=0.8,
                                   dangling_pool=["zz"], zipf=1.0)
        assert len(values) == 200
        dangling = sum(1 for v in values if v == "zz")
        assert 10 < dangling < 80  # roughly 20 %

    def test_builder_planted_fd(self):
        import random

        builder = SyntheticTableBuilder("t", random.Random(1))
        builder.sequence("tid").categorical("grp", ["a", "b"]).derived(
            "grp_code", "grp", {"a": 1, "b": 2}.get
        ).integer("noise", 0, 5).constant("fixed", "x")
        relation = builder.build(50)
        assert len(relation) == 50
        assert fd_holds(relation, ["grp"], "grp_code")
        assert relation.distinct_count("tid") == 50
        assert relation.distinct_count("fixed") == 1

    def test_builder_unknown_source_column(self):
        import random

        builder = SyntheticTableBuilder("t", random.Random(1))
        with pytest.raises(KeyError):
            builder.derived("y", "missing", lambda v: v)


@pytest.mark.parametrize(
    "generator,tables",
    [
        (generate_mimic, {"patients", "admissions", "diagnoses_icd", "d_icd_diagnoses"}),
        (generate_pte, {"drug", "active", "atm", "bond", "atm2"}),
        (generate_ptc, {"molecule", "atom", "bond", "connected"}),
        (generate_tpch, {"region", "nation", "supplier", "customer", "part", "partsupp",
                         "orders", "lineitem"}),
    ],
)
class TestGenerators:
    def test_expected_tables_present(self, generator, tables):
        catalog = generator(DatasetProfile("x", scale=0.08))
        assert set(catalog) == tables

    def test_deterministic_for_fixed_seed(self, generator, tables):
        first = generator(DatasetProfile("x", scale=0.08, seed=3))
        second = generator(DatasetProfile("x", scale=0.08, seed=3))
        for name in tables:
            assert first[name] == second[name]

    def test_different_seeds_differ(self, generator, tables):
        first = generator(DatasetProfile("x", scale=0.08, seed=3))
        second = generator(DatasetProfile("x", scale=0.08, seed=4))
        assert any(first[name] != second[name] for name in tables)

    def test_scale_changes_sizes(self, generator, tables):
        small = generator(DatasetProfile("x", scale=0.08))
        larger = generator(DatasetProfile("x", scale=0.3))
        assert sum(len(r) for r in larger.values()) > sum(len(r) for r in small.values())


class TestMimicStructure:
    def test_subject_id_is_key_of_patients(self, tiny_mimic):
        patients = tiny_mimic["patients"]
        assert patients.distinct_count("subject_id") == len(patients)

    def test_planted_fds_hold(self, tiny_mimic):
        patients = tiny_mimic["patients"]
        assert fd_holds(patients, ["subject_id"], "gender")
        assert fd_holds(patients, ["dod"], "expire_flag")
        admissions = tiny_mimic["admissions"]
        assert fd_holds(admissions, ["subject_id"], "insurance")
        assert fd_holds(admissions, ["admittime"], "diagnosis")

    def test_expire_flag_dod_is_approximate_then_upstaged(self, tiny_mimic):
        from repro.relational.algebra import JoinKind, equi_join

        patients, admissions = tiny_mimic["patients"], tiny_mimic["admissions"]
        assert not fd_holds(patients, ["expire_flag"], "dod")
        reduced = equi_join(patients, admissions, ["subject_id"], kind=JoinKind.LEFT_SEMI)
        assert fd_holds(reduced, ["expire_flag"], "dod")

    def test_joins_drop_tuples_on_both_sides(self, tiny_mimic):
        from repro.relational.algebra import JoinKind, equi_join

        patients, admissions = tiny_mimic["patients"], tiny_mimic["admissions"]
        left_semi = equi_join(patients, admissions, ["subject_id"], kind=JoinKind.LEFT_SEMI)
        right_semi = equi_join(patients, admissions, ["subject_id"], kind=JoinKind.RIGHT_SEMI)
        assert len(left_semi) < len(patients)
        assert len(right_semi) < len(admissions)


class TestViewsAndRegistry:
    def test_sixteen_views_in_paper_order(self):
        views = paper_views()
        assert len(views) == 16
        assert [v.database for v in views[:4]] == ["pte"] * 4
        assert [v.database for v in views[-4:]] == ["tpch"] * 4

    def test_views_for_each_database(self):
        for database in DATABASES:
            cases = views_for(database)
            assert len(cases) == 4
            assert all(case.database == database for case in cases)

    def test_views_for_unknown_database(self):
        with pytest.raises(KeyError):
            views_for("oracle")

    def test_view_by_key(self):
        assert view_by_key("tpch/q3").database == "tpch"
        with pytest.raises(KeyError):
            view_by_key("nope/nope")

    def test_every_view_validates_against_its_catalog(self, tiny_catalogs):
        for case in paper_views():
            attributes = validate_view(case.spec, tiny_catalogs[case.database])
            assert len(attributes) >= 2

    def test_every_view_evaluates_non_empty(self, tiny_catalogs):
        for case in paper_views():
            instance = case.spec.evaluate(tiny_catalogs[case.database])
            assert len(instance) > 0, case.key

    def test_resolve_scale(self):
        assert resolve_scale("tiny") == SCALE_PRESETS["tiny"]
        assert resolve_scale(2.0) == 2.0
        with pytest.raises(KeyError):
            resolve_scale("huge")
        with pytest.raises(ValueError):
            resolve_scale(-1)

    def test_load_database_unknown(self):
        with pytest.raises(KeyError):
            load_database("oracle")

    def test_load_all_contains_every_database(self):
        catalogs = load_all("tiny")
        assert set(catalogs) == set(DATABASES)

    def test_patients_fd_count_matches_paper_order_of_magnitude(self, tiny_mimic):
        # The paper reports 11 FDs for MIMIC-III patients; the synthetic
        # substitute should stay in the same ballpark (same schema shape).
        result = TANE().discover(tiny_mimic["patients"])
        assert 5 <= len(result.fds) <= 20
        assert fd("subject_id", "gender") in result.fds
