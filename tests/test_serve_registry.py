"""Tests for the registry-backed serving path (``relation_ref`` jobs).

Covers the ``PUT /relations`` / ``GET /relations/<hash>`` HTTP surface, the
additive ``relation_ref`` wire field (exactly-one-of validation, submission
membership gate), byte-parity of by-reference vs inline jobs on *both*
executors, executor-stamped provenance on served results, infra
classification of corrupt registry entries, cross-job relation-cache reuse
and the ``registry.read`` fault-injection site.
"""

from __future__ import annotations

import http.client
import json
import time

import pytest

from repro.registry import IntegrityError, RelationRegistry, verify_provenance
from repro.relational.relation import Relation
from repro.serve import (
    DONE,
    FAILED,
    FAILURE_INFRA,
    RELATION_REF_SCHEMA,
    HttpFrontend,
    JobRequest,
    ProtocolError,
    Server,
    classify_failure,
    relation_to_payload,
)

pytestmark = pytest.mark.slow

WAIT = 30.0


def make_relation(name: str = "t", n_rows: int = 60, salt: int = 0) -> Relation:
    rows = [(i % 6, (i % 6) * 2, (i + salt) % 4, f"v{(i + salt) % 3}") for i in range(n_rows)]
    return Relation(name, ("a", "b", "c", "d"), rows)


def ref_payload(tenant: str, content_hash: str, **params) -> dict:
    return {
        "schema": "repro/job-request-v1",
        "tenant": tenant,
        "kind": "discover",
        "relation_ref": content_hash,
        "params": {"algorithm": "tane", **params},
        "overrides": {},
    }


def inline_payload(tenant: str, relation: Relation, **params) -> dict:
    return {
        "schema": "repro/job-request-v1",
        "tenant": tenant,
        "kind": "discover",
        "relation": relation_to_payload(relation),
        "params": {"algorithm": "tane", **params},
        "overrides": {},
    }


def _http(host, port, method, path, body=None):
    conn = http.client.HTTPConnection(host, port, timeout=WAIT)
    try:
        conn.request(
            method,
            path,
            None if body is None else json.dumps(body),
            {"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestWireField:
    def test_request_requires_exactly_one_relation_form(self):
        with pytest.raises(ProtocolError, match="relation or relation_ref"):
            JobRequest(tenant="t", kind="discover")
        with pytest.raises(ProtocolError, match="not both"):
            JobRequest(
                tenant="t",
                kind="discover",
                relation=make_relation(),
                relation_ref="0" * 64,
            )
        with pytest.raises(ProtocolError, match="64-char"):
            JobRequest(tenant="t", kind="discover", relation_ref="nope")

    def test_payload_round_trip_by_ref(self):
        request = JobRequest(tenant="t", kind="discover", relation_ref="ab" * 32)
        payload = request.to_payload()
        assert payload["relation_ref"] == "ab" * 32
        assert "relation" not in payload
        again = JobRequest.from_payload(json.loads(json.dumps(payload)))
        assert again.relation_ref == request.relation_ref
        assert again.relation is None

    def test_inline_payload_unchanged(self):
        # Additive v1: inline requests serialise exactly as before the
        # registry existed — no relation_ref key leaks in.
        payload = JobRequest(tenant="t", kind="discover", relation=make_relation()).to_payload()
        assert set(payload) == {"schema", "tenant", "kind", "relation", "params", "overrides"}

    def test_payload_with_both_forms_rejected(self):
        payload = inline_payload("t", make_relation())
        payload["relation_ref"] = "0" * 64
        with pytest.raises(ProtocolError, match="not both"):
            JobRequest.from_payload(payload)


class TestServerRegistry:
    def test_unknown_ref_rejected_at_submission(self):
        with Server(workers=1, executor="thread") as server:
            with pytest.raises(ProtocolError, match="unknown relation_ref"):
                server.submit(ref_payload("acme", "0" * 64))

    def test_put_is_idempotent(self):
        with Server(workers=1, executor="thread") as server:
            first = server.put_relation(make_relation())
            second = server.put_relation(make_relation())
            assert first["schema"] == RELATION_REF_SCHEMA
            assert first["hash"] == second["hash"]
            assert first["created"] is True
            assert second["created"] is False

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_ref_jobs_byte_identical_to_inline(self, executor, tmp_path):
        relation = make_relation()
        with Server(workers=2, executor=executor, registry=str(tmp_path)) as server:
            content_hash = server.put_relation(relation)["hash"]
            inline_ticket = server.submit(inline_payload("acme", relation))
            ref_ticket = server.submit(ref_payload("acme", content_hash))
            inline_result = server.result(inline_ticket.job_id, timeout=WAIT)
            ref_result = server.result(ref_ticket.job_id, timeout=WAIT)
            assert ref_result.artifact_fingerprint() == inline_result.artifact_fingerprint()
            assert ref_result.provenance["executor"] == executor
            assert ref_result.provenance["relation_hash"] == content_hash
            report = verify_provenance(ref_result, server.registry)
            assert report["relation_verified"] is True

    def test_thread_process_parity_for_ref_jobs(self, tmp_path):
        relation = make_relation()
        results = {}
        for executor in ("thread", "process"):
            with Server(workers=2, executor=executor, registry=str(tmp_path)) as server:
                content_hash = server.put_relation(relation)["hash"]
                ticket = server.submit(ref_payload("acme", content_hash))
                results[executor] = server.result(ticket.job_id, timeout=WAIT)
        thread_result, process_result = results["thread"], results["process"]
        assert (
            thread_result.artifact_fingerprint() == process_result.artifact_fingerprint()
        )
        # The full payloads differ only in the stats/engine/provenance
        # blocks that legitimately vary per run/executor.
        for key in ("artifacts", "kind", "algorithm", "subject"):
            assert thread_result.payload.get(key) == process_result.payload.get(key)

    def test_memory_registry_with_process_executor(self):
        # Worker processes cannot see an in-memory registry; the server
        # resolves the ref inline at submission and the job still works.
        relation = make_relation()
        with Server(workers=1, executor="process") as server:
            content_hash = server.put_relation(relation)["hash"]
            ticket = server.submit(ref_payload("acme", content_hash))
            result = server.result(ticket.job_id, timeout=WAIT)
            assert result.provenance["relation_hash"] == content_hash

    def test_ref_cache_survives_across_jobs_and_tenants(self, tmp_path):
        relation = make_relation()
        with Server(workers=1, executor="thread", registry=str(tmp_path)) as server:
            content_hash = server.put_relation(relation)["hash"]
            for tenant in ("acme", "globex", "acme"):
                ticket = server.submit(ref_payload(tenant, content_hash))
                server.result(ticket.job_id, timeout=WAIT)
            stats = server.stats()["registry"]
            # One disk entry, decoded at most once: every execution-side
            # lookup after the first is a same-object cache hit.
            assert stats["disk_reads"] == 0  # PUT populated the cache
            assert stats["cache_hits"] >= 3

    def test_corrupt_entry_fails_job_as_infra(self, tmp_path):
        relation = make_relation()
        with Server(
            workers=1, executor="thread", registry=str(tmp_path), max_attempts=1
        ) as server:
            content_hash = server.put_relation(relation)["hash"]
            # Corrupt the entry on disk and drop the warm cache so the next
            # resolution must read (and verify) the damaged bytes.
            path = tmp_path / "objects" / f"{content_hash}.json"
            raw = bytearray(path.read_bytes())
            raw[len(raw) // 2] ^= 0x01
            path.write_bytes(bytes(raw))
            server.registry._cache.clear()
            ticket = server.submit(ref_payload("acme", content_hash))
            job = server.queue.get(ticket.job_id)
            assert job.wait(WAIT)
            assert job.status == FAILED
            assert job.failure_class == FAILURE_INFRA
            assert "IntegrityError" in job.error
            assert server.stats()["registry"]["quarantined"] == 1

    def test_classify_failure_counts_integrity_as_infra(self):
        assert classify_failure(IntegrityError("corrupt")) == FAILURE_INFRA

    def test_registry_read_fault_exercises_infra_retry(self, tmp_path):
        relation = make_relation()
        with Server(
            workers=1,
            executor="thread",
            registry=str(tmp_path),
            max_attempts=3,
            faults="registry.read:error:times=1",
        ) as server:
            content_hash = server.put_relation(relation)["hash"]
            server.registry._cache.clear()
            ticket = server.submit(ref_payload("acme", content_hash))
            result = server.result(ticket.job_id, timeout=WAIT)
            job = server.queue.get(ticket.job_id)
            assert job.status == DONE
            assert job.attempts == 2  # first hit the injected read fault
            assert result.provenance["relation_hash"] == content_hash

    def test_stats_carry_registry_block(self):
        with Server(workers=1, executor="thread") as server:
            stats = server.stats()["registry"]
            assert stats["persistent"] is False
            assert stats["puts"] == 0


class TestHttpRegistrySurface:
    @pytest.fixture()
    def frontend(self, tmp_path):
        server = Server(workers=2, max_queue=8, registry=str(tmp_path))
        frontend = HttpFrontend(server, port=0).start()
        yield frontend
        frontend.stop()
        server.close()

    def test_put_then_ref_job_round_trip(self, frontend):
        host, port = frontend.address
        relation = make_relation()
        status, ack = _http(host, port, "PUT", "/relations", relation_to_payload(relation))
        assert status == 200
        assert ack["schema"] == RELATION_REF_SCHEMA
        assert ack["created"] is True
        status, again = _http(host, port, "PUT", "/relations", relation_to_payload(relation))
        assert status == 200 and again["created"] is False

        status, ticket = _http(host, port, "POST", "/jobs", ref_payload("acme", ack["hash"]))
        assert status == 202
        deadline = time.monotonic() + WAIT
        while time.monotonic() < deadline:
            status, job = _http(host, port, "GET", f"/jobs/{ticket['job_id']}")
            assert status == 200
            if job["status"] == DONE:
                break
            time.sleep(0.02)
        assert job["status"] == DONE
        assert job["result"]["provenance"]["relation_hash"] == ack["hash"]

    def test_get_relation_round_trip_and_404(self, frontend):
        host, port = frontend.address
        relation = make_relation()
        _, ack = _http(host, port, "PUT", "/relations", relation_to_payload(relation))
        status, entry = _http(host, port, "GET", f"/relations/{ack['hash']}")
        assert status == 200
        assert entry["schema"] == "repro/relation-v1"
        assert entry["relation"] == relation_to_payload(relation)
        status, body = _http(host, port, "GET", f"/relations/{'0' * 64}")
        assert status == 404

    def test_put_rejects_malformed_relations(self, frontend):
        host, port = frontend.address
        status, body = _http(host, port, "PUT", "/relations", {"name": "", "attributes": []})
        assert status == 400
        status, body = _http(host, port, "PUT", "/relations", [1, 2, 3])
        assert status == 400

    def test_submit_unknown_ref_is_400(self, frontend):
        host, port = frontend.address
        status, body = _http(host, port, "POST", "/jobs", ref_payload("acme", "0" * 64))
        assert status == 400
        assert "unknown relation_ref" in body["error"]

    def test_registry_survives_server_restart(self, tmp_path):
        relation = make_relation()
        with Server(workers=1, registry=str(tmp_path)) as server:
            content_hash = server.put_relation(relation)["hash"]
        # A brand-new server over the same directory already knows the hash.
        with Server(workers=1, registry=str(tmp_path)) as server:
            ticket = server.submit(ref_payload("acme", content_hash))
            result = server.result(ticket.job_id, timeout=WAIT)
            assert result.provenance["relation_hash"] == content_hash


class TestRegistryPassthrough:
    def test_ready_registry_instance_accepted(self, tmp_path):
        registry = RelationRegistry(tmp_path)
        content_hash = registry.put(make_relation())
        with Server(workers=1, executor="thread", registry=registry) as server:
            assert server.registry is registry
            ticket = server.submit(ref_payload("acme", content_hash))
            server.result(ticket.job_id, timeout=WAIT)

    def test_cli_exposes_registry_dir_flag(self):
        from repro.serve.cli import build_serve_parser

        args = build_serve_parser().parse_args(["--registry-dir", "/tmp/reg"])
        assert args.registry_dir == "/tmp/reg"
