"""Equivalence and subsystem tests for the pluggable partition backends.

The numpy fast path must be *bit-compatible* with the pure-python kernel:
identical flat arrays (group order, positions order), identical dense code
assignment, identical verdicts from the batched validation entry points.
Property-style tests pin the two backends against each other on randomised
relations (with NULLs and duplicated rows); further tests cover the
selection logic (environment variable, numpy masked out), the relation-
scoped byte-budgeted mark-table cache and the combined-codes prefix cache.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery import FUN, TANE, HyFD
from repro.discovery.tane import ApproximateTANE
from repro.relational import backend as backend_module
from repro.relational.backend import (
    KERNEL_COUNTERS,
    MarkTableCache,
    _resolve_backend,
    get_backend,
    numpy_available,
    set_backend,
    use_backend,
)
from repro.relational.partition import (
    PartitionCache,
    StrippedPartition,
    fd_holds_fast,
    fd_violation_fraction_from_partition,
    validate_level,
    validate_level_errors,
)
from repro.relational.relation import Relation

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy fast path not importable"
)

ATTRS = ("a", "b", "c", "d")

# Low-cardinality domains with NULL so that randomised relations exhibit
# duplicate rows, singleton groups and NULL-carrying groups all at once.
value = st.one_of(st.none(), st.integers(0, 3))
rows_strategy = st.lists(st.tuples(value, value, st.integers(0, 2), value),
                         min_size=0, max_size=40)


def flat(partition):
    """The flat arrays as plain lists (backend-independent view)."""
    positions, offsets = partition.positions, partition.offsets
    if not isinstance(positions, list):
        positions = positions.tolist()
    if not isinstance(offsets, list):
        offsets = offsets.tolist()
    return positions, offsets


def build(rows, backend_name):
    with use_backend(backend_name):
        relation = Relation("r", ATTRS, rows)
        partitions = {a: StrippedPartition.from_column(relation, a) for a in ATTRS}
    return relation, partitions


# ---------------------------------------------------------------------------
# Bit-compatibility of the two backends on randomised relations.
# ---------------------------------------------------------------------------


@requires_numpy
@settings(max_examples=50, deadline=None)
@given(rows=rows_strategy)
def test_grouping_is_bit_identical(rows):
    for attributes in (("a",), ("a", "b"), ("d", "b", "c"), ATTRS):
        results = []
        for name in ("python", "numpy"):
            with use_backend(name):
                relation = Relation("r", ATTRS, rows)
                results.append(flat(StrippedPartition.from_columns(relation, attributes)))
        assert results[0] == results[1]


@requires_numpy
@settings(max_examples=50, deadline=None)
@given(rows=rows_strategy)
def test_intersect_and_refines_are_bit_identical(rows):
    _, python_parts = build(rows, "python")
    _, numpy_parts = build(rows, "numpy")
    for first in ATTRS:
        for second in ATTRS:
            if first == second:
                continue
            with use_backend("python"):
                expected = flat(python_parts[first].intersect(python_parts[second]))
                expected_refines = python_parts[first].refines(python_parts[second])
            with use_backend("numpy"):
                actual = flat(numpy_parts[first].intersect(numpy_parts[second]))
                actual_refines = numpy_parts[first].refines(numpy_parts[second])
            assert actual == expected
            assert actual_refines == expected_refines


@requires_numpy
@settings(max_examples=50, deadline=None)
@given(rows=rows_strategy)
def test_combined_codes_are_bit_identical(rows):
    for attributes in (("a", "b"), ("c", "a", "d"), ATTRS):
        results = []
        for name in ("python", "numpy"):
            with use_backend(name):
                relation = Relation("r", ATTRS, rows)
                codes, width = relation.combined_column_codes(attributes)
                # A second call exercises the prefix cache (exact hit).
                again, width_again = relation.combined_column_codes(attributes)
                assert list(again) == list(codes) and width_again == width
                results.append((list(codes), width))
        assert results[0] == results[1]


@requires_numpy
@settings(max_examples=50, deadline=None)
@given(rows=rows_strategy)
def test_g3_fd_checks_and_batched_validation_agree(rows):
    checks = ((("a",), "b"), (("b", "c"), "d"), (("d",), "a"), (("a", "c"), "b"))
    per_backend = []
    for name in ("python", "numpy"):
        with use_backend(name):
            relation = Relation("r", ATTRS, rows)
            cache = PartitionCache(relation)
            scalar = []
            batch = []
            if len(relation):
                for lhs, rhs in checks:
                    partition = cache.get(lhs)
                    scalar.append(
                        (
                            fd_holds_fast(relation, partition, rhs),
                            fd_violation_fraction_from_partition(relation, partition, rhs),
                        )
                    )
                    batch.append((partition, rhs))
            verdicts = validate_level(relation, batch)
            errors = validate_level_errors(relation, batch)
            # Batched answers must equal the scalar primitives point-wise.
            for (holds, g3), verdict, error in zip(scalar, verdicts, errors):
                assert verdict == holds
                assert error == pytest.approx(g3)
                assert (error == 0.0) == holds
            per_backend.append((verdicts, errors))
    assert per_backend[0] == per_backend[1]


@requires_numpy
@settings(max_examples=12, deadline=None)
@given(rows=st.lists(st.tuples(st.integers(0, 2), st.one_of(st.none(), st.integers(0, 2)),
                               st.integers(0, 1)), min_size=0, max_size=16))
def test_discovery_results_identical_across_backends(rows):
    per_backend = []
    for name in ("python", "numpy"):
        with use_backend(name):
            relation = Relation("r", ("a", "b", "c"), rows)
            per_backend.append(
                tuple(
                    tuple(algorithm.discover(relation).as_list())
                    for algorithm in (TANE(), FUN(), HyFD(), ApproximateTANE(0.2))
                )
            )
    assert per_backend[0] == per_backend[1]


def test_validate_level_on_empty_relation_and_empty_batch():
    relation = Relation("r", ATTRS, [])
    partition = StrippedPartition([], 0)
    assert validate_level(relation, [(partition, "a")]) == [True]
    assert validate_level_errors(relation, [(partition, "a")]) == [0.0]
    assert validate_level(relation, []) == []
    assert validate_level_errors(relation, []) == []


# ---------------------------------------------------------------------------
# Backend selection: environment variable, explicit pinning, graceful fallback.
# ---------------------------------------------------------------------------


class TestBackendSelection:
    def test_resolver_names(self):
        assert _resolve_backend("python").name == "python"
        if numpy_available():
            assert _resolve_backend("numpy").name == "numpy"
            assert _resolve_backend("auto").name == "numpy"

    def test_unknown_choice_rejected(self):
        with pytest.raises(ValueError):
            _resolve_backend("fortran")

    def test_env_variable_forces_python(self, monkeypatch):
        monkeypatch.setenv(backend_module.BACKEND_ENV_VAR, "python")
        previous = set_backend(None)  # drop the cached resolution
        try:
            assert get_backend().name == "python"
        finally:
            set_backend(previous)

    def test_use_backend_restores_previous(self):
        before = get_backend()
        with use_backend("python") as active:
            assert active.name == "python"
            assert get_backend() is active
        assert get_backend() is before

    def test_auto_falls_back_to_python_when_numpy_masked(self, monkeypatch):
        monkeypatch.setattr(backend_module, "_np", None)
        assert _resolve_backend("auto").name == "python"

    def test_explicit_numpy_without_numpy_raises(self, monkeypatch):
        monkeypatch.setattr(backend_module, "_np", None)
        with pytest.raises(RuntimeError):
            _resolve_backend("numpy")

    def test_kernel_runs_with_numpy_masked(self, monkeypatch):
        """The whole kernel works end to end on the forced fallback."""
        monkeypatch.setattr(backend_module, "_np", None)
        with use_backend(_resolve_backend("auto")):
            relation = Relation(
                "r", ("a", "b"), [(1, "x"), (1, "x"), (2, "y"), (2, "z"), (1, "x")]
            )
            assert get_backend().name == "python"
            first = StrippedPartition.from_column(relation, "a")
            second = StrippedPartition.from_column(relation, "b")
            product = first.intersect(second)
            assert flat(product) == flat(
                StrippedPartition.from_columns(relation, ("a", "b"))
            )
            assert validate_level(relation, [(first, "b"), (second, "a")]) == [
                False,
                True,
            ]
            result = TANE().discover(relation)
            assert result.stats.extra["partition_backend"] == "python"


# ---------------------------------------------------------------------------
# Relation-scoped, byte-budgeted mark-table cache.
# ---------------------------------------------------------------------------


class TestMarkTableCache:
    def relation(self):
        return Relation(
            "r",
            ("a", "b", "c"),
            [(1, "x", 10), (1, "x", 10), (2, "y", 10), (2, "y", 20), (3, "x", 30)],
        )

    def test_caches_are_relation_scoped(self):
        first, second = self.relation(), self.relation()
        assert first.mark_cache is first.mark_cache
        assert first.mark_cache is not second.mark_cache
        partition = StrippedPartition.from_column(first, "a")
        partition.intersect(StrippedPartition.from_column(first, "b"))
        assert first.mark_cache.stats.requests > 0
        assert second.mark_cache.stats.requests == 0

    def test_intersect_products_inherit_the_relation_cache(self):
        relation = self.relation()
        first = StrippedPartition.from_column(relation, "a")
        second = StrippedPartition.from_column(relation, "b")
        assert first.intersect(second)._mark_cache is relation.mark_cache

    def test_hits_after_repeated_probes(self):
        relation = self.relation()
        build_side = StrippedPartition.from_column(relation, "c")
        probe = StrippedPartition.from_column(relation, "a")
        for _ in range(3):
            probe.refines(build_side)
        stats = relation.mark_cache.stats
        assert stats.hits >= 2
        assert 0.0 < stats.hit_rate <= 1.0

    def test_byte_budget_evicts_lru_but_keeps_results_exact(self):
        relation = self.relation()
        relation._mark_cache = MarkTableCache(budget_bytes=8 * len(relation))
        partitions = [StrippedPartition.from_column(relation, a) for a in ("a", "b", "c")]
        expected = [
            flat(left.intersect(right))
            for left in partitions
            for right in partitions
            if left is not right
        ]
        assert relation.mark_cache.stats.evictions > 0
        assert relation.mark_cache.held_bytes <= 8 * len(relation)
        # Evicted tables are rebuilt on demand: same products, any order.
        actual = [
            flat(left.intersect(right))
            for left in partitions
            for right in partitions
            if left is not right
        ]
        assert actual == expected

    def test_budget_defaults_to_env_override(self, monkeypatch):
        monkeypatch.setenv(backend_module.MARKS_BUDGET_ENV_VAR, "12345")
        assert MarkTableCache().budget_bytes == 12345
        monkeypatch.delenv(backend_module.MARKS_BUDGET_ENV_VAR)
        assert MarkTableCache().budget_bytes == backend_module.DEFAULT_MARKS_BUDGET_BYTES


# ---------------------------------------------------------------------------
# Combined-codes prefix cache.
# ---------------------------------------------------------------------------


class TestCombinedCodesPrefixCache:
    def relation(self):
        return Relation(
            "r",
            ("a", "b", "c", "d"),
            [(i % 3, i % 2, i % 4, i % 5) for i in range(30)],
        )

    def test_prefix_reuse_is_counted_and_correct(self):
        relation = self.relation()
        before = KERNEL_COUNTERS.snapshot()
        full, full_width = relation.combined_column_codes(("a", "b", "c"))
        fresh = self.relation()
        expected, expected_width = fresh.combined_column_codes(("a", "b", "c"))
        # Extending a cached prefix reuses the (a, b) fold.
        extended, _ = relation.combined_column_codes(("a", "b", "d"))
        fresh_extended, _ = fresh.combined_column_codes(("a", "b", "d"))
        delta = KERNEL_COUNTERS.delta(before)
        assert (list(full), full_width) == (list(expected), expected_width)
        assert list(extended) == list(fresh_extended)
        assert delta["combined_prefix_hits"] >= 1

    def test_cache_is_bounded(self):
        relation = self.relation()
        names = relation.attribute_names
        from itertools import permutations

        for combo in permutations(names, 3):
            relation.combined_column_codes(combo)
        from repro.relational.relation import _combined_cache_entries

        assert len(relation._combined_codes_cache) <= _combined_cache_entries()

    def test_exact_hit_returns_cached_codes(self):
        relation = self.relation()
        first, _ = relation.combined_column_codes(("a", "b"))
        second, _ = relation.combined_column_codes(("a", "b"))
        assert list(first) == list(second)


# ---------------------------------------------------------------------------
# Stats surfacing.
# ---------------------------------------------------------------------------


def test_discovery_stats_extra_reports_backend_and_kernel_counters():
    relation = Relation("r", ("a", "b"), [(1, 2), (1, 2), (2, 3), (2, 4)])
    result = TANE().discover(relation)
    extra = result.stats.extra
    assert extra["partition_backend"] == get_backend().name
    assert "kernel" in extra and "mark_hits" in extra["kernel"]
    fun_result = FUN().discover(relation)
    assert "partition_cache" in fun_result.stats.extra
    assert fun_result.stats.extra["partition_cache"]["misses"] >= 1
