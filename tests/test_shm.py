"""Unit tests for the shared-memory data plane (``repro.shm``).

Covers the segment binary format (round trips, rejection of non-scalar
dictionaries, corrupt-header diagnostics), the zero-copy
:class:`SharedRelation` reconstruction (bit-identical codes, counts,
dictionaries, rows and content hash), the parent-owned
:class:`SharedRelationPlane` (idempotent publish, LRU byte-budget eviction,
lease refcounts blocking eviction, orphan-segment cleanup) and the
``shm.attach``/``shm.evict`` fault-injection sites.
"""

from __future__ import annotations

import os
from array import array
from pathlib import Path

import pytest

from repro.relational.relation import Relation
from repro.serve.faults import FaultPlan
from repro.shm import (
    SegmentAttachCache,
    SegmentFormatError,
    SharedRelation,
    SharedRelationPlane,
    attach_segment,
    encode_segment,
    plane_available,
    read_header,
    relation_from_segment,
    write_segment,
)

pytestmark = [
    pytest.mark.slow,
    pytest.mark.skipif(not plane_available(), reason="host lacks shared memory or numpy"),
]


def make_relation(name: str = "t", n_rows: int = 60, salt: int = 0) -> Relation:
    rows = [(i % 6, (i % 6) * 2, (i + salt) % 4, f"v{(i + salt) % 3}") for i in range(n_rows)]
    return Relation(name, ("a", "b", "c", "d"), rows)


def segment_bytes(relation: Relation) -> bytearray:
    header, arrays, total = encode_segment(relation)
    buf = bytearray(total)
    write_segment(buf, header, arrays, len(relation))
    return buf


class TestSegmentFormat:
    def test_round_trip_is_bit_identical(self):
        original = make_relation(n_rows=90)
        restored = relation_from_segment(segment_bytes(original))
        assert isinstance(restored, SharedRelation)
        assert restored.name == original.name
        assert restored.attribute_names == original.attribute_names
        assert len(restored) == len(original)
        assert restored.content_hash() == original.content_hash()
        for attribute in original.attribute_names:
            codes, n_codes, counts = original._encode_column(attribute)
            shm_codes, shm_n, shm_counts = restored._encode_column(attribute)
            assert list(shm_codes) == list(codes)
            assert shm_n == n_codes
            assert shm_counts == counts
            assert restored.column_dictionary(attribute) == original.column_dictionary(
                attribute
            )
        assert restored.rows == original.rows

    def test_expected_hash_mismatch_is_rejected(self):
        buf = segment_bytes(make_relation())
        with pytest.raises(SegmentFormatError, match="expected"):
            relation_from_segment(buf, expected_hash="0" * 64)

    def test_non_scalar_dictionary_values_are_rejected(self):
        relation = Relation("t", ("a",), [((1, 2),), ((3, 4),)])
        with pytest.raises(SegmentFormatError, match="JSON scalars"):
            encode_segment(relation)

    def test_bool_and_none_values_round_trip(self):
        relation = Relation("t", ("a", "b"), [(True, None), (False, 1), (True, None)])
        restored = relation_from_segment(segment_bytes(relation))
        assert restored.rows == relation.rows
        assert restored.content_hash() == relation.content_hash()

    def test_empty_relation_round_trips(self):
        relation = Relation("t", ("a", "b"), [])
        restored = relation_from_segment(segment_bytes(relation))
        assert len(restored) == 0
        assert restored.rows == ()
        assert restored.content_hash() == relation.content_hash()

    def test_bad_magic_is_rejected(self):
        buf = segment_bytes(make_relation())
        buf[0:8] = b"XXXXXXXX"
        with pytest.raises(SegmentFormatError, match="magic"):
            read_header(buf)

    def test_truncated_segment_is_rejected(self):
        buf = segment_bytes(make_relation())
        with pytest.raises(SegmentFormatError, match="overrun"):
            read_header(buf[: len(buf) // 2])

    def test_corrupt_header_json_is_rejected(self):
        buf = segment_bytes(make_relation())
        buf[20] = 0xFF
        with pytest.raises(SegmentFormatError):
            read_header(buf)


class TestFromCodes:
    def test_from_codes_round_trip_matches_content_hash(self):
        original = make_relation(n_rows=48)
        columns = []
        for attribute in original.attribute_names:
            codes, _n = original.column_codes(attribute)
            columns.append((array("q", codes), original.column_dictionary(attribute)))
        rebuilt = Relation.from_codes(original.name, original.attribute_names, columns)
        assert rebuilt.rows == original.rows
        assert rebuilt.content_hash() == original.content_hash()

    def test_from_codes_rejects_sparse_dictionaries(self):
        # Code 1 appears before code 0: not a first-appearance encoding.
        with pytest.raises(ValueError):
            Relation.from_codes("t", ("a",), [(array("q", [1, 0]), ["x", "y"])])


class TestSharedRelationPlane:
    def test_publish_is_idempotent_by_content(self):
        relation = make_relation()
        plane = SharedRelationPlane(budget_bytes=1 << 20)
        try:
            first = plane.publish(relation)
            second = plane.publish(relation)
            assert first == second == relation.content_hash()
            assert plane.stats()["published"] == 1
            assert len(plane.segment_names()) == 1
        finally:
            plane.close()

    def test_published_segment_attaches_bit_identical(self):
        relation = make_relation(n_rows=120)
        plane = SharedRelationPlane(budget_bytes=1 << 20)
        cache = SegmentAttachCache()
        try:
            content_hash = plane.publish(relation)
            meta = plane.acquire(content_hash)
            assert meta is not None and meta["hash"] == content_hash
            attached = cache.get(meta["name"], meta["hash"])
            assert attached.content_hash() == relation.content_hash()
            assert attached.rows == relation.rows
            plane.release(content_hash)
        finally:
            cache.close()
            plane.close()

    def test_attach_cache_hits_on_repeat(self):
        relation = make_relation()
        plane = SharedRelationPlane(budget_bytes=1 << 20)
        cache = SegmentAttachCache()
        try:
            content_hash = plane.publish(relation)
            meta = plane.acquire(content_hash)
            first = cache.get(meta["name"], meta["hash"])
            second = cache.get(meta["name"], meta["hash"])
            assert first is second  # same object: engine caches stay warm
            assert cache.attaches == 1 and cache.hits == 1
            plane.release(content_hash)
        finally:
            cache.close()
            plane.close()

    def test_over_budget_relation_is_declined(self):
        relation = make_relation(n_rows=200)
        plane = SharedRelationPlane(budget_bytes=64)  # far below any segment
        try:
            assert plane.publish(relation) is None
            assert plane.stats()["publish_declined"] == 1
            assert plane.segment_names() == []
        finally:
            plane.close()

    def test_non_scalar_relation_is_declined(self):
        relation = Relation("t", ("a",), [((1, 2),)])
        plane = SharedRelationPlane(budget_bytes=1 << 20)
        try:
            assert plane.publish(relation) is None
            assert plane.stats()["publish_declined"] == 1
        finally:
            plane.close()

    def test_lru_eviction_frees_budget_for_new_publishes(self):
        a, b = make_relation("a", n_rows=100), make_relation("b", n_rows=100, salt=1)
        _, _, size = encode_segment(a)
        plane = SharedRelationPlane(budget_bytes=int(size * 1.5))
        try:
            hash_a = plane.publish(a)
            assert hash_a is not None
            hash_b = plane.publish(b)  # evicts a (LRU, refcount 0)
            assert hash_b is not None
            stats = plane.stats()
            assert stats["evictions"] == 1
            assert plane.acquire(hash_a) is None  # gone
            assert stats["segments"] == 1
        finally:
            plane.close()

    def test_leased_segments_are_never_evicted(self):
        a, b = make_relation("a", n_rows=100), make_relation("b", n_rows=100, salt=1)
        _, _, size = encode_segment(a)
        plane = SharedRelationPlane(budget_bytes=int(size * 1.5))
        try:
            hash_a = plane.publish(a)
            assert plane.acquire(hash_a) is not None  # leased: in flight
            assert plane.publish(b) is None  # cannot evict the leased segment
            assert plane.stats()["publish_declined"] == 1
            assert plane.refcounts()[hash_a] == 1
            plane.release(hash_a)
            assert plane.publish(b) is not None  # now evictable
        finally:
            plane.close()

    def test_acquire_unknown_hash_is_a_lease_miss(self):
        plane = SharedRelationPlane(budget_bytes=1 << 20)
        try:
            assert plane.acquire("0" * 64) is None
            assert plane.stats()["lease_misses"] == 1
        finally:
            plane.close()

    def test_release_is_idempotent_past_zero(self):
        relation = make_relation()
        plane = SharedRelationPlane(budget_bytes=1 << 20)
        try:
            content_hash = plane.publish(relation)
            plane.release(content_hash)  # never acquired: floor at zero
            assert plane.refcounts()[content_hash] == 0
        finally:
            plane.close()

    def test_close_unlinks_every_segment(self):
        plane = SharedRelationPlane(budget_bytes=1 << 20)
        plane.publish(make_relation("a"))
        plane.publish(make_relation("b", salt=1))
        names = plane.segment_names()
        assert len(names) == 2
        plane.close()
        for name in names:
            assert not Path("/dev/shm", name).exists()
        # Closed plane declines everything quietly.
        assert plane.publish(make_relation("c", salt=2)) is None
        assert plane.acquire("0" * 64) is None

    def test_mapped_views_survive_unlink(self):
        # POSIX: close() may unlink while a worker still holds views.
        relation = make_relation(n_rows=80)
        plane = SharedRelationPlane(budget_bytes=1 << 20)
        cache = SegmentAttachCache()
        content_hash = plane.publish(relation)
        meta = plane.acquire(content_hash)
        attached = cache.get(meta["name"], meta["hash"])
        plane.release(content_hash)
        plane.close()  # unlinks the segment under the attached relation
        assert attached.rows == relation.rows  # mapping still valid
        cache.close()


class TestOrphanCleanup:
    def test_dead_owner_segments_are_reclaimed(self):
        stale = Path("/dev/shm", "repro_999999999_deadbeefdeadbeef")
        stale.write_bytes(b"\0" * 64)
        try:
            removed = SharedRelationPlane.cleanup_orphans()
            assert stale.name in removed
            assert not stale.exists()
        finally:
            stale.unlink(missing_ok=True)

    def test_live_owner_segments_are_kept(self):
        mine = Path("/dev/shm", f"repro_{os.getpid()}_feedfacefeedface")
        mine.write_bytes(b"\0" * 64)
        try:
            removed = SharedRelationPlane.cleanup_orphans()
            assert mine.name not in removed
            assert mine.exists()
        finally:
            mine.unlink(missing_ok=True)

    def test_foreign_names_are_ignored(self):
        foreign = Path("/dev/shm", "repro_notanumber_x")
        foreign.write_bytes(b"\0" * 8)
        try:
            removed = SharedRelationPlane.cleanup_orphans()
            assert foreign.name not in removed
            assert foreign.exists()
        finally:
            foreign.unlink(missing_ok=True)


class TestFaultSites:
    def test_attach_fault_forces_wire_fallback(self):
        relation = make_relation()
        plan = FaultPlan.from_spec("seed=7;shm.attach:error:p=1.0:times=1")
        plane = SharedRelationPlane(budget_bytes=1 << 20, faults=plan)
        try:
            content_hash = plane.publish(relation)
            assert plane.acquire(content_hash) is None  # faulted: caller uses wire
            stats = plane.stats()
            assert stats["attach_faults"] == 1
            assert plane.refcounts()[content_hash] == 0  # no leaked lease
            assert plane.acquire(content_hash) is not None  # rule exhausted
            plane.release(content_hash)
        finally:
            plane.close()

    def test_evict_fault_aborts_the_sweep(self):
        a, b = make_relation("a", n_rows=100), make_relation("b", n_rows=100, salt=1)
        _, _, size = encode_segment(a)
        plan = FaultPlan.from_spec("seed=7;shm.evict:error:p=1.0:times=1")
        plane = SharedRelationPlane(budget_bytes=int(size * 1.5), faults=plan)
        try:
            hash_a = plane.publish(a)
            assert plane.publish(b) is None  # eviction fault aborted the sweep
            stats = plane.stats()
            assert stats["evict_faults"] == 1 and stats["evictions"] == 0
            assert plane.acquire(hash_a) is not None  # victim reinstated
            plane.release(hash_a)
            assert plane.publish(b) is not None  # next sweep succeeds
        finally:
            plane.close()


class TestAttachSegment:
    def test_attach_does_not_claim_ownership(self):
        relation = make_relation()
        plane = SharedRelationPlane(budget_bytes=1 << 20)
        try:
            content_hash = plane.publish(relation)
            name = plane.segment_names()[0]
            handle = attach_segment(name)
            try:
                assert relation_from_segment(handle.buf).content_hash() == content_hash
            finally:
                handle.close()
            # Closing the attach handle must not unlink the parent's segment.
            assert Path("/dev/shm", name).exists()
        finally:
            plane.close()
