"""Tests for stripped partitions and FD validity checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.partition import (
    PartitionCache,
    StrippedPartition,
    fd_holds,
    fd_holds_fast,
    fd_violation_fraction,
)
from repro.relational.relation import Relation


@pytest.fixture()
def relation() -> Relation:
    return Relation(
        "r",
        ("a", "b", "c"),
        [(1, "x", 10), (1, "x", 10), (2, "y", 10), (2, "y", 20), (3, "x", 30)],
    )


class TestStrippedPartition:
    def test_singletons_are_stripped(self, relation):
        partition = StrippedPartition.from_column(relation, "a")
        assert partition.n_groups == 2
        assert partition.stripped_size == 4

    def test_error_formula(self, relation):
        partition = StrippedPartition.from_column(relation, "a")
        assert partition.error == partition.stripped_size - partition.n_groups

    def test_distinct_count(self, relation):
        assert StrippedPartition.from_column(relation, "a").distinct_count == 3
        assert StrippedPartition.from_column(relation, "c").distinct_count == 3

    def test_empty_attribute_set_partition(self, relation):
        partition = StrippedPartition.from_columns(relation, [])
        assert partition.n_groups == 1
        assert partition.stripped_size == len(relation)

    def test_is_key(self):
        relation = Relation("r", ("a",), [(1,), (2,), (3,)])
        assert StrippedPartition.from_column(relation, "a").is_key()

    def test_intersect_equals_direct_computation(self, relation):
        direct = StrippedPartition.from_columns(relation, ["a", "b"])
        composed = StrippedPartition.from_column(relation, "a").intersect(
            StrippedPartition.from_column(relation, "b")
        )
        assert composed == direct

    def test_intersect_rejects_different_sizes(self, relation):
        other = StrippedPartition([[0, 1]], 2)
        with pytest.raises(ValueError):
            StrippedPartition.from_column(relation, "a").intersect(other)

    def test_refines_detects_fd(self, relation):
        pa = StrippedPartition.from_column(relation, "a")
        pb = StrippedPartition.from_column(relation, "b")
        assert pa.refines(pb)   # a -> b holds
        assert not StrippedPartition.from_column(relation, "c").refines(pa)

    def test_g3_error_bounds(self, relation):
        partition = StrippedPartition.from_column(relation, "a")
        assert 0.0 <= partition.g3_error() <= 1.0

    def test_equality_is_structural(self, relation):
        first = StrippedPartition.from_column(relation, "a")
        second = StrippedPartition.from_column(relation, "a")
        assert first == second


class TestPartitionCache:
    def test_cache_reuses_objects(self, relation):
        cache = PartitionCache(relation)
        assert cache.get(["a", "b"]) is cache.get(["b", "a"])
        assert len(cache) >= 1

    def test_cache_matches_direct(self, relation):
        cache = PartitionCache(relation)
        for attrs in (["a"], ["a", "b"], ["a", "b", "c"]):
            assert cache.get(attrs) == StrippedPartition.from_columns(relation, attrs)


class TestFDChecks:
    def test_fd_holds_true(self, relation):
        assert fd_holds(relation, ["a"], "b")

    def test_fd_holds_false(self, relation):
        assert not fd_holds(relation, ["a"], "c")

    def test_trivial_fd_holds(self, relation):
        assert fd_holds(relation, ["a", "b"], "a")

    def test_fd_holds_fast_matches_slow(self, relation):
        cache = PartitionCache(relation)
        for lhs in (["a"], ["b"], ["a", "b"], ["c"]):
            for rhs in ("a", "b", "c"):
                if rhs in lhs:
                    continue
                assert fd_holds_fast(relation, cache.get(lhs), rhs) == fd_holds(
                    relation, lhs, rhs, cache
                )

    def test_violation_fraction_zero_for_valid(self, relation):
        assert fd_violation_fraction(relation, ["a"], "b") == 0.0

    def test_violation_fraction_counts_minimal_removals(self, relation):
        # a -> c is violated only inside the a=2 group (one row must go).
        assert fd_violation_fraction(relation, ["a"], "c") == pytest.approx(1 / 5)

    def test_violation_fraction_empty_relation(self):
        empty = Relation("e", ("a", "b"), [])
        assert fd_violation_fraction(empty, ["a"], "b") == 0.0


@settings(max_examples=40, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 3), st.integers(0, 2)),
        min_size=1,
        max_size=30,
    )
)
def test_partition_product_is_commutative_and_matches_direct(rows):
    relation = Relation("r", ("a", "b", "c"), rows)
    pa = StrippedPartition.from_column(relation, "a")
    pb = StrippedPartition.from_column(relation, "b")
    assert pa.intersect(pb) == pb.intersect(pa)
    assert pa.intersect(pb) == StrippedPartition.from_columns(relation, ["a", "b"])


@settings(max_examples=40, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 2)),
        min_size=1,
        max_size=25,
    )
)
def test_fd_holds_agrees_with_bruteforce(rows):
    relation = Relation("r", ("a", "b"), rows)
    mapping = {}
    expected = True
    for a, b in rows:
        if a in mapping and mapping[a] != b:
            expected = False
            break
        mapping[a] = b
    assert fd_holds(relation, ["a"], "b") == expected
