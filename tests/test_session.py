"""Tests for the `repro.Session` engine API, `EngineConfig` and `RunResult`.

Covers the acceptance criteria of the session redesign:

* ``Session.discover``/``validate``/``profile``/``infine`` return
  :class:`RunResult` objects whose ``save``/``load`` round-trips are
  byte-identical;
* artefacts stay byte-identical across backends, across the per-relation
  backend switch point (``backend_min_numpy_rows``), and across env-var vs
  ``EngineConfig`` configuration of the same settings;
* configuration precedence: env var < ``EngineConfig``/constructor kwarg <
  per-call override;
* two concurrent sessions share neither kernel caches nor counters;
* ``--kernel-stats`` is scoped to the CLI invocation's session (no
  double-counting across repeated commands in one process).
"""

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro import EngineConfig, Relation, RunResult, Session, TANE, base, join
from repro.cli import main
from repro.config import (
    ENV_BACKEND,
    ENV_BACKEND_MIN_NUMPY_ROWS,
    ENV_COMBINED_CACHE_ENTRIES,
    ENV_MARKS_CACHE_BYTES,
    ConfigError,
)
from repro.relational.backend import KERNEL_COUNTERS, numpy_available
from repro.session import default_session

requires_numpy = pytest.mark.skipif(
    not numpy_available(), reason="numpy fast path not importable"
)


def small_relation(name: str = "r") -> Relation:
    return Relation(
        name,
        ("a", "b", "c", "d"),
        [
            (1, "x", 10, "p"),
            (1, "x", 10, "q"),
            (2, "y", 10, "p"),
            (2, "y", 20, "q"),
            (3, "x", 30, "p"),
            (3, "x", 30, "p"),
        ],
    )


def tiny_catalog() -> dict[str, Relation]:
    customers = Relation(
        "customers",
        ("cid", "name", "segment"),
        [(1, "ada", "research"), (2, "grace", "navy"), (3, "edsger", "research")],
    )
    orders = Relation(
        "orders",
        ("oid", "cid", "status"),
        [(10, 1, "open"), (11, 1, "shipped"), (12, 2, "open"), (13, 3, "open")],
    )
    return {"customers": customers, "orders": orders}


# ---------------------------------------------------------------------------
# EngineConfig: env parsing, validation, precedence, fingerprints.
# ---------------------------------------------------------------------------


class TestEngineConfig:
    def test_pristine_env_yields_defaults(self):
        assert EngineConfig.from_env(env={}) == EngineConfig()

    def test_env_variables_are_defaults(self):
        config = EngineConfig.from_env(
            env={
                ENV_BACKEND: "python",
                ENV_BACKEND_MIN_NUMPY_ROWS: "128",
                ENV_MARKS_CACHE_BYTES: "4096",
                ENV_COMBINED_CACHE_ENTRIES: "5",
            }
        )
        assert config.backend == "python"
        assert config.backend_min_numpy_rows == 128
        assert config.marks_cache_bytes == 4096
        assert config.combined_codes_cache_entries == 5

    def test_malformed_env_values_fall_back(self):
        config = EngineConfig.from_env(env={ENV_MARKS_CACHE_BYTES: "not-a-number"})
        assert config.marks_cache_bytes == EngineConfig().marks_cache_bytes

    def test_invalid_backend_rejected(self):
        with pytest.raises(ConfigError):
            EngineConfig(backend="fortran")
        with pytest.raises(ConfigError):
            EngineConfig.from_env(env={ENV_BACKEND: "fortran"})

    def test_replace_ignores_none_and_rejects_unknown(self):
        config = EngineConfig(backend="python")
        assert config.replace(backend=None) is config
        assert config.replace(backend="auto").backend == "auto"
        with pytest.raises(ConfigError):
            config.replace(warp_drive=True)

    def test_fingerprint_tracks_content(self):
        assert EngineConfig().fingerprint() == EngineConfig().fingerprint()
        assert EngineConfig().fingerprint() != EngineConfig(backend="python").fingerprint()

    def test_env_vs_explicit_config_are_the_same_settings(self):
        explicit = EngineConfig(backend="python", marks_cache_bytes=4096)
        from_env = EngineConfig.from_env(
            env={ENV_BACKEND: "python", ENV_MARKS_CACHE_BYTES: "4096"}
        )
        assert explicit == from_env
        assert explicit.fingerprint() == from_env.fingerprint()


# ---------------------------------------------------------------------------
# RunResult: unified payload, byte-identical save/load round-trips.
# ---------------------------------------------------------------------------


class TestRunResultRoundTrip:
    def run_all_verbs(self, session: Session) -> dict[str, RunResult]:
        relation = small_relation()
        catalog = tiny_catalog()
        view = join(base("customers"), base("orders"), on="cid")
        return {
            "discover": session.discover(relation, algorithm="tane"),
            "validate": session.validate(relation, ["a -> b", "c -> a", (("a", "d"), "c")]),
            "profile": session.profile(relation, threshold=0.5, max_lhs=1),
            "infine": session.infine(view, catalog),
        }

    def test_save_load_round_trip_is_byte_identical(self, tmp_path):
        for kind, result in self.run_all_verbs(Session()).items():
            path = result.save(tmp_path / f"{kind}.json")
            first_bytes = path.read_bytes()
            reloaded = RunResult.load(path)
            assert reloaded.save(tmp_path / f"{kind}_again.json").read_bytes() == first_bytes
            assert reloaded.kind == kind
            assert reloaded.fds == result.fds
            assert reloaded.config == result.config
            assert reloaded.artifact_fingerprint() == result.artifact_fingerprint()

    def test_every_verb_reports_engine_provenance(self):
        session = Session()
        for result in self.run_all_verbs(session).values():
            assert result.backend in ("python", "numpy")
            assert result.config_fingerprint == session.config.fingerprint()
            assert "fds" in result.artifacts
            assert result.stats  # non-empty volatile section

    def test_discover_matches_legacy_entry_point(self):
        relation = small_relation()
        session = Session()
        via_session = session.discover(relation, algorithm="tane")
        with session.activate():
            legacy = TANE().discover(relation)
        assert via_session.fds == legacy.fds
        assert via_session.subject == legacy.relation_name

    def test_non_runresult_payload_rejected(self):
        with pytest.raises(ValueError):
            RunResult({"schema": "something-else"})


# ---------------------------------------------------------------------------
# Byte-identical artefacts across backends and configuration styles.
# ---------------------------------------------------------------------------


@requires_numpy
class TestArtifactsAcrossConfigurations:
    def test_discover_identical_across_backends(self):
        relation_rows = list(small_relation())
        fingerprints = set()
        for backend in ("python", "numpy"):
            session = Session(backend=backend)
            result = session.discover(Relation("r", ("a", "b", "c", "d"), relation_rows))
            assert result.backend == backend
            fingerprints.add(result.artifact_fingerprint())
        assert len(fingerprints) == 1

    def test_infine_identical_across_backends(self):
        view = join(base("customers"), base("orders"), on="cid")
        outputs = []
        for backend in ("python", "numpy"):
            result = Session(backend=backend).infine(view, tiny_catalog())
            outputs.append(result.artifact_fingerprint())
        assert outputs[0] == outputs[1]

    def test_batched_and_scalar_validation_identical(self):
        relation = small_relation()
        batched = Session(batch_validation=True).profile(relation, threshold=0.5)
        scalar = Session(batch_validation=False).profile(relation, threshold=0.5)
        assert batched.artifact_fingerprint() == scalar.artifact_fingerprint()
        assert Session(batch_validation=False).counters.batched_levels == 0

    def test_env_var_and_engine_config_produce_identical_artifacts(self, monkeypatch):
        relation_rows = list(small_relation())
        monkeypatch.setenv(ENV_BACKEND, "python")
        monkeypatch.setenv(ENV_MARKS_CACHE_BYTES, "8192")
        via_env = Session()  # EngineConfig.from_env()
        monkeypatch.delenv(ENV_BACKEND)
        monkeypatch.delenv(ENV_MARKS_CACHE_BYTES)
        explicit = Session(
            config=EngineConfig(backend="python", marks_cache_bytes=8192)
        )
        assert via_env.config == explicit.config
        first = via_env.discover(Relation("r", ("a", "b", "c", "d"), relation_rows))
        second = explicit.discover(Relation("r", ("a", "b", "c", "d"), relation_rows))
        # Same artefacts AND the very same engine provenance (config +
        # fingerprint + resolved backend); only runtimes may differ.
        assert first.artifact_fingerprint() == second.artifact_fingerprint()
        assert first.payload["engine"] == second.payload["engine"]


# ---------------------------------------------------------------------------
# Configuration precedence: env var < EngineConfig kwarg < per-call override.
# ---------------------------------------------------------------------------


@requires_numpy
class TestConfigPrecedence:
    def test_constructor_kwarg_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "python")
        assert Session().config.backend == "python"  # env provides the default
        session = Session(backend="numpy")  # explicit kwarg wins
        assert session.config.backend == "numpy"
        assert session.discover(small_relation()).backend == "numpy"

    def test_explicit_config_beats_env_var(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND, "numpy")
        session = Session(config=EngineConfig(backend="python"))
        assert session.discover(small_relation()).backend == "python"

    def test_per_call_override_beats_session_config(self):
        session = Session(backend="numpy")
        pinned = session.discover(small_relation(), backend="python")
        assert pinned.backend == "python"
        assert pinned.config.backend == "python"
        # The session itself is untouched by per-call overrides.
        assert session.config.backend == "numpy"
        assert session.discover(small_relation()).backend == "numpy"

    def test_per_call_override_artifacts_identical(self):
        session = Session(backend="numpy")
        relation = small_relation()
        assert (
            session.discover(relation, backend="python").artifact_fingerprint()
            == session.discover(relation).artifact_fingerprint()
        )

    def test_per_call_override_still_counts_into_the_session(self):
        session = Session(backend="numpy")
        session.discover(small_relation(), backend="python")
        snapshot = session.kernel_stats()
        assert snapshot["partition_misses"] + snapshot["mark_misses"] > 0

    def test_repeated_per_call_overrides_reuse_one_derived_state(self):
        session = Session(backend="numpy")
        # The derived state (and with it the relation-scoped caches) is
        # memoised per overridden configuration instead of being rebuilt on
        # every call; no-op overrides resolve to the session state itself.
        first = session._call_state({"backend": "python"})
        assert first is session._call_state({"backend": "python"})
        assert first is not session.state
        assert first.counters is session.counters
        assert session._call_state({"backend": "numpy"}) is session.state


# ---------------------------------------------------------------------------
# Session isolation: no shared caches, no shared counters.
# ---------------------------------------------------------------------------


class TestSessionIsolation:
    def test_sessions_do_not_share_counters(self):
        relation = small_relation()
        first, second = Session(), Session()
        first.discover(relation)
        assert first.counters.mark_misses > 0
        assert second.counters.mark_misses == 0
        assert second.counters.mark_hits == 0

    def test_sessions_do_not_share_relation_caches(self):
        relation = small_relation()
        first, second = Session(), Session()
        first_caches = first.state.caches_for(relation)
        second_caches = second.state.caches_for(relation)
        assert first_caches is not second_caches
        assert first_caches.marks is not second_caches.marks
        assert first_caches.combined is not second_caches.combined

    def test_explicit_sessions_do_not_pollute_the_default_session(self):
        before = KERNEL_COUNTERS.snapshot()
        Session().discover(small_relation())
        assert KERNEL_COUNTERS.delta(before) == {key: 0 for key in before}

    def test_legacy_entry_points_count_into_the_default_session(self):
        before = KERNEL_COUNTERS.snapshot()
        TANE().discover(small_relation())
        delta = KERNEL_COUNTERS.delta(before)
        assert sum(delta.values()) > 0
        assert default_session().counters is KERNEL_COUNTERS

    def test_concurrent_sessions_in_threads_are_isolated(self):
        rows = list(small_relation())
        results: dict[str, RunResult] = {}
        errors: list[BaseException] = []
        sessions = {"one": Session(), "two": Session()}

        def work(key: str) -> None:
            try:
                relation = Relation(key, ("a", "b", "c", "d"), rows)
                for _ in range(3):
                    results[key] = sessions[key].discover(relation)
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=work, args=(key,)) for key in sessions]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert (
            results["one"].artifacts["fds"] == results["two"].artifacts["fds"]
        )
        for session in sessions.values():
            assert session.counters.mark_misses > 0

    def test_validate_reuses_the_session_partition_cache(self):
        session = Session()
        relation = small_relation()
        session.validate(relation, ["a -> b"])
        second = session.validate(relation, ["a -> c"])
        assert second.stats["partition_cache"]["hits"] >= 1

    def test_validate_with_errors_is_a_single_kernel_pass(self):
        session = Session()
        session.validate(small_relation(), ["a -> b", "a -> c"])
        # holds is derived from g3 == 0, so one batched pass serves both.
        assert session.counters.batched_levels == 1

    def test_nested_with_blocks_unwind_correctly(self):
        session = Session()
        with session:
            with session:
                session.discover(small_relation())
            session.discover(small_relation())
        assert session.counters.mark_misses > 0

    def test_max_lhs_size_with_algorithm_instance_rejected(self):
        with pytest.raises(ValueError):
            Session().discover(small_relation(), TANE(), max_lhs_size=2)

    def test_dead_session_releases_caches_while_relation_lives(self):
        import gc
        import weakref

        relation = small_relation()
        session = Session()
        session.validate(relation, ["a -> b"])
        entry_ref = weakref.ref(session.state.caches_for(relation))
        del session
        gc.collect()
        # The relation is still alive, but the session's caches are gone:
        # the relation-side finalizer only weakly references the state.
        assert entry_ref() is None
        assert len(relation) > 0  # keep the relation alive past the check

    def test_shared_session_context_manager_across_threads(self):
        session = Session()
        barrier = threading.Barrier(2)
        errors: list[BaseException] = []

        def work() -> None:
            try:
                for _ in range(5):
                    with session:
                        barrier.wait()  # both threads are inside the block
                        session.discover(small_relation())
                        barrier.wait()  # ... and exit concurrently
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=work) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

    def test_close_drops_caches_but_session_stays_usable(self):
        session = Session()
        relation = small_relation()
        session.validate(relation, ["a -> b"])
        session.close()
        assert session.validate(relation, ["a -> b"]).artifacts["checks"][0]["holds"] in (
            True,
            False,
        )

    def test_partitions_bind_their_mark_cache_weakly(self):
        """ROADMAP regression: a collected session's mark cache is released
        even while partitions built under it live on."""
        import gc
        import weakref

        from repro.relational.partition import StrippedPartition

        relation = small_relation()
        session = Session()
        with session.activate():
            lhs = StrippedPartition.from_column(relation, "a")
            rhs = StrippedPartition.from_column(relation, "b")
            product = lhs.intersect(rhs)  # populates the mark cache
            cache_ref = weakref.ref(relation.mark_cache)
            assert lhs._mark_cache is cache_ref()
        del session
        gc.collect()
        # The partition no longer pins the dead session's cache ...
        assert cache_ref() is None
        assert lhs._mark_cache is None
        # ... and still probes correctly via the fallback cache.
        assert lhs.intersect(rhs).error == product.error
        assert isinstance(lhs.refines(rhs), bool)


# ---------------------------------------------------------------------------
# Per-relation backend override heuristic (ROADMAP open item).
# ---------------------------------------------------------------------------


@requires_numpy
class TestBackendMinNumpyRows:
    def test_small_relations_resolve_to_python(self):
        session = Session(backend="auto", backend_min_numpy_rows=100)
        small = small_relation()
        assert session.state.backend_for(len(small)).name == "python"
        assert session.state.backend_for(100).name == "numpy"
        assert session.discover(small).backend == "python"

    def test_env_var_provides_the_default(self, monkeypatch):
        monkeypatch.setenv(ENV_BACKEND_MIN_NUMPY_ROWS, "64")
        assert Session().config.backend_min_numpy_rows == 64

    def test_disabled_by_default(self):
        assert EngineConfig().backend_min_numpy_rows == 0
        assert Session(backend="auto").state.backend_for(1).name == "numpy"

    @settings(max_examples=15, deadline=None)
    @given(
        rows=st.lists(
            st.tuples(
                st.integers(0, 3),
                st.one_of(st.none(), st.integers(0, 2)),
                st.integers(0, 1),
            ),
            min_size=0,
            max_size=24,
        ),
        threshold=st.integers(0, 30),
    )
    def test_artifacts_byte_identical_across_the_switch_point(self, rows, threshold):
        """Property: the heuristic never changes artefacts, wherever it lands.

        ``threshold`` sweeps across the relation size, so the three sessions
        exercise below-, at- and above-threshold resolution; the forced
        python/numpy runs bracket both sides of the switch.
        """
        payloads = set()
        backends = set()
        for config in (
            EngineConfig(backend="auto", backend_min_numpy_rows=threshold),
            EngineConfig(backend="python"),
            EngineConfig(backend="numpy"),
        ):
            session = Session(config=config)
            relation = Relation("r", ("a", "b", "c"), rows)
            result = session.discover(relation, algorithm="tane")
            payloads.add(result.artifact_fingerprint())
            backends.add(result.backend)
            graded = session.profile(relation, threshold=0.5, max_lhs=1)
            payloads.add(graded.artifact_fingerprint())
        assert len(payloads) == 2  # one discover payload + one profile payload
        if 0 < threshold <= len(rows):
            pass  # heuristic landed exactly at the boundary for some runs
        if threshold > len(rows):
            assert "python" in backends  # the heuristic actually switched


# ---------------------------------------------------------------------------
# CLI: --kernel-stats scoped per invocation (double-counting fix).
# ---------------------------------------------------------------------------


class TestKernelStatsScoping:
    ARGS = ["table1", "--scale", "tiny", "--databases", "pte", "--kernel-stats"]

    @staticmethod
    def kernel_block(output: str) -> list[str]:
        return [line for line in output.splitlines() if line.startswith("[kernel]")]

    def test_repeated_invocations_report_identical_counters(self, capsys):
        assert main(self.ARGS) == 0
        first = self.kernel_block(capsys.readouterr().out)
        assert main(self.ARGS) == 0
        second = self.kernel_block(capsys.readouterr().out)
        assert first  # the block is present
        assert first == second  # scoped to the invocation: no accumulation
        assert any(
            "misses=" in line and "misses=0" not in line.replace(" ", "")
            for line in first
        )

    def test_cli_backend_flag(self, capsys):
        assert main(["table1", "--scale", "tiny", "--databases", "pte",
                     "--backend", "python", "--kernel-stats"]) == 0
        output = capsys.readouterr().out
        assert "[kernel] backend=python" in output

    @requires_numpy
    def test_cli_tables_identical_across_backends(self, capsys):
        outputs = []
        for backend in ("python", "numpy"):
            assert main(["table1", "--scale", "tiny", "--databases", "pte",
                         "--backend", backend]) == 0
            outputs.append(capsys.readouterr().out)
        assert outputs[0] == outputs[1]


# ---------------------------------------------------------------------------
# Module-level shims (one-liner ergonomics on the default session).
# ---------------------------------------------------------------------------


class TestModuleLevelShims:
    def test_discover_shim(self):
        result = repro.discover(small_relation())
        assert isinstance(result, RunResult)
        assert result.kind == "discover"

    def test_validate_profile_and_infine_shims(self):
        relation = small_relation()
        assert repro.validate(relation, ["a -> b"]).kind == "validate"
        assert repro.profile(relation, threshold=0.5).kind == "profile"
        view = join(base("customers"), base("orders"), on="cid")
        assert repro.infine(view, tiny_catalog()).kind == "infine"

    def test_default_session_is_stable(self):
        assert default_session() is default_session()

    def test_default_session_lazy_init_is_race_free(self):
        """Concurrent first calls must all observe one session instance."""
        import repro.session as session_module

        saved = session_module._DEFAULT_SESSION
        session_module._DEFAULT_SESSION = None
        try:
            n_threads = 8
            barrier = threading.Barrier(n_threads)
            seen: list[Session] = []
            lock = threading.Lock()

            def race() -> None:
                barrier.wait()
                session = default_session()
                with lock:
                    seen.append(session)

            threads = [threading.Thread(target=race) for _ in range(n_threads)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert len(seen) == n_threads
            assert len({id(session) for session in seen}) == 1
            # All racers share the default engine state (and its counters).
            assert seen[0]._state is default_session()._state
        finally:
            session_module._DEFAULT_SESSION = saved

    def test_default_session_usable_from_many_threads(self):
        """The classic shims work concurrently on the shared default state."""
        errors: list[BaseException] = []
        barrier = threading.Barrier(4)

        def work() -> None:
            try:
                barrier.wait()
                for _ in range(3):
                    result = repro.discover(small_relation())
                    assert result.kind == "discover"
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=work) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
