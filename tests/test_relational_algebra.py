"""Tests for :mod:`repro.relational.algebra` (the SPJ operator set)."""

import pytest

from repro.relational.algebra import (
    JoinKind,
    cartesian_product,
    equi_join,
    project,
    rename,
    select,
    union,
)
from repro.relational.predicates import eq, gt
from repro.relational.relation import NULL, Relation
from repro.relational.schema import SchemaError


@pytest.fixture()
def left() -> Relation:
    return Relation("L", ("k", "a"), [(1, "x"), (2, "y"), (3, "z"), (None, "n")])


@pytest.fixture()
def right() -> Relation:
    return Relation("R", ("k", "b"), [(1, 10), (1, 11), (2, 20), (4, 40), (None, 0)])


class TestProjectSelectRename:
    def test_project_keeps_duplicates(self, left):
        projected = project(left, ["a"])
        assert len(projected) == 4

    def test_project_reorders(self, left):
        assert project(left, ["a", "k"]).attribute_names == ("a", "k")

    def test_project_unknown_attribute(self, left):
        with pytest.raises(SchemaError):
            project(left, ["nope"])

    def test_select_filters(self, left):
        assert len(select(left, gt("k", 1))) == 2

    def test_select_unknown_attribute(self, left):
        with pytest.raises(SchemaError):
            select(left, eq("zz", 1))

    def test_rename(self, left):
        renamed = rename(left, {"k": "key"})
        assert renamed.attribute_names == ("key", "a")
        assert renamed.rows == left.rows

    def test_union(self, left):
        doubled = union(left, left)
        assert len(doubled) == 2 * len(left)

    def test_union_schema_mismatch(self, left, right):
        with pytest.raises(SchemaError):
            union(left, right)

    def test_cartesian_product(self):
        first = Relation("A", ("a",), [(1,), (2,)])
        second = Relation("B", ("b",), [("x",)])
        product = cartesian_product(first, second)
        assert len(product) == 2
        assert product.attribute_names == ("a", "b")

    def test_cartesian_product_requires_disjoint(self, left):
        with pytest.raises(SchemaError):
            cartesian_product(left, left)


class TestInnerJoin:
    def test_matching_rows(self, left, right):
        joined = equi_join(left, right, ["k"])
        assert len(joined) == 3  # k=1 matches twice, k=2 once
        assert joined.attribute_names == ("k", "a", "b")

    def test_null_keys_never_match(self, left, right):
        joined = equi_join(left, right, ["k"])
        assert all(row[0] is not NULL for row in joined.rows)

    def test_same_name_join_column_appears_once(self, left, right):
        assert equi_join(left, right, ["k"]).attribute_names.count("k") == 1

    def test_different_name_join_keeps_both_columns(self):
        orders = Relation("O", ("order_ref", "total"), [(1, 10.0), (9, 1.0)])
        customers = Relation("C", ("cust_id", "name"), [(1, "ada")])
        joined = equi_join(orders, customers, ["order_ref"], ["cust_id"])
        assert set(joined.attribute_names) == {"order_ref", "total", "cust_id", "name"}
        assert joined.rows == ((1, 10.0, 1, "ada"),)

    def test_multi_attribute_join(self):
        first = Relation("A", ("x", "y", "v"), [(1, 1, "a"), (1, 2, "b")])
        second = Relation("B", ("x", "y", "w"), [(1, 1, "c"), (2, 2, "d")])
        joined = equi_join(first, second, ["x", "y"])
        assert joined.rows == ((1, 1, "a", "c"),)

    def test_key_arity_mismatch(self, left, right):
        with pytest.raises(SchemaError):
            equi_join(left, right, ["k"], ["k", "b"])

    def test_missing_join_attribute(self, left, right):
        with pytest.raises(SchemaError):
            equi_join(left, right, ["nope"])

    def test_empty_join_key_list(self, left, right):
        with pytest.raises(SchemaError):
            equi_join(left, right, [])

    def test_non_join_collision_rejected(self):
        first = Relation("A", ("k", "dup"), [(1, 1)])
        second = Relation("B", ("k", "dup"), [(1, 2)])
        with pytest.raises(SchemaError):
            equi_join(first, second, ["k"])


class TestOuterJoins:
    def test_left_outer_pads_missing(self, left, right):
        joined = equi_join(left, right, ["k"], kind=JoinKind.LEFT_OUTER)
        padded = [row for row in joined.rows if row[2] is NULL]
        # k=3 has no match; the NULL-key row also has no match.
        assert len(padded) == 2
        assert len(joined) == 5

    def test_right_outer_pads_missing(self, left, right):
        joined = equi_join(left, right, ["k"], kind=JoinKind.RIGHT_OUTER)
        assert len(joined) == 5  # 3 matches + unmatched k=4 and NULL-key row
        unmatched = [row for row in joined.rows if row[1] is NULL]
        assert any(row[0] == 4 for row in unmatched)

    def test_right_outer_backfills_shared_join_column(self, left, right):
        joined = equi_join(left, right, ["k"], kind=JoinKind.RIGHT_OUTER)
        row_for_4 = next(row for row in joined.rows if row[2] == 40)
        assert row_for_4[0] == 4  # the shared column takes the right side's value

    def test_full_outer_contains_both_paddings(self, left, right):
        joined = equi_join(left, right, ["k"], kind=JoinKind.FULL_OUTER)
        assert len(joined) == 7

    def test_semi_joins(self, left, right):
        left_semi = equi_join(left, right, ["k"], kind=JoinKind.LEFT_SEMI)
        right_semi = equi_join(left, right, ["k"], kind=JoinKind.RIGHT_SEMI)
        assert left_semi.attribute_names == left.attribute_names
        assert sorted(row[0] for row in left_semi.rows) == [1, 2]
        assert right_semi.attribute_names == right.attribute_names
        assert sorted(row[0] for row in right_semi.rows) == [1, 1, 2]

    def test_join_kind_symbols(self):
        assert JoinKind.INNER.symbol == "JOIN"
        assert JoinKind.LEFT_SEMI.is_semi
        assert not JoinKind.INNER.is_semi


class TestJoinAgainstReference:
    def test_inner_join_matches_nested_loop_semantics(self, left, right):
        joined = equi_join(left, right, ["k"])
        expected = []
        for lrow in left.rows:
            for rrow in right.rows:
                if lrow[0] is not None and lrow[0] == rrow[0]:
                    expected.append(lrow + rrow[1:])
        assert sorted(joined.rows) == sorted(expected)
