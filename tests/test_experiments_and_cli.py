"""Tests for the experiment harness, table/figure regeneration and the CLI."""

import pytest

from repro.cli import build_parser, main
from repro.datasets import load_database, view_by_key
from repro.experiments import (
    fig3_rows,
    fig4_rows,
    fig5_rows,
    render_csv,
    render_table,
    run_full_evaluation,
    run_view_experiment,
    summarise,
    table1_rows,
    table2_rows,
    table3_rows,
)


@pytest.fixture(scope="module")
def tiny_catalogs_module():
    return {db: load_database(db, "tiny") for db in ("pte", "ptc", "mimic3", "tpch")}


@pytest.fixture(scope="module")
def ptc_experiments(tiny_catalogs_module):
    return run_full_evaluation(
        "tiny", algorithms=("tane", "hyfd"), databases=["ptc"],
        catalogs=tiny_catalogs_module, measure_memory=True,
    )


class TestHarness:
    def test_single_view_experiment(self, tiny_catalogs_module):
        case = view_by_key("mimic3/patients_admissions")
        experiment = run_view_experiment(
            case, tiny_catalogs_module["mimic3"], algorithms=("tane",),
        )
        assert experiment.view_rows > 0
        assert experiment.accuracy.total_accuracy == pytest.approx(1.0)
        assert experiment.reference_fd_count == experiment.baselines["tane"].fd_count
        assert experiment.speedup_over("tane") > 0

    def test_full_evaluation_filters_by_database(self, ptc_experiments):
        assert len(ptc_experiments) == 4
        assert all(e.case.database == "ptc" for e in ptc_experiments)

    def test_all_baselines_find_the_same_fd_count(self, ptc_experiments):
        for experiment in ptc_experiments:
            counts = {m.fd_count for m in experiment.baselines.values()}
            assert counts == {experiment.reference_fd_count}

    def test_view_filter(self, tiny_catalogs_module):
        experiments = run_full_evaluation(
            "tiny", algorithms=("tane",), views=["tpch/q3"], catalogs=tiny_catalogs_module,
        )
        assert len(experiments) == 1
        assert experiments[0].case.key == "tpch/q3"

    def test_memory_measurements_present(self, ptc_experiments):
        assert all(e.infine_peak_memory_mb > 0 for e in ptc_experiments)
        assert all(m.peak_memory_mb > 0 for e in ptc_experiments for m in e.baselines.values())


class TestTablesAndFigures:
    def test_table1_covers_all_tables(self, tiny_catalogs_module):
        rows = table1_rows(catalogs=tiny_catalogs_module)
        assert len(rows) == sum(len(c) for c in tiny_catalogs_module.values())
        assert all(row["tuples"] > 0 for row in rows)
        assert all(row["fd_count"] >= 0 for row in rows)

    def test_table2_covers_sixteen_views(self, tiny_catalogs_module):
        rows = table2_rows(catalogs=tiny_catalogs_module)
        assert len(rows) == 16
        assert all(row["fd_count"] > 0 for row in rows)

    def test_table3_accuracy_columns(self, ptc_experiments):
        rows = table3_rows(ptc_experiments)
        for row in rows:
            total = row["upstageFDs_accuracy"] + row["inferFDs_accuracy"] + row["mineFDs_accuracy"]
            assert total == pytest.approx(row["total_accuracy"], abs=0.01)
            assert row["total_accuracy"] == pytest.approx(1.0)

    def test_fig3_contains_speedups(self, ptc_experiments):
        rows = fig3_rows(ptc_experiments)
        assert all("speedup_vs_tane" in row for row in rows)
        assert all(row["infine_s"] >= 0 for row in rows)

    def test_fig4_contains_memory_per_method(self, ptc_experiments):
        rows = fig4_rows(ptc_experiments)
        assert all(row["infine_mb"] > 0 for row in rows)
        assert all(row["tane_mb"] > 0 for row in rows)

    def test_fig5_percentages_sum_to_100(self, ptc_experiments):
        rows = fig5_rows(ptc_experiments)
        for row in rows:
            total = row["upstageFDs_pct"] + row["inferFDs_pct"] + row["mineFDs_pct"]
            assert total == pytest.approx(100.0, abs=0.5)


class TestReportRendering:
    ROWS = [{"name": "a", "value": 1.5}, {"name": "bb", "value": 200000.0}]

    def test_render_table_alignment(self):
        text = render_table(self.ROWS, title="demo")
        assert "demo" in text
        assert "name" in text and "value" in text
        assert "bb" in text

    def test_render_table_empty(self):
        assert "(no rows)" in render_table([])

    def test_render_csv(self):
        text = render_csv(self.ROWS)
        assert text.splitlines()[0] == "name,value"
        assert len(text.splitlines()) == 3

    def test_render_csv_empty(self):
        assert render_csv([]) == ""

    def test_summarise(self):
        stats = summarise(self.ROWS, "value")
        assert stats["min"] == 1.5
        assert stats["max"] == 200000.0


class TestCLI:
    def test_parser_accepts_all_commands(self):
        parser = build_parser()
        for command in ("table1", "table2", "table3", "fig3", "fig4", "fig5", "views", "all"):
            assert parser.parse_args([command]).command == command

    def test_views_command(self, capsys):
        assert main(["views"]) == 0
        output = capsys.readouterr().out
        assert "tpch/q3" in output

    def test_table1_command_with_scale(self, capsys):
        assert main(["table1", "--scale", "tiny", "--databases", "pte"]) == 0
        output = capsys.readouterr().out
        assert "Table I" in output and "atm" in output

    def test_fig3_command_with_output(self, capsys, tmp_path):
        assert main([
            "fig3", "--scale", "tiny", "--databases", "pte", "--views", "pte/active_drug",
            "--algorithms", "tane", "--output", str(tmp_path),
        ]) == 0
        assert (tmp_path / "fig3.csv").exists()
        assert "Fig. 3" in capsys.readouterr().out

    def test_invalid_command_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tableX"])
