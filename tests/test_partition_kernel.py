"""Equivalence and subsystem tests for the columnar partition kernel.

The flat-array :class:`StrippedPartition` must behave exactly like the
reference tuple-of-tuples implementation it replaced.  The reference
algorithms (dict-based grouping and the dict-probing partition product) are
re-implemented here as oracles and compared against the kernel on randomised
relations; the :class:`PartitionCache` subsystem (stats, LRU eviction,
best-subset composition) is exercised separately.
"""

from collections import defaultdict

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.discovery import FUN, TANE, FastFDs, HyFD, NaiveFDDiscovery
from repro.relational.partition import (
    PartitionCache,
    StrippedPartition,
    fd_holds,
    fd_holds_fast,
    fd_violation_fraction,
    fd_violation_fraction_from_partition,
)
from repro.relational.relation import NULL, Relation

# ---------------------------------------------------------------------------
# Reference (pre-columnar) implementations, kept as behavioural oracles.
# ---------------------------------------------------------------------------


def reference_groups(relation, attributes):
    """Stripped groups via dict-of-lists over raw row values."""
    if not attributes:
        groups = [list(range(len(relation)))]
    else:
        idxs = relation.schema.indexes_of(attributes)
        index = defaultdict(list)
        for position, row in enumerate(relation.rows):
            index[tuple(row[i] for i in idxs)].append(position)
        groups = list(index.values())
    return {frozenset(g) for g in groups if len(g) > 1}


def reference_intersect(first, second):
    """The seed's dict-probing partition product, on group views."""
    group_of = {}
    for group_id, group in enumerate(first.groups):
        for position in group:
            group_of[position] = group_id
    buckets = defaultdict(list)
    for other_id, group in enumerate(second.groups):
        for position in group:
            own_id = group_of.get(position)
            if own_id is not None:
                buckets[(own_id, other_id)].append(position)
    return {frozenset(g) for g in buckets.values() if len(g) > 1}


def reference_refines(first, second):
    class_of = {}
    for group_id, group in enumerate(second.groups):
        for position in group:
            class_of[position] = group_id
    for group in first.groups:
        head = class_of.get(group[0], -1 - group[0])
        for position in group[1:]:
            if class_of.get(position, -1 - position) != head:
                return False
    return True


def reference_violation_fraction(relation, lhs, rhs):
    if not len(relation):
        return 0.0
    rhs_idx = relation.schema.index_of(rhs)
    removals = 0
    for group in reference_groups(relation, sorted(lhs)):
        counts = defaultdict(int)
        for position in group:
            counts[relation.rows[position][rhs_idx]] += 1
        removals += len(group) - max(counts.values())
    return removals / len(relation)


def group_view(partition):
    return {frozenset(group) for group in partition.groups}


rows_strategy = st.lists(
    st.tuples(st.integers(0, 4), st.integers(0, 3), st.integers(0, 2), st.integers(0, 5)),
    min_size=0,
    max_size=40,
)

ATTRS = ("a", "b", "c", "d")


def make_relation(rows):
    return Relation("r", ATTRS, rows)


# ---------------------------------------------------------------------------
# Old-vs-new equivalence on randomised relations.
# ---------------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy)
def test_from_columns_matches_reference(rows):
    relation = make_relation(rows)
    for attributes in ((), ("a",), ("a", "b"), ("b", "c", "d"), ATTRS):
        partition = StrippedPartition.from_columns(relation, attributes)
        assert group_view(partition) == reference_groups(relation, attributes)
        assert partition.n_rows == len(relation)


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy)
def test_intersect_matches_reference(rows):
    relation = make_relation(rows)
    partitions = [StrippedPartition.from_column(relation, a) for a in ATTRS]
    for i in range(len(ATTRS)):
        for j in range(len(ATTRS)):
            if i == j:
                continue
            product = partitions[i].intersect(partitions[j])
            assert group_view(product) == reference_intersect(partitions[i], partitions[j])
            assert product == StrippedPartition.from_columns(relation, (ATTRS[i], ATTRS[j]))


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy)
def test_refines_and_error_match_reference(rows):
    relation = make_relation(rows)
    partitions = {a: StrippedPartition.from_column(relation, a) for a in ATTRS}
    pair = StrippedPartition.from_columns(relation, ("a", "b"))
    for first in ATTRS:
        groups = reference_groups(relation, (first,))
        stripped_size = sum(len(g) for g in groups)
        assert partitions[first].error == stripped_size - len(groups)
        for second in ATTRS:
            assert partitions[first].refines(partitions[second]) == reference_refines(
                partitions[first], partitions[second]
            )
        assert pair.refines(partitions[first]) == reference_refines(pair, partitions[first])


@settings(max_examples=60, deadline=None)
@given(rows=rows_strategy)
def test_g3_and_fd_checks_match_reference(rows):
    relation = make_relation(rows)
    cache = PartitionCache(relation)
    for lhs, rhs in ((("a",), "b"), (("b",), "c"), (("a", "c"), "d"), (("d",), "a")):
        expected = reference_violation_fraction(relation, lhs, rhs)
        assert fd_violation_fraction(relation, lhs, rhs, cache) == pytest.approx(expected)
        if len(relation):
            assert fd_violation_fraction_from_partition(
                relation, cache.get(lhs), rhs
            ) == pytest.approx(expected)
            assert fd_holds_fast(relation, cache.get(lhs), rhs) == (expected == 0.0)
        assert fd_holds(relation, lhs, rhs, cache) == (expected == 0.0)


@settings(max_examples=15, deadline=None)
@given(
    rows=st.lists(
        st.tuples(st.integers(0, 2), st.integers(0, 2), st.integers(0, 1)),
        min_size=0,
        max_size=16,
    )
)
def test_discovery_algorithms_agree_on_new_kernel(rows):
    relation = Relation("r", ("a", "b", "c"), rows)
    oracle = set(NaiveFDDiscovery().discover(relation).as_list())
    for algorithm in (TANE(), FUN(), FastFDs(), HyFD()):
        assert set(algorithm.discover(relation).as_list()) == oracle


# ---------------------------------------------------------------------------
# Columnar encodings.
# ---------------------------------------------------------------------------


class TestColumnCodes:
    def test_codes_are_dense_and_order_preserving(self):
        relation = Relation("r", ("a",), [("x",), ("y",), ("x",), ("z",)])
        codes, n_codes = relation.column_codes("a")
        assert list(codes) == [0, 1, 0, 2]
        assert n_codes == 3
        assert relation.column_code_count("a") == 3

    def test_codes_are_cached(self):
        relation = Relation("r", ("a",), [(1,), (2,)])
        assert relation.column_codes("a")[0] is relation.column_codes("a")[0]

    def test_null_is_an_ordinary_value(self):
        relation = Relation("r", ("a",), [(NULL,), (1,), (NULL,)])
        codes, n_codes = relation.column_codes("a")
        assert list(codes) == [0, 1, 0]
        assert n_codes == 2

    def test_combined_codes_match_tuple_grouping(self):
        relation = Relation(
            "r", ("a", "b"), [(1, "x"), (1, "y"), (2, "x"), (1, "x"), (2, "x")]
        )
        codes, n_codes = relation.combined_column_codes(("a", "b"))
        assert n_codes == 3
        assert codes[0] == codes[3]
        assert codes[2] == codes[4]
        assert len({codes[0], codes[1], codes[2]}) == 3


# ---------------------------------------------------------------------------
# PartitionCache subsystem: stats, LRU eviction, composition.
# ---------------------------------------------------------------------------


@pytest.fixture()
def relation():
    return Relation(
        "r",
        ("a", "b", "c"),
        [(1, "x", 10), (1, "x", 10), (2, "y", 10), (2, "y", 20), (3, "x", 30)],
    )


class TestPartitionCacheSubsystem:
    def test_hit_and_miss_counters(self, relation):
        cache = PartitionCache(relation)
        cache.get(["a"])
        cache.get(["a"])
        cache.get(["a", "b"])
        cache.get(["b", "a"])
        stats = cache.stats
        assert stats.hits == 2
        assert stats.requests == stats.hits + stats.misses
        assert 0.0 < stats.hit_rate < 1.0

    def test_unbounded_cache_never_evicts(self, relation):
        cache = PartitionCache(relation)
        for attrs in (["a", "b"], ["b", "c"], ["a", "c"], ["a", "b", "c"]):
            cache.get(attrs)
        assert cache.stats.evictions == 0

    def test_lru_eviction_under_memory_budget(self, relation):
        cache = PartitionCache(relation, max_positions=1)
        first = cache.get(["a", "b"])
        second = cache.get(["b", "c"])
        assert cache.stats.evictions >= 1
        assert cache.held_positions <= max(1, second.stripped_size)
        # Evicted combinations are recomputed correctly on demand.
        assert cache.get(["a", "b"]) == first
        assert cache.stats.evictions >= 2

    def test_eviction_keeps_pinned_singletons(self, relation):
        cache = PartitionCache(relation, max_positions=1)
        single = cache.get(["a"])
        for attrs in (["a", "b"], ["b", "c"], ["a", "c"]):
            cache.get(attrs)
        # The singleton basis is pinned: repeated get returns the same object.
        assert cache.get(["a"]) is single

    def test_lru_evicts_least_recently_used_first(self, relation):
        budget = StrippedPartition.from_columns(relation, ["a", "b"]).stripped_size + 1
        cache = PartitionCache(relation, max_positions=budget)
        ab = cache.get(["a", "b"])
        cache.get(["b", "c"])  # evicts nothing yet or ab depending on sizes
        cache.get(["a", "b"])  # refresh ab if still cached
        evictions_before = cache.stats.evictions
        cache.get(["a", "c"])  # must evict someone, never the freshest entry
        assert cache.stats.evictions > evictions_before
        assert cache.get(["a", "b"]) == ab

    def test_composition_prefers_fewest_groups_subset(self, relation):
        cache = PartitionCache(relation)
        cache.get(["a", "b"])
        cache.get(["b", "c"])
        misses_before = cache.stats.misses
        result = cache.get(["a", "b", "c"])
        assert result == StrippedPartition.from_columns(relation, ["a", "b", "c"])
        # Composed from a cached 2-subset plus one pinned/cached singleton:
        # exactly one new miss for the requested key itself (the singleton
        # lookup may hit or miss depending on prior requests).
        assert cache.stats.misses - misses_before <= 2

    def test_results_identical_with_and_without_bound(self, relation):
        bounded = PartitionCache(relation, max_positions=1)
        unbounded = PartitionCache(relation)
        for attrs in (["a"], ["a", "b"], ["b", "c"], ["a", "b", "c"], ["a", "b"]):
            assert bounded.get(attrs) == unbounded.get(attrs)
        assert bounded.stats.evictions >= 1
