"""Tests for coverage, accuracy and profiling metrics."""

import pytest

from repro.fd import FDSet, fd
from repro.infine import FDType, InFine, StraightforwardPipeline
from repro.metrics import (
    BREAKDOWN_STEPS,
    accuracy_breakdown,
    join_coverage,
    paper_step_of,
    profile_call,
    repeat_profile,
    self_breakdown,
    side_coverage,
    view_coverage,
)
from repro.relational.relation import NULL, Relation
from repro.relational.view import base, join, proj


class TestCoverage:
    def test_one_to_one_join_has_coverage_one(self):
        left = Relation("L", ("k", "a"), [(1, "x"), (2, "y")])
        right = Relation("R", ("k", "b"), [(1, "p"), (2, "q")])
        assert join_coverage(left, right, ["k"]) == pytest.approx(1.0)

    def test_no_matching_tuples_is_zero(self):
        left = Relation("L", ("k",), [(1,), (2,)])
        right = Relation("R", ("k",), [(3,)])
        assert join_coverage(left, right, ["k"]) == pytest.approx(0.0)

    def test_repeating_join_raises_coverage_above_one(self):
        left = Relation("L", ("k",), [(1,)])
        right = Relation("R", ("k", "b"), [(1, "a"), (1, "b"), (1, "c")])
        assert join_coverage(left, right, ["k"]) > 1.0

    def test_dangling_tuples_lower_coverage(self):
        left = Relation("L", ("k",), [(1,), (2,), (3,), (4,)])
        right = Relation("R", ("k",), [(1,), (2,)])
        assert join_coverage(left, right, ["k"]) < 1.0

    def test_null_keys_are_ignored(self):
        left = Relation("L", ("k",), [(1,), (NULL,)])
        right = Relation("R", ("k",), [(1,)])
        assert join_coverage(left, right, ["k"]) == pytest.approx(1.0)

    def test_side_coverage_empty(self):
        from collections import Counter

        assert side_coverage(Counter(), Counter()) == 0.0

    def test_view_coverage_uses_outermost_join(self):
        catalog = {
            "A": Relation("A", ("k", "a"), [(1, "x"), (2, "y")]),
            "B": Relation("B", ("k", "m"), [(1, 10), (2, 20)]),
            "C": Relation("C", ("m", "c"), [(10, "p")]),
        }
        view = join(join(base("A"), base("B"), on="k"), base("C"), on="m")
        assert view_coverage(view, catalog) < 1.0

    def test_view_without_join_has_coverage_one(self):
        catalog = {"A": Relation("A", ("a",), [(1,)])}
        assert view_coverage(proj(base("A"), ["a"]), catalog) == 1.0


class TestAccuracy:
    @pytest.fixture()
    def run_and_reference(self, clinical_catalog):
        view = join(base("patient"), base("admission"), on="subject_id")
        result = InFine().run(view, clinical_catalog)
        reference = StraightforwardPipeline("tane").run(view, clinical_catalog).fds
        return result, reference

    def test_total_accuracy_is_one(self, run_and_reference):
        result, reference = run_and_reference
        breakdown = accuracy_breakdown(result, reference)
        assert breakdown.total_accuracy == pytest.approx(1.0)
        assert breakdown.missing == []

    def test_step_accuracies_sum_to_total(self, run_and_reference):
        result, reference = run_and_reference
        breakdown = accuracy_breakdown(result, reference)
        total = sum(breakdown.step_accuracy(step) for step in BREAKDOWN_STEPS)
        assert total == pytest.approx(breakdown.total_accuracy)

    def test_as_dict_contains_all_steps(self, run_and_reference):
        result, reference = run_and_reference
        as_dict = accuracy_breakdown(result, reference).as_dict()
        for step in BREAKDOWN_STEPS:
            assert f"{step}_accuracy" in as_dict
        assert as_dict["fd_count"] > 0

    def test_missing_fds_are_reported(self, run_and_reference):
        result, _ = run_and_reference
        fabricated = FDSet([fd("gender", "admittime")])
        breakdown = accuracy_breakdown(result, fabricated)
        assert breakdown.total_accuracy < 1.0
        assert fabricated.as_list()[0] in breakdown.missing

    def test_empty_reference(self, run_and_reference):
        result, _ = run_and_reference
        breakdown = accuracy_breakdown(result, FDSet())
        assert breakdown.total_accuracy == 1.0

    def test_paper_step_mapping(self):
        assert paper_step_of(FDType.BASE) == "upstageFDs"
        assert paper_step_of(FDType.UPSTAGED_LEFT) == "upstageFDs"
        assert paper_step_of(FDType.INFERRED) == "inferFDs"
        assert paper_step_of(FDType.JOIN) == "mineFDs"

    def test_self_breakdown_fractions_sum_to_one(self, run_and_reference):
        result, _ = run_and_reference
        fractions = self_breakdown(result)
        assert sum(fractions.values()) == pytest.approx(1.0)


class TestProfiling:
    def test_profile_call_returns_value_and_time(self):
        profile = profile_call(sum, [1, 2, 3])
        assert profile.value == 6
        assert profile.seconds >= 0
        assert profile.peak_memory_bytes >= 0
        assert profile.peak_memory_mb == profile.peak_memory_bytes / (1024 * 1024)

    def test_profile_call_without_memory_tracing(self):
        profile = profile_call(sorted, list(range(100)), trace_memory=False)
        assert profile.peak_memory_bytes == 0

    def test_profile_detects_allocation(self):
        profile = profile_call(lambda: [0] * 200_000)
        assert profile.peak_memory_bytes > 100_000

    def test_repeat_profile(self):
        profile, mean_seconds = repeat_profile(lambda: sum(range(1000)), repeats=3)
        assert profile.value == sum(range(1000))
        assert mean_seconds >= 0

    def test_repeat_profile_rejects_zero_repeats(self):
        with pytest.raises(ValueError):
            repeat_profile(lambda: None, repeats=0)
