"""Tests for the multi-tenant serving layer (``repro.serve``).

Covers the wire protocol round-trip, session pooling and eviction, the job
queue's states/backpressure/fairness/timeouts, tenant isolation under
concurrency (the acceptance criterion: ≥ 4 concurrent tenants with fully
isolated ``KernelCounters`` and results byte-identical to bare sessions),
and the stdlib HTTP endpoint including the ``python -m repro serve`` CLI.
"""

from __future__ import annotations

import http.client
import json
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.config import ConfigError, load_tenant_configs, parse_tenant_configs
from repro.relational.relation import Relation
from repro.serve import (
    CANCELLED,
    DONE,
    FAILED,
    QUEUED,
    HttpFrontend,
    JobQueue,
    JobRequest,
    JobTicket,
    ProtocolError,
    QueueClosed,
    QueueFull,
    Server,
    SessionPool,
    execute_request,
    relation_from_payload,
    relation_to_payload,
)
from repro.session import Session

pytestmark = pytest.mark.slow

_SRC = Path(__file__).resolve().parent.parent / "src"

#: Generous bound for waits that should complete almost instantly; tests
#: fail fast instead of hanging when something deadlocks.
WAIT = 30.0


def make_relation(name: str = "t", n_rows: int = 60, salt: int = 0) -> Relation:
    """A small relation with planted FDs (a -> b via the modulus chain)."""
    rows = [(i % 6, (i % 6) * 2, (i + salt) % 4, f"v{(i + salt) % 3}") for i in range(n_rows)]
    return Relation(name, ("a", "b", "c", "d"), rows)


def discover_payload(tenant: str, relation: Relation, **params) -> dict:
    return {
        "schema": "repro/job-request-v1",
        "tenant": tenant,
        "kind": "discover",
        "relation": relation_to_payload(relation),
        "params": {"algorithm": "tane", **params},
        "overrides": {},
    }


class TestProtocol:
    def test_relation_payload_round_trip(self):
        relation = make_relation()
        payload = relation_to_payload(relation)
        decoded = relation_from_payload(json.loads(json.dumps(payload)))
        assert decoded.name == relation.name
        assert decoded.attribute_names == relation.attribute_names
        assert decoded.rows == relation.rows

    def test_request_payload_round_trip(self):
        request = JobRequest.from_payload(discover_payload("acme", make_relation()))
        again = JobRequest.from_payload(request.to_payload())
        assert again.tenant == "acme"
        assert again.kind == "discover"
        assert again.params == request.params
        assert again.relation.rows == request.relation.rows

    def test_ticket_payload_round_trip(self):
        ticket = JobTicket(job_id="job-1", tenant="acme", status=QUEUED)
        assert JobTicket.from_payload(ticket.to_payload()) == ticket

    @pytest.mark.parametrize(
        "mutate, message",
        [
            (lambda p: p.update(schema="nope"), "schema"),
            (lambda p: p.update(kind="explode"), "kind"),
            (lambda p: p.update(tenant=""), "tenant"),
            (lambda p: p.update(params={"bogus": 1}), "unknown params"),
            (lambda p: p.update(extra_field=1), "unknown job request fields"),
            (lambda p: p.update(overrides={"nope": 1}), "overrides"),
            (lambda p: p.update(relation={"name": "", "attributes": []}), "name"),
            (lambda p: p.update(relation="nope"), "mapping"),
            (lambda p: p.update(kind="validate", params={"fds": 42}), "must be a list"),
            (lambda p: p.update(kind="validate", params={"fds": [42]}), "fds items"),
            (lambda p: p.update(params={"algorithm": 7}), "algorithm"),
            (lambda p: p.update(params={"attributes": "a"}), "attributes"),
            (lambda p: p.update(params={"max_lhs_size": "x"}), "max_lhs_size"),
            (
                lambda p: p.update(kind="profile", params={"threshold": "hot"}),
                "threshold",
            ),
            (
                lambda p: p.update(kind="profile", params={"max_lhs": 1.5}),
                "max_lhs",
            ),
        ],
    )
    def test_malformed_requests_rejected(self, mutate, message):
        payload = discover_payload("acme", make_relation())
        mutate(payload)
        with pytest.raises(ProtocolError, match=message):
            JobRequest.from_payload(payload)

    def test_validate_requires_fds(self):
        payload = discover_payload("acme", make_relation())
        payload["kind"] = "validate"
        payload["params"] = {}
        with pytest.raises(ProtocolError, match="fds"):
            JobRequest.from_payload(payload)

    def test_execute_request_matches_session_verbs(self):
        relation = make_relation()
        session = Session()
        request = JobRequest(
            tenant="acme",
            kind="validate",
            relation=relation,
            params={"fds": ["a -> b", [["c"], "d"]]},
        )
        served = execute_request(session, request)
        direct = Session().validate(make_relation(), ["a -> b", (["c"], "d")])
        assert served.artifacts == direct.artifacts


class TestTenantConfigs:
    def test_parse_with_default_layering(self):
        configs = parse_tenant_configs(
            {"*": {"backend": "python"}, "acme": {"marks_cache_bytes": 1 << 20}}
        )
        assert configs["*"].backend == "python"
        assert configs["acme"].backend == "python"
        assert configs["acme"].marks_cache_bytes == 1 << 20

    def test_unknown_field_names_tenant(self):
        with pytest.raises(ConfigError, match="acme"):
            parse_tenant_configs({"acme": {"bogus": 1}})

    def test_non_mapping_rejected(self):
        with pytest.raises(ConfigError):
            parse_tenant_configs([("acme", {})])

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text(json.dumps({"acme": {"backend": "python"}}))
        configs = load_tenant_configs(path)
        assert configs["acme"].backend == "python"

    def test_load_invalid_json(self, tmp_path):
        path = tmp_path / "tenants.json"
        path.write_text("{nope")
        with pytest.raises(ConfigError, match="invalid JSON"):
            load_tenant_configs(path)


class TestSessionPool:
    def test_lazy_creation_and_reuse(self):
        pool = SessionPool()
        first = pool.get("acme")
        assert pool.get("acme") is first
        assert pool.stats()["created"] == 1
        assert pool.stats()["hits"] == 1

    def test_per_tenant_config(self):
        configs = parse_tenant_configs(
            {"*": {"batch_min_candidates": 7}, "acme": {"backend": "python"}}
        )
        pool = SessionPool(configs)
        assert pool.get("acme").config.backend == "python"
        assert pool.get("acme").config.batch_min_candidates == 7
        assert pool.get("other").config.batch_min_candidates == 7

    def test_lru_eviction_caps_sessions(self):
        pool = SessionPool(max_sessions=2)
        a, b = pool.get("a"), pool.get("b")
        pool.get("a")  # refresh a: b is now least recently used
        pool.get("c")
        assert set(pool.tenants()) == {"a", "c"}
        assert pool.stats()["evicted"] == 1
        assert pool.get("b") is not b  # recreated on demand, evicting "a"
        assert set(pool.tenants()) == {"c", "b"}
        assert pool.get("a") is not a

    def test_evict_and_close(self):
        pool = SessionPool()
        pool.get("a")
        assert pool.evict("a") is True
        assert pool.evict("a") is False
        pool.get("a")
        pool.get("b")
        pool.close()
        assert len(pool) == 0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            SessionPool(max_sessions=0)
        with pytest.raises(ValueError):
            SessionPool().get("")

    def test_lru_eviction_races_concurrent_submissions_for_one_tenant(self):
        """Eviction is claimed always-safe: it only drops the pool's cache
        reference, so a session handed out before its eviction keeps
        working and every result stays byte-identical.  Pin that under
        threads: submitters hammer one hot tenant while a churn thread
        forces constant LRU turnover of a 2-slot pool."""
        pool = SessionPool(max_sessions=2)
        relation = make_relation(n_rows=24)
        expected = Session().discover(make_relation(n_rows=24), algorithm="tane").payload
        stop = threading.Event()
        errors: list[BaseException] = []
        payloads: list[dict] = []
        lock = threading.Lock()

        def submitter():
            try:
                while not stop.is_set():
                    result = pool.get("hot").discover(relation, algorithm="tane")
                    with lock:
                        payloads.append(result.payload)
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        def churner():
            try:
                i = 0
                while not stop.is_set():
                    # Two fresh tenants per lap: "hot" is always the LRU
                    # loser, so submitters constantly race its eviction.
                    pool.get(f"cold-{i % 8}")
                    i += 1
            except BaseException as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=submitter) for _ in range(4)]
        threads.append(threading.Thread(target=churner))
        for thread in threads:
            thread.start()
        time.sleep(1.0)
        stop.set()
        for thread in threads:
            thread.join(timeout=WAIT)
            assert not thread.is_alive()
        assert errors == []
        assert len(payloads) > 0
        for payload in payloads:
            assert payload["artifacts"] == expected["artifacts"]
        stats = pool.stats()
        assert stats["evicted"] > 0, "the race never actually evicted"
        assert len(pool) <= 2


class TestJobQueue:
    def test_job_runs_to_done(self):
        with JobQueue(workers=2) as queue:
            job = queue.submit("acme", lambda: 42)
            assert job.wait(WAIT)
            assert job.status == DONE
            assert job.result == 42
            assert queue.get(job.job_id) is job

    def test_exception_becomes_failed(self):
        with JobQueue(workers=1) as queue:
            job = queue.submit("acme", lambda: 1 / 0)
            assert job.wait(WAIT)
            assert job.status == FAILED
            assert "ZeroDivisionError" in job.error

    def test_backpressure_raises_queue_full(self):
        gate = threading.Event()
        started = threading.Event()

        def blocked():
            started.set()
            gate.wait(WAIT)

        queue = JobQueue(workers=1, max_queue=2)
        try:
            queue.submit("acme", blocked)
            assert started.wait(WAIT)  # worker busy; queue now empty
            queue.submit("acme", lambda: None)
            queue.submit("acme", lambda: None)
            with pytest.raises(QueueFull) as excinfo:
                queue.submit("acme", lambda: None)
            assert queue.stats()["rejected"] == 1
            # The programmatic backpressure hint: seconds of backlog per
            # worker, never zero (clients must actually back off).
            assert excinfo.value.retry_after >= 1
        finally:
            gate.set()
            queue.close()

    def test_cancel_queued_job(self):
        gate = threading.Event()
        queue = JobQueue(workers=1)
        try:
            running = queue.submit("acme", lambda: gate.wait(WAIT))
            queued = queue.submit("acme", lambda: None)
            assert queue.cancel(queued.job_id) is True
            assert queued.status == CANCELLED
            assert queued.wait(WAIT)
            gate.set()
            assert running.wait(WAIT)
            assert queue.cancel(running.job_id) is False  # already finished
        finally:
            gate.set()
            queue.close()

    def test_queue_wait_timeout_expires_job(self):
        gate = threading.Event()
        queue = JobQueue(workers=1)
        try:
            queue.submit("acme", lambda: gate.wait(WAIT))
            doomed = queue.submit("acme", lambda: None, timeout=0.05)
            time.sleep(0.1)  # let the deadline lapse while the worker is busy
            gate.set()
            assert doomed.wait(WAIT)
            assert doomed.status == CANCELLED
            assert "timed out" in doomed.error
            assert queue.stats()["expired"] == 1
        finally:
            gate.set()
            queue.close()

    def test_per_tenant_fairness_prevents_starvation(self):
        """A flooding tenant cannot hold both workers; others still run."""
        gate = threading.Event()
        a_started = threading.Event()
        b_started = threading.Event()

        def work(event):
            event.set()
            gate.wait(WAIT)

        queue = JobQueue(workers=2, max_inflight_per_tenant=1)
        try:
            queue.submit("flooder", lambda: work(a_started))
            second = queue.submit("flooder", lambda: work(threading.Event()))
            victim = queue.submit("victim", lambda: work(b_started))
            assert a_started.wait(WAIT)
            # With both the flooder's jobs ahead of the victim in FIFO order,
            # fairness must skip the flooder's second job and run the victim.
            assert b_started.wait(WAIT)
            assert second.status == QUEUED
            gate.set()
            assert second.wait(WAIT) and victim.wait(WAIT)
            assert second.status == DONE and victim.status == DONE
        finally:
            gate.set()
            queue.close()

    def test_close_cancels_queued_and_rejects_submissions(self):
        gate = threading.Event()
        started = threading.Event()

        def blocked():
            started.set()
            gate.wait(WAIT)
            return "done"

        queue = JobQueue(workers=1)
        running = queue.submit("acme", blocked)
        assert started.wait(WAIT)  # the worker holds the running job
        queued = queue.submit("acme", lambda: None)
        closer = threading.Thread(target=queue.close)
        closer.start()
        assert queued.wait(WAIT)  # close() cancels it while `running` blocks
        assert queued.status == CANCELLED
        gate.set()
        closer.join(WAIT)
        assert running.wait(WAIT)
        assert running.status == DONE
        with pytest.raises(QueueClosed):
            queue.submit("acme", lambda: None)

    def test_finished_jobs_are_eventually_forgotten(self):
        with JobQueue(workers=1, max_finished_retained=2) as queue:
            jobs = [queue.submit("acme", lambda i=i: i) for i in range(4)]
            for job in jobs:
                assert job.wait(WAIT)
            with pytest.raises(KeyError):
                queue.get(jobs[0].job_id)
            assert queue.get(jobs[-1].job_id).result == 3

    def test_invalid_arguments(self):
        for kwargs in (
            {"workers": 0},
            {"max_queue": 0},
            {"max_inflight_per_tenant": 0},
        ):
            with pytest.raises(ValueError):
                JobQueue(**kwargs)


class TestServerIsolation:
    """The acceptance criterion: concurrent tenants share nothing."""

    N_TENANTS = 4
    JOBS_PER_TENANT = 3

    def _payloads(self, tenant: str, index: int) -> list[dict]:
        relation = make_relation(name=f"r{index}", salt=index)
        wire = relation_to_payload(relation)
        base = {"schema": "repro/job-request-v1", "tenant": tenant, "relation": wire}
        return [
            {**base, "kind": "discover", "params": {"algorithm": "tane"}},
            {
                **base,
                "kind": "validate",
                "params": {"fds": ["a -> b", "c -> d", [["a", "c"], "d"]]},
            },
            {**base, "kind": "profile", "params": {"threshold": 0.4, "max_lhs": 2}},
        ]

    def test_concurrent_tenants_isolated_counters_and_identical_bytes(self):
        # Pinned to the thread executor: the assertions replay the *parent*
        # pool's per-tenant counters, which only the in-process executor
        # uses (process-executor parity is pinned in test_serve_executor).
        tenants = [f"tenant-{i}" for i in range(self.N_TENANTS)]
        payload_sets = {
            tenant: self._payloads(tenant, index) for index, tenant in enumerate(tenants)
        }
        with Server(workers=self.N_TENANTS, max_queue=64, executor="thread") as server:
            tickets: dict[str, list] = {tenant: [] for tenant in tenants}
            # Interleave submissions so all four tenants contend for workers.
            for round_index in range(self.JOBS_PER_TENANT):
                for tenant in tenants:
                    ticket = server.submit(payload_sets[tenant][round_index])
                    tickets[tenant].append(ticket)
            results = {
                tenant: [server.result(t.job_id, timeout=WAIT) for t in tickets[tenant]]
                for tenant in tenants
            }
            served_counters = {
                tenant: server.pool.peek(tenant).kernel_stats() for tenant in tenants
            }
        # Replay each tenant's exact workload on a bare session: counters must
        # match (nothing leaked between tenants under contention) and every
        # artefact must be byte-identical.
        for tenant in tenants:
            bare_session = Session()
            for payload, served in zip(payload_sets[tenant], results[tenant]):
                request = JobRequest.from_payload(payload)
                bare = execute_request(bare_session, request)
                assert bare.artifact_fingerprint() == served.artifact_fingerprint()
                served_bytes = json.dumps(served.payload["artifacts"], sort_keys=True)
                bare_bytes = json.dumps(bare.payload["artifacts"], sort_keys=True)
                assert served_bytes == bare_bytes
            assert served_counters[tenant] == bare_session.kernel_stats()

    def test_counters_do_not_leak_between_tenants(self):
        with Server(workers=2, executor="thread") as server:
            busy, idle = "busy", "idle"
            server.result(server.submit(self._payloads(idle, 0)[0]).job_id, WAIT)
            idle_before = server.pool.peek(idle).kernel_stats()
            for payload in self._payloads(busy, 1) * 2:
                server.result(server.submit(payload).job_id, timeout=WAIT)
            assert server.pool.peek(idle).kernel_stats() == idle_before


class TestServer:
    def test_failed_job_reports_error(self):
        payload = discover_payload("acme", make_relation())
        payload["params"]["algorithm"] = "no-such-algorithm"
        with Server(workers=1) as server:
            ticket = server.submit(payload)
            job = server.queue.get(ticket.job_id)
            assert job.wait(WAIT)
            assert server.status(ticket.job_id)["status"] == FAILED
            with pytest.raises(RuntimeError, match="no-such-algorithm"):
                server.result(ticket.job_id, timeout=WAIT)

    def test_result_timeout(self, monkeypatch):
        gate = threading.Event()
        monkeypatch.setattr(
            "repro.serve.server.execute_request",
            lambda session, request: gate.wait(WAIT),
        )
        # Monkeypatched execution only exists in this process: pin thread.
        with Server(workers=1, executor="thread") as server:
            ticket = server.submit(discover_payload("acme", make_relation()))
            with pytest.raises(TimeoutError):
                server.result(ticket.job_id, timeout=0.05)
            gate.set()

    def test_status_payload_shape(self):
        with Server(workers=1) as server:
            ticket = server.submit(discover_payload("acme", make_relation()))
            result = server.result(ticket.job_id, timeout=WAIT)
            status = server.status(ticket.job_id)
            assert status["schema"] == "repro/job-status-v1"
            assert status["status"] == DONE
            assert status["kind"] == "discover"
            assert status["result"] == result.payload
            assert status["error"] is None

    def test_overrides_reach_the_engine(self):
        payload = discover_payload("acme", make_relation())
        payload["overrides"] = {"backend": "python"}
        with Server(workers=1) as server:
            result = server.result(server.submit(payload).job_id, timeout=WAIT)
        assert result.backend == "python"
        assert result.config.backend == "python"

    def test_per_tenant_config_reaches_results(self):
        configs = parse_tenant_configs({"acme": {"backend": "python"}})
        with Server(tenant_configs=configs, workers=1) as server:
            result = server.result(
                server.submit(discover_payload("acme", make_relation())).job_id,
                timeout=WAIT,
            )
        assert result.backend == "python"


def _http(host, port, method, path, body=None):
    conn = http.client.HTTPConnection(host, port, timeout=WAIT)
    try:
        conn.request(
            method,
            path,
            None if body is None else json.dumps(body),
            {"Content-Type": "application/json"},
        )
        response = conn.getresponse()
        return response.status, json.loads(response.read())
    finally:
        conn.close()


class TestHttpFrontend:
    @pytest.fixture()
    def frontend(self):
        server = Server(workers=2, max_queue=8)
        frontend = HttpFrontend(server, port=0).start()
        yield frontend
        frontend.stop()
        server.close()

    def test_submit_poll_fetch_round_trip(self, frontend):
        host, port = frontend.address
        relation = make_relation()
        status, ticket = _http(host, port, "POST", "/jobs", discover_payload("acme", relation))
        assert status == 202
        assert ticket["schema"] == "repro/job-ticket-v1"
        deadline = time.monotonic() + WAIT
        while True:
            status, body = _http(host, port, "GET", f"/jobs/{ticket['job_id']}")
            assert status == 200
            if body["status"] in (DONE, FAILED):
                break
            assert time.monotonic() < deadline, "job did not finish in time"
            time.sleep(0.02)
        assert body["status"] == DONE
        bare = Session().discover(make_relation(), algorithm="tane")
        assert body["result"]["artifacts"] == bare.payload["artifacts"]

    def test_health_stats_and_errors(self, frontend):
        host, port = frontend.address
        status, health = _http(host, port, "GET", "/healthz")
        assert status == 200
        assert health["status"] == "ok" and health["degraded"] is False
        assert health["executor"]["executor"] in ("thread", "process")
        status, stats = _http(host, port, "GET", "/stats")
        assert status == 200 and "queue" in stats and "pool" in stats
        assert _http(host, port, "GET", "/jobs/job-unknown")[0] == 404
        assert _http(host, port, "GET", "/bogus")[0] == 404
        assert _http(host, port, "POST", "/jobs", {"schema": "nope"})[0] == 400
        assert _http(host, port, "DELETE", "/jobs/job-unknown")[0] == 404

    def test_malformed_params_rejected_at_submit_not_in_worker(self, frontend):
        """The documented contract: shape/type errors are 400, never `failed`."""
        host, port = frontend.address
        payload = discover_payload("acme", make_relation(n_rows=4))
        payload["kind"] = "validate"
        payload["params"] = {"fds": 42}
        status, body = _http(host, port, "POST", "/jobs", payload)
        assert status == 400
        assert "fds" in body["error"]
        assert frontend.app.queue.stats()["submitted"] == 0

    def test_unread_body_error_closes_the_connection(self, frontend):
        """Early-exit POST errors must not corrupt HTTP/1.1 keep-alive: the
        unread body would be parsed as the next request line otherwise."""
        host, port = frontend.address
        conn = http.client.HTTPConnection(host, port, timeout=WAIT)
        try:
            conn.putrequest("POST", "/jobs")
            conn.putheader("Content-Type", "application/json")
            # Declared far beyond max_body_bytes; only a stub is ever sent.
            conn.putheader("Content-Length", str(1 << 30))
            conn.endheaders()
            conn.send(b'{"x": 1}')
            response = conn.getresponse()
            assert response.status == 400
            assert response.getheader("Connection") == "close"
            assert response.will_close
            response.read()
        finally:
            conn.close()
        # A fresh connection keeps working.
        assert _http(host, port, "GET", "/healthz")[0] == 200

    def test_backpressure_maps_to_429(self, monkeypatch):
        gate = threading.Event()
        monkeypatch.setattr(
            "repro.serve.server.execute_request",
            lambda session, request: gate.wait(WAIT),
        )
        server = Server(workers=1, max_queue=1, executor="thread")
        frontend = HttpFrontend(server, port=0).start()
        try:
            host, port = frontend.address
            payload = discover_payload("acme", make_relation(n_rows=4))
            assert _http(host, port, "POST", "/jobs", payload)[0] == 202
            # Wait until the worker picked the first job up, then fill the
            # single queue slot; the next submission must bounce with 429.
            deadline = time.monotonic() + WAIT
            while server.queue.stats()["running"] == 0:
                assert time.monotonic() < deadline
                time.sleep(0.01)
            assert _http(host, port, "POST", "/jobs", payload)[0] == 202
            conn = http.client.HTTPConnection(host, port, timeout=WAIT)
            try:
                body = json.dumps(payload)
                conn.request(
                    "POST", "/jobs", body=body, headers={"Content-Type": "application/json"}
                )
                response = conn.getresponse()
                rejected = json.loads(response.read())
            finally:
                conn.close()
            assert response.status == 429
            assert "full" in rejected["error"]
            # The backpressure hint: depth-derived, in the header (for
            # standard HTTP clients) and the body (for programmatic ones).
            retry_after = response.getheader("Retry-After")
            assert retry_after is not None and int(retry_after) >= 1
            assert rejected["retry_after"] == int(retry_after)
        finally:
            gate.set()
            frontend.stop()
            server.close()

    def test_cancel_over_http(self, monkeypatch):
        gate = threading.Event()
        monkeypatch.setattr(
            "repro.serve.server.execute_request",
            lambda session, request: gate.wait(WAIT),
        )
        server = Server(workers=1, executor="thread")
        frontend = HttpFrontend(server, port=0).start()
        try:
            host, port = frontend.address
            payload = discover_payload("acme", make_relation(n_rows=4))
            _, first = _http(host, port, "POST", "/jobs", payload)
            _, second = _http(host, port, "POST", "/jobs", payload)
            status, body = _http(host, port, "DELETE", f"/jobs/{second['job_id']}")
            assert status == 200 and body["cancelled"] is True
            status, body = _http(host, port, "GET", f"/jobs/{second['job_id']}")
            assert body["status"] == CANCELLED
        finally:
            gate.set()
            frontend.stop()
            server.close()


class TestServeCLI:
    def test_parser_flags(self):
        from repro.serve.cli import build_serve_parser

        flags = [
            "--workers",
            "8",
            "--max-queue",
            "128",
            "--port",
            "0",
            "--tenant-config",
            "tenants.json",
            "--timeout",
            "2.5",
            "--executor",
            "process",
            "--no-warmup",
            "--start-method",
            "spawn",
        ]
        args = build_serve_parser().parse_args(flags)
        assert args.workers == 8
        assert args.max_queue == 128
        assert args.tenant_config == "tenants.json"
        assert args.timeout == 2.5
        assert args.executor == "process"
        assert args.warmup is False
        assert args.start_method == "spawn"

    def test_parser_defaults_come_from_env(self, monkeypatch):
        from repro.serve.cli import build_serve_parser

        monkeypatch.setenv("REPRO_SERVE_EXECUTOR", "process")
        monkeypatch.setenv("REPRO_SERVE_WORKERS", "6")
        monkeypatch.setenv("REPRO_SERVE_WARMUP", "0")
        args = build_serve_parser().parse_args([])
        assert args.executor == "process"
        assert args.workers == 6
        assert args.warmup is False

    def test_missing_tenant_config_fails_cleanly(self, capsys):
        from repro.serve.cli import main_serve

        assert main_serve(["--tenant-config", "/nonexistent/tenants.json"]) == 2
        assert "error:" in capsys.readouterr().out

    @pytest.mark.parametrize("executor", ["thread", "process"])
    def test_python_m_repro_serve_end_to_end(self, tmp_path, executor):
        """`python -m repro serve` boots, serves a job over HTTP, shuts down."""
        tenant_config = tmp_path / "tenants.json"
        tenant_config.write_text(json.dumps({"acme": {"backend": "auto"}}))
        argv = [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--port",
            "0",
            "--workers",
            "2",
            "--executor",
            executor,
            "--tenant-config",
            str(tenant_config),
        ]
        process = subprocess.Popen(
            argv,
            cwd=str(_SRC.parent),
            env={"PYTHONPATH": str(_SRC), "PATH": "/usr/bin:/bin"},
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        try:
            banner = process.stdout.readline()
            assert "serving on http://" in banner, banner
            address = banner.split("http://", 1)[1].split()[0]
            host, port = address.split(":")
            status, ticket = _http(
                host,
                int(port),
                "POST",
                "/jobs",
                discover_payload("acme", make_relation()),
            )
            assert status == 202
            deadline = time.monotonic() + WAIT
            while True:
                status, body = _http(host, int(port), "GET", f"/jobs/{ticket['job_id']}")
                if body["status"] in (DONE, FAILED):
                    break
                assert time.monotonic() < deadline
                time.sleep(0.05)
            assert body["status"] == DONE
            bare = Session().discover(make_relation(), algorithm="tane")
            assert body["result"]["artifacts"] == bare.payload["artifacts"]
        finally:
            process.terminate()
            process.wait(timeout=WAIT)
